//! End-to-end integration: benchmark suite → IR → code graphs → dataset →
//! labels, across crates.

use pnp_benchmarks::{full_suite, suite_stats};
use pnp_core::dataset::Dataset;
use pnp_graph::{EncodedGraph, Vocabulary};
use pnp_ir::verify::verify_module;
use pnp_machine::{haswell, skylake};

#[test]
fn full_suite_lowers_verifies_and_encodes() {
    let apps = full_suite();
    let stats = suite_stats(&apps);
    assert_eq!(stats.applications, 30);
    assert_eq!(stats.regions, 68);

    let vocab = Vocabulary::standard();
    for app in &apps {
        let module = app.lower();
        assert!(
            verify_module(&module).is_ok(),
            "IR verification failed for {}: {:?}",
            app.name,
            verify_module(&module)
        );
        for (name, graph) in app.region_graphs() {
            assert!(graph.is_well_formed(), "{name}");
            // Every node text must be in the closed vocabulary.
            assert_eq!(vocab.oov_rate(&graph), 0.0, "{name} has OOV node text");
            let encoded = EncodedGraph::encode(&graph, &vocab);
            assert_eq!(encoded.num_nodes(), graph.num_nodes());
            assert_eq!(encoded.relations.len(), 3);
        }
    }
}

#[test]
fn datasets_build_for_both_testbeds_with_sane_labels() {
    // A subset of the suite keeps this test fast while still crossing every
    // crate boundary (benchmarks → graphs → machine/openmp sweep → labels).
    let apps: Vec<_> = full_suite().into_iter().take(6).collect();
    let vocab = Vocabulary::standard();
    for machine in [haswell(), skylake()] {
        let ds = Dataset::build(&machine, &apps, &vocab);
        assert_eq!(ds.space.power_levels.len(), 4);
        assert_eq!(ds.space.configs_per_power(), 126);
        assert!(!ds.is_empty());
        for (i, sweep) in ds.sweeps.iter().enumerate() {
            for p in 0..4 {
                let best = sweep.best_time_config(p);
                assert!(best < 126);
                // The oracle never loses to the default configuration by more
                // than numerical noise.
                assert!(
                    sweep.best_time(p) <= sweep.default_samples[p].time_s * 1.05,
                    "machine {} region {} power {}",
                    machine.name,
                    ds.regions[i].region,
                    p
                );
                // All samples are physical.
                for s in &sweep.samples[p] {
                    assert!(s.time_s > 0.0 && s.time_s.is_finite());
                    assert!(s.energy_j > 0.0 && s.energy_j.is_finite());
                }
            }
        }
    }
}

#[test]
fn best_configurations_differ_across_regions_and_power_levels() {
    // The tuning problem is only interesting (and learnable) if different
    // regions want different configurations — verify the dataset exhibits
    // that diversity.
    let apps: Vec<_> = full_suite().into_iter().take(10).collect();
    let ds = Dataset::build(&haswell(), &apps, &Vocabulary::standard());
    let mut distinct_labels = std::collections::HashSet::new();
    let mut label_changes_across_power = 0;
    for sweep in &ds.sweeps {
        let labels: Vec<usize> = (0..4).map(|p| sweep.best_time_config(p)).collect();
        for &l in &labels {
            distinct_labels.insert(l);
        }
        if labels.iter().any(|&l| l != labels[0]) {
            label_changes_across_power += 1;
        }
    }
    assert!(
        distinct_labels.len() >= 5,
        "only {} distinct best configurations across the subset",
        distinct_labels.len()
    );
    assert!(
        label_changes_across_power >= 2,
        "power caps should change the best configuration for some regions"
    );
}
