//! Cross-crate model integration: training the GNN on real benchmark graphs
//! with real labels, LOOCV hygiene, and the PnP tuner's end-to-end value.

use pnp_benchmarks::full_suite;
use pnp_core::dataset::Dataset;
use pnp_core::pnp::{PnPTuner, TunerMode};
use pnp_core::training::{train_scenario1_models, FoldPlan, TrainSettings};
use pnp_graph::Vocabulary;
use pnp_machine::haswell;

fn small_dataset() -> Dataset {
    // First 8 applications keep the training fast while still spanning
    // several behaviour classes (proxy apps + stencils).
    let apps: Vec<_> = full_suite().into_iter().take(8).collect();
    Dataset::build(&haswell(), &apps, &Vocabulary::standard())
}

fn fast_settings() -> TrainSettings {
    TrainSettings {
        hidden_dim: 12,
        rgcn_layers: 2,
        fc_hidden: 24,
        epochs: 8,
        batch_size: 16,
        folds: 3,
        seed: 0xFEED,
        train_threads: pnp::openmp::Threads::Fixed(2),
    }
}

#[test]
fn loocv_predictions_are_valid_classes_and_add_value() {
    let ds = small_dataset();
    let settings = fast_settings();
    let preds = train_scenario1_models(&ds, &settings, false);
    assert_eq!(preds.len(), ds.len());

    let mut pnp_speedups = Vec::new();
    let mut oracle_speedups = Vec::new();
    for (i, sweep) in ds.sweeps.iter().enumerate() {
        for (p, &class) in preds[i].iter().enumerate() {
            assert!(class < ds.space.configs_per_power());
            let default_t = sweep.default_samples[p].time_s;
            pnp_speedups.push(default_t / sweep.samples[p][class].time_s);
            oracle_speedups.push(default_t / sweep.best_time(p));
        }
    }
    let geo_pnp = pnp_core::eval::geomean(&pnp_speedups);
    let geo_oracle = pnp_core::eval::geomean(&oracle_speedups);
    // Even with tiny training budgets the predictions must not be worse than
    // ~25% below the default on geometric mean, and the oracle bounds them.
    assert!(
        geo_pnp > 0.75,
        "geometric-mean speedup collapsed: {geo_pnp}"
    );
    assert!(geo_oracle >= geo_pnp * 0.999);
}

#[test]
fn fold_plan_never_leaks_validation_apps_into_training() {
    let ds = small_dataset();
    let apps = ds.applications();
    let plan = FoldPlan::new(&apps, 3);
    let all_held: Vec<String> = plan.held_out.iter().flatten().cloned().collect();
    // Every app is held out exactly once across folds.
    for app in &apps {
        assert_eq!(all_held.iter().filter(|a| *a == app).count(), 1);
    }
}

#[test]
fn deployed_pnp_tuner_beats_the_default_on_training_regions() {
    let ds = small_dataset();
    let mut settings = fast_settings();
    settings.epochs = 20;
    let mut tuner = PnPTuner::train(&ds, TunerMode::PowerConstrained { power_idx: 0 }, &settings);

    let mut tuned_better_or_equal = 0usize;
    for i in 0..ds.len() {
        let point = tuner.predict(&ds.regions[i].graph);
        let class = ds.space.omp_index(&point.omp).expect("prediction in space");
        let tuned_t = ds.sweeps[i].samples[0][class].time_s;
        let default_t = ds.sweeps[i].default_samples[0].time_s;
        if tuned_t <= default_t * 1.02 {
            tuned_better_or_equal += 1;
        }
    }
    assert!(
        tuned_better_or_equal * 10 >= ds.len() * 7,
        "tuned configurations should match or beat the default on most training regions ({tuned_better_or_equal}/{})",
        ds.len()
    );
}

#[test]
fn edp_mode_predictions_reduce_edp_relative_to_default_at_tdp() {
    let ds = small_dataset();
    let mut settings = fast_settings();
    settings.epochs = 20;
    let mut tuner = PnPTuner::train(&ds, TunerMode::Edp, &settings);
    let tdp_idx = ds.space.power_levels.len() - 1;

    let mut improvements = Vec::new();
    for i in 0..ds.len() {
        let point = tuner.predict(&ds.regions[i].graph);
        let power_idx = ds
            .space
            .power_levels
            .iter()
            .position(|&p| p == point.power_watts)
            .unwrap();
        let class = ds.space.omp_index(&point.omp).unwrap();
        let tuned = ds.sweeps[i].samples[power_idx][class];
        let baseline = ds.sweeps[i].default_samples[tdp_idx];
        improvements.push(baseline.edp() / tuned.edp());
    }
    let geo = pnp_core::eval::geomean(&improvements);
    assert!(
        geo > 1.0,
        "geometric-mean EDP improvement should exceed 1.0, got {geo}"
    );
}
