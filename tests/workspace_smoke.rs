//! Workspace wiring smoke tests: the cheap invariants every future PR must
//! keep intact — the full benchmark suite lowers and verifies, graphs encode
//! against the standard vocabulary, and the facade crate re-exports the whole
//! stack under its documented names.

use pnp_benchmarks::{full_suite, suite_stats};
use pnp_graph::{EncodedGraph, Vocabulary};
use pnp_ir::verify::verify_module;

/// The paper's suite: 30 applications, 68 parallel regions, and every region
/// lowers to verifiable IR (the precondition for all experiments).
#[test]
fn full_suite_lowers_and_verifies_all_applications() {
    let apps = full_suite();
    let stats = suite_stats(&apps);
    assert_eq!(stats.applications, 30, "application count drifted");
    assert_eq!(stats.regions, 68, "region count drifted");

    for app in &apps {
        let module = app.lower();
        assert!(
            verify_module(&module).is_ok(),
            "IR verification failed for {}: {:?}",
            app.name,
            verify_module(&module)
        );
    }
}

/// Every region graph encodes without out-of-vocabulary node text.
#[test]
fn every_region_encodes_against_the_standard_vocabulary() {
    let vocab = Vocabulary::standard();
    for app in full_suite() {
        for (name, graph) in app.region_graphs() {
            assert!(graph.is_well_formed(), "{name} graph malformed");
            assert_eq!(vocab.oov_rate(&graph), 0.0, "{name} has OOV node text");
            let encoded = EncodedGraph::encode(&graph, &vocab);
            assert_eq!(encoded.num_nodes(), graph.num_nodes(), "{name}");
        }
    }
}

/// The `pnp` facade re-exports each layer under its documented module name.
#[test]
fn facade_reexports_cover_the_stack() {
    // Type-level check: these paths must keep resolving.
    let _machine: pnp::machine::MachineSpec = pnp::machine::haswell();
    let _config: pnp::openmp::OmpConfig = pnp::openmp::default_config(&_machine);
    let _vocab: pnp::graph::Vocabulary = pnp::graph::Vocabulary::standard();
    let _space = pnp::tuners::SearchSpace::for_machine(&_machine);
    assert!(!pnp::graph::Vocabulary::standard().is_empty());
    assert_eq!(pnp::benchmarks::full_suite().len(), 30);
}
