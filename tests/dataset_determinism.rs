//! Determinism suite for the parallel exhaustive sweep.
//!
//! `Dataset::build` fans the per-region `(power, OpenMP config)` grids out
//! across worker threads (DESIGN.md §9); these tests pin down the property
//! that makes that safe to rely on: the dataset is **bit-identical for every
//! worker count**. LOOCV folds, class priors, and every paper figure are
//! derived from the sweep, so even a one-ULP wobble between two runs would
//! make experiments irreproducible across machines with different core
//! counts.

use pnp::benchmarks::full_suite;
use pnp::core::dataset::Dataset;
use pnp::graph::Vocabulary;
use pnp::machine::{haswell, skylake};
use pnp::openmp::Threads;

/// The full default app list, serialized with the vendored `serde_json`,
/// must be byte-equal across 1, 2, and 8 worker threads.
#[test]
fn full_suite_dataset_is_bit_equal_across_worker_counts() {
    let machine = haswell();
    let apps = full_suite();
    let vocab = Vocabulary::standard();
    let baseline = serde_json::to_string(&Dataset::build_with_threads(
        &machine,
        &apps,
        &vocab,
        Threads::Fixed(1),
    ))
    .expect("dataset serializes");
    for workers in [2usize, 8] {
        let ds = Dataset::build_with_threads(&machine, &apps, &vocab, Threads::Fixed(workers));
        assert_eq!(
            serde_json::to_string(&ds).unwrap(),
            baseline,
            "full-suite dataset differs between 1 and {workers} worker threads"
        );
    }
}

/// Region order is the suite order, independent of which worker finished
/// first — the indexed write-back must preserve it.
#[test]
fn region_order_matches_suite_order() {
    let apps = full_suite();
    let expected: Vec<(String, String)> = apps
        .iter()
        .flat_map(|app| {
            app.regions
                .iter()
                .map(|r| (app.name.clone(), r.name().to_string()))
        })
        .collect();
    let ds = Dataset::build_with_threads(
        &skylake(),
        &apps,
        &Vocabulary::standard(),
        Threads::Fixed(8),
    );
    let got: Vec<(String, String)> = ds
        .regions
        .iter()
        .map(|r| (r.app.clone(), r.region.clone()))
        .collect();
    assert_eq!(got, expected);
}

// The `PNP_SWEEP_THREADS` env knob (resolution, worker-count effect on the
// underlying `parallel_map_indexed`, and the env-resolving `Dataset::build`
// entry point) is exercised by `tests/sweep_env_knob.rs`, a single-test
// binary: output bytes cannot distinguish worker counts here (that identity
// is the point of this suite), and mutating the process environment from a
// multi-test binary would race with the concurrent test harness threads.
