//! Integration suite for the paper-fidelity validation harness
//! (`pnp_core::validate`, DESIGN.md §11).
//!
//! The heavyweight test drives the full harness — every figure/table
//! experiment through the shared `run_on_dataset` entry points — on the
//! reduced 6-application suite (the same configuration the `validate` CI job
//! gates on) and asserts that no invariant fails without a documented
//! DESIGN.md §11 `expected_fail` entry. The lightweight tests pin down the
//! metric edge cases the harness's edge sweeps probe: ties in top-1
//! configuration selection, identical EDP values, zero-energy regions, and
//! the typed errors the experiment drivers return on degenerate datasets.

use pnp::core::dataset::{Dataset, Sweep};
use pnp::core::experiments::{self, ExperimentError};
use pnp::core::training::TrainSettings;
use pnp::core::validate::{
    is_expected_fail, run_validation_on_suite, InvariantStatus, ValidationReport,
};
use pnp::core::{checked_geomean, geomean};
use pnp::graph::Vocabulary;
use pnp::machine::{haswell, CounterSet, EnergySample};
use pnp::openmp::Threads;

fn quick_settings() -> TrainSettings {
    // The exact configuration the CI smoke uses: quick budgets, explicit
    // worker count so the test is independent of the host's cores.
    TrainSettings {
        train_threads: Threads::Fixed(1),
        ..TrainSettings::quick()
    }
}

/// A hand-built sweep with deliberate ties: configs 0 and 1 share the best
/// time, configs 1 and 2 share the best EDP (via different time/energy
/// splits).
fn tied_sweep() -> Sweep {
    let samples = vec![
        vec![
            EnergySample::new(2.0, 10.0), // config 0: time 2.0, edp 20
            EnergySample::new(2.0, 8.0),  // config 1: time 2.0 (tie), edp 16 (best, tied below)
            EnergySample::new(4.0, 4.0),  // config 2: edp 16 (tie with config 1)
            EnergySample::new(3.0, 9.0),  // config 3: edp 27
        ];
        2
    ];
    Sweep {
        samples,
        default_samples: vec![EnergySample::new(5.0, 20.0); 2],
        default_counters: vec![CounterSet::default(); 2],
    }
}

#[test]
fn top1_selection_breaks_time_ties_deterministically() {
    let sweep = tied_sweep();
    // Configs 0 and 1 tie on time: the first index must win at every power
    // level (prediction write-back relies on this being deterministic).
    for p in 0..2 {
        assert_eq!(sweep.best_time_config(p), 0);
        assert_eq!(sweep.best_time(p), 2.0);
    }
}

#[test]
fn best_edp_breaks_ties_on_first_point_in_scan_order() {
    let sweep = tied_sweep();
    // Configs 1 and 2 tie on EDP (16.0): the scan-order winner is (power 0,
    // config 1) and must be stable.
    assert_eq!(sweep.best_edp_point(), (0, 1));
    assert!((sweep.best_edp() - 16.0).abs() < 1e-12);
}

#[test]
fn zero_energy_regions_do_not_poison_aggregates() {
    // A zero-energy sample makes greenup ratios degenerate; the strict
    // aggregate flags it while the total aggregate stays finite.
    let zero = EnergySample::new(1.0, 0.0);
    let baseline = EnergySample::new(1.0, 5.0);
    let greenup = baseline.energy_j / zero.energy_j; // inf
    assert_eq!(checked_geomean(&[greenup]), None);
    assert!(geomean(&[greenup]).is_finite());
    assert_eq!(checked_geomean(&[1.2, 0.0]), None);
    assert!(geomean(&[1.2, 0.0]).is_finite());
}

#[test]
fn degenerate_datasets_yield_typed_errors_not_panics() {
    let settings = quick_settings();
    let empty =
        Dataset::build_with_threads(&haswell(), &[], &Vocabulary::standard(), Threads::Fixed(1));
    assert_eq!(
        experiments::power_constrained::try_run_on_dataset(&empty, &settings).unwrap_err(),
        ExperimentError::EmptyDataset
    );
    assert_eq!(
        experiments::edp::try_run_on_dataset(&empty, &settings).unwrap_err(),
        ExperimentError::EmptyDataset
    );
    assert_eq!(
        experiments::unseen_power::try_run_on_dataset(&empty, &settings).unwrap_err(),
        ExperimentError::EmptyDataset
    );
    assert_eq!(
        experiments::ablations::try_run_on_dataset(&empty, &settings).unwrap_err(),
        ExperimentError::EmptyDataset
    );

    // A dataset whose search space lost its power levels trips the
    // second guard instead of underflowing `len - 1`.
    let apps: Vec<_> = pnp::benchmarks::full_suite().into_iter().take(1).collect();
    let mut ds = Dataset::build_with_threads(
        &haswell(),
        &apps,
        &Vocabulary::standard(),
        Threads::Fixed(1),
    );
    ds.space.power_levels.truncate(1);
    assert_eq!(
        experiments::unseen_power::try_run_on_dataset(&ds, &settings).unwrap_err(),
        ExperimentError::NotEnoughPowerLevels { needed: 2, have: 1 }
    );
}

/// The heavyweight end-to-end check: the full harness on the CI-gated
/// 6-application suite. One run shared by every assertion.
#[test]
fn reduced_suite_validation_has_no_undocumented_divergence() {
    let apps: Vec<_> = pnp::benchmarks::full_suite().into_iter().take(6).collect();
    let report = run_validation_on_suite(&apps, &quick_settings(), Threads::Fixed(1));

    // Nothing may fail without a DESIGN.md §11 entry.
    let hard: Vec<String> = report
        .hard_failures()
        .iter()
        .map(|i| format!("{} ({}): observed {}", i.id, i.citation, i.observed))
        .collect();
    assert!(hard.is_empty(), "undocumented divergences: {hard:#?}");

    // Every expected-fail the report downgraded really is documented for
    // this suite size.
    for inv in &report.invariants {
        if inv.status == InvariantStatus::ExpectedFail {
            assert!(
                is_expected_fail(&inv.id, report.context.suite_apps),
                "{} downgraded without a matching EXPECTED_FAIL entry",
                inv.id
            );
        }
    }

    // The divergences this PR fixed must stay fixed (regression net).
    for id in [
        "motivating.headroom",          // frequency-scaled runtime overheads
        "motivating.headroom_monotone", // (sim.rs fix)
        "transfer.accuracy",            // cached-head frozen training fix
        "transfer.speedup",
        "edge.zero_cap_stays_finite", // power-cap floor fix
        "edge.geomean_total",         // total aggregates fix
        "edge.empty_dataset_is_typed_error",
        "dataset.haswell.oracle_monotone_in_cap",
        "dataset.skylake.oracle_monotone_in_cap",
    ] {
        let inv = report
            .invariant(id)
            .unwrap_or_else(|| panic!("invariant {id} missing from the report"));
        assert_eq!(inv.status, InvariantStatus::Pass, "{id}: {}", inv.observed);
    }

    // Context stamps the measurement environment for trajectory consumers.
    assert!(report.context.available_parallelism >= 1);
    assert_eq!(report.context.suite_apps, 6);
    assert_eq!(report.context.suite_regions.len(), 2);
    assert_eq!(report.context.settings_mode, "quick");

    // The report round-trips through the VALIDATION.json wire format.
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let back: ValidationReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back.invariants.len(), report.invariants.len());
    assert_eq!(back.failed, 0);
}
