//! Integration tests of the content-addressed artifact store (DESIGN.md
//! §12): the bit-identity contract (cached artifact bytes == freshly
//! computed bytes, warm replay == cold training), and every failure mode
//! the store must degrade through — corruption, key mismatches, concurrent
//! writers, force-rebuild.

use pnp::benchmarks::builders::{matmul_kernel, small_boundary_kernel, streaming_kernel};
use pnp::benchmarks::Application;
use pnp::core::artifact::ArtifactStore;
use pnp::core::training::{
    train_scenario1_models, train_scenario1_models_cached, train_scenario2_model,
    train_scenario2_model_cached, train_unseen_power, train_unseen_power_cached, TrainSettings,
};
use pnp::core::Dataset;
use pnp::graph::Vocabulary;
use pnp::machine::haswell;
use pnp::openmp::Threads;
use pnp::store::Store;

fn tiny_apps() -> Vec<Application> {
    vec![
        Application::new("appA", vec![matmul_kernel("appA_r0", 160, 160, 160)]),
        Application::new(
            "appB",
            vec![
                streaming_kernel("appB_r0", 150_000, 2, 1.0),
                small_boundary_kernel("appB_r1", 900, 2),
            ],
        ),
    ]
}

fn tiny_settings() -> TrainSettings {
    let mut s = TrainSettings::quick();
    s.hidden_dim = 8;
    s.fc_hidden = 16;
    s.epochs = 3;
    s.folds = 2;
    s.train_threads = Threads::Fixed(1);
    s
}

fn tiny_dataset() -> Dataset {
    Dataset::build_with_threads(
        &haswell(),
        &tiny_apps(),
        &Vocabulary::standard(),
        Threads::Fixed(1),
    )
}

/// A store rooted in a unique temp directory, removed on drop.
struct TempStore {
    dir: std::path::PathBuf,
}

impl TempStore {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("pnp_store_it_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempStore { dir }
    }

    fn open(&self) -> ArtifactStore {
        ArtifactStore::open(&self.dir)
    }

    fn open_with(&self, force: bool, verify: bool) -> ArtifactStore {
        ArtifactStore::new(
            Store::open(&self.dir)
                .with_force_rebuild(force)
                .with_verify(verify),
        )
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn cached_dataset_bytes_equal_freshly_built_bytes() {
    let tmp = TempStore::new("dataset_bytes");
    let machine = haswell();
    let apps = tiny_apps();
    let vocab = Vocabulary::standard();

    let fresh = Dataset::build_with_threads(&machine, &apps, &vocab, Threads::Fixed(1));
    let fresh_bytes = serde_json::to_string(&fresh).unwrap();

    // Cold: builds and caches.
    let store = tmp.open();
    let built = store.load_or_build_dataset(&machine, &apps, &vocab, Threads::Fixed(1));
    assert_eq!(serde_json::to_string(&built).unwrap(), fresh_bytes);
    assert_eq!(store.stats().writes, 1);

    // The artifact's payload on disk is the exact fresh serialization.
    let key = ArtifactStore::dataset_key(&machine, &apps, &vocab);
    let payload = store.store().load_bytes(&key).expect("artifact exists");
    assert_eq!(
        payload,
        fresh_bytes.as_bytes(),
        "cached bytes != fresh bytes"
    );

    // Warm: loads, and re-serializes byte-identically (lossless floats).
    let warm_store = tmp.open();
    let loaded = warm_store.load_or_build_dataset(&machine, &apps, &vocab, Threads::Fixed(1));
    assert_eq!(serde_json::to_string(&loaded).unwrap(), fresh_bytes);
    let s = warm_store.stats();
    assert_eq!(
        (s.hits, s.misses, s.writes),
        (1, 0, 0),
        "warm run must not rebuild"
    );
}

#[test]
fn warm_training_replays_bit_identical_predictions() {
    let tmp = TempStore::new("warm_training");
    let ds = tiny_dataset();
    let settings = tiny_settings();

    // Ground truth: the uncached pipelines.
    let s1 = train_scenario1_models(&ds, &settings, false);
    let s1_dyn = train_scenario1_models(&ds, &settings, true);
    let s2 = train_scenario2_model(&ds, &settings, false);
    let up = train_unseen_power(&ds, &settings, 0);

    // Cold cached run: trains, saves, and must agree with the uncached run.
    let store = tmp.open();
    let cache = store.for_dataset(&ds);
    assert_eq!(
        train_scenario1_models_cached(&ds, &settings, false, Some(&cache)),
        s1
    );
    assert_eq!(
        train_scenario1_models_cached(&ds, &settings, true, Some(&cache)),
        s1_dyn
    );
    assert_eq!(
        train_scenario2_model_cached(&ds, &settings, false, Some(&cache)),
        s2
    );
    assert_eq!(
        train_unseen_power_cached(&ds, &settings, 0, Some(&cache)),
        up
    );
    assert_eq!(store.stats().writes, 4, "one grid artifact per pipeline");

    // Warm run from a fresh handle: replays checkpoints, no training, same
    // predictions bit-for-bit.
    let warm = tmp.open();
    let cache = warm.for_dataset(&ds);
    assert_eq!(
        train_scenario1_models_cached(&ds, &settings, false, Some(&cache)),
        s1
    );
    assert_eq!(
        train_scenario1_models_cached(&ds, &settings, true, Some(&cache)),
        s1_dyn
    );
    assert_eq!(
        train_scenario2_model_cached(&ds, &settings, false, Some(&cache)),
        s2
    );
    assert_eq!(
        train_unseen_power_cached(&ds, &settings, 0, Some(&cache)),
        up
    );
    let s = warm.stats();
    assert_eq!(s.hits, 4, "every grid must be served from the store");
    assert_eq!((s.misses, s.writes, s.corrupt), (0, 0, 0));

    // Verify mode: retrains everything and byte-compares against the cached
    // grids — the strongest form of the bit-identity contract.
    let verifying = tmp.open_with(false, true);
    let cache = verifying.for_dataset(&ds);
    assert_eq!(
        train_scenario1_models_cached(&ds, &settings, false, Some(&cache)),
        s1
    );
    let s = verifying.stats();
    assert_eq!(s.verified, 1, "verify mode must byte-compare the hit");
    assert_eq!(
        s.verify_mismatches, 0,
        "cached grid bytes must equal fresh bytes"
    );
}

#[test]
fn hyperparameter_change_misses_cleanly() {
    let tmp = TempStore::new("hyper_miss");
    let ds = tiny_dataset();
    let settings = tiny_settings();

    let store = tmp.open();
    let cache = store.for_dataset(&ds);
    train_scenario1_models_cached(&ds, &settings, false, Some(&cache));
    assert_eq!(store.stats().writes, 1);

    // One epoch more: a different key — a clean miss and a second artifact,
    // never a stale hit.
    let mut longer = settings.clone();
    longer.epochs += 1;
    let fresh = train_scenario1_models(&ds, &longer, false);
    let store2 = tmp.open();
    let cache2 = store2.for_dataset(&ds);
    assert_eq!(
        train_scenario1_models_cached(&ds, &longer, false, Some(&cache2)),
        fresh
    );
    let s = store2.stats();
    assert_eq!(s.hits, 0, "changed hyperparameters must not hit");
    assert_eq!(s.misses, 1);
    assert_eq!(s.writes, 1);
}

#[test]
fn corrupted_grid_artifact_falls_back_to_retraining() {
    let tmp = TempStore::new("corrupt_grid");
    let ds = tiny_dataset();
    let settings = tiny_settings();
    let baseline = train_scenario1_models(&ds, &settings, false);

    let store = tmp.open();
    let cache = store.for_dataset(&ds);
    train_scenario1_models_cached(&ds, &settings, false, Some(&cache));
    let key = cache.scenario1_key(&settings, false);
    let path = store.store().artifact_path(&key);

    // Truncate the artifact mid-payload.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let recovering = tmp.open();
    let cache = recovering.for_dataset(&ds);
    let preds = train_scenario1_models_cached(&ds, &settings, false, Some(&cache));
    assert_eq!(
        preds, baseline,
        "fallback retraining must agree with baseline"
    );
    let s = recovering.stats();
    assert_eq!(s.corrupt, 1, "the truncated artifact must be detected");
    assert_eq!(s.writes, 1, "the rebuilt grid must overwrite the bad file");

    // And the overwritten artifact is valid again.
    let healed = tmp.open();
    let cache = healed.for_dataset(&ds);
    assert_eq!(
        train_scenario1_models_cached(&ds, &settings, false, Some(&cache)),
        baseline
    );
    assert_eq!(healed.stats().hits, 1);
}

#[test]
fn force_rebuild_retrains_and_overwrites() {
    let tmp = TempStore::new("force_rebuild");
    let ds = tiny_dataset();
    let settings = tiny_settings();
    let baseline = train_scenario1_models(&ds, &settings, false);

    let store = tmp.open();
    let cache = store.for_dataset(&ds);
    train_scenario1_models_cached(&ds, &settings, false, Some(&cache));
    let key = cache.scenario1_key(&settings, false);
    let before = std::fs::metadata(store.store().artifact_path(&key)).unwrap();

    let forced = tmp.open_with(true, false);
    let cache = forced.for_dataset(&ds);
    assert_eq!(
        train_scenario1_models_cached(&ds, &settings, false, Some(&cache)),
        baseline
    );
    let s = forced.stats();
    assert_eq!(s.hits, 0, "force-rebuild must not read the cache");
    assert!(s.writes >= 1, "force-rebuild must overwrite");
    let after = std::fs::metadata(forced.store().artifact_path(&key)).unwrap();
    assert!(
        after.modified().unwrap() >= before.modified().unwrap(),
        "artifact must be rewritten"
    );
}

/// The acceptance criterion in miniature: a cold validation run (populates
/// the store) and a warm one (pure load-and-evaluate) must produce a
/// byte-identical report — same verdicts, same observed values, including
/// the transfer experiment, whose measured report is cached as-is.
#[test]
fn warm_validation_report_is_byte_identical_to_cold() {
    use pnp::core::validate::run_validation_on_suite_with_store;

    let tmp = TempStore::new("warm_validation");
    let apps: Vec<_> = pnp::benchmarks::full_suite().into_iter().take(2).collect();
    let settings = tiny_settings();
    // The 6-kernel OOD corpus deliberately undershoots the corpus-size
    // invariant's floor — this test asserts byte-identity and store stats,
    // not verdicts, and a small corpus keeps the double run cheap.

    let cold_store = tmp.open();
    let cold = run_validation_on_suite_with_store(
        &apps,
        &settings,
        Threads::Fixed(1),
        Some(&cold_store),
        0xD17A,
        6,
    );
    assert!(
        cold_store.stats().writes > 0,
        "cold run must populate the store"
    );

    let warm_store = tmp.open();
    let warm = run_validation_on_suite_with_store(
        &apps,
        &settings,
        Threads::Fixed(1),
        Some(&warm_store),
        0xD17A,
        6,
    );
    let s = warm_store.stats();
    assert_eq!(s.misses, 0, "warm run must not rebuild anything");
    assert_eq!(s.writes, 0);
    assert!(s.hits > 0);

    assert_eq!(
        serde_json::to_string(&cold).unwrap(),
        serde_json::to_string(&warm).unwrap(),
        "warm validation report must be byte-identical to the cold one"
    );
}

#[test]
fn dataset_key_tracks_machine_suite_and_vocab() {
    let apps = tiny_apps();
    let vocab = Vocabulary::standard();
    let base = ArtifactStore::dataset_key(&haswell(), &apps, &vocab).address();
    assert_ne!(
        base,
        ArtifactStore::dataset_key(&pnp::machine::skylake(), &apps, &vocab).address()
    );
    let fewer = &apps[..1];
    assert_ne!(
        base,
        ArtifactStore::dataset_key(&haswell(), fewer, &vocab).address()
    );
}
