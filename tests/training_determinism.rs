//! Determinism suite for the parallel LOOCV training fan-out.
//!
//! `train_scenario1_models` / `train_scenario2_model` fan independent
//! `(fold, power)` training jobs out across worker threads (DESIGN.md §10);
//! these tests pin down the property that makes that safe to rely on: the
//! trained models' predictions are **bit-identical for every worker count**.
//! Every headline number of the paper is derived from LOOCV predictions, so
//! a training fan-out that let the worker count leak into seeds, sample
//! order, or float accumulation would make the figures irreproducible across
//! machines with different core counts. The twin suite for the dataset sweep
//! is `tests/dataset_determinism.rs`.

use pnp::benchmarks::full_suite;
use pnp::core::dataset::Dataset;
use pnp::core::training::{
    train_scenario1_models, train_scenario2_model, train_unseen_power, TrainSettings,
};
use pnp::graph::Vocabulary;
use pnp::machine::haswell;
use pnp::openmp::Threads;
use pnp::tensor::set_matmul_threads;

/// A few applications keep each training pass cheap while still giving every
/// fold several regions to train on and validate against.
fn small_dataset() -> Dataset {
    let apps: Vec<_> = full_suite().into_iter().take(4).collect();
    Dataset::build_with_threads(&haswell(), &apps, &Vocabulary::standard(), Threads::Auto)
}

/// Small-but-real settings: multiple folds, every power level, a model deep
/// enough to exercise the full forward/backward stack.
fn settings_with_workers(workers: usize) -> TrainSettings {
    TrainSettings {
        hidden_dim: 8,
        rgcn_layers: 1,
        fc_hidden: 16,
        epochs: 4,
        batch_size: 16,
        folds: 3,
        seed: 0xD15E,
        train_threads: Threads::Fixed(workers),
    }
}

/// Scenario-1 (one model per fold × power) and scenario-2 (one model per
/// fold) predictions must be identical at 1, 2, and 8 training workers.
#[test]
fn training_is_bit_identical_across_worker_counts() {
    let ds = small_dataset();
    let s1_baseline = train_scenario1_models(&ds, &settings_with_workers(1), false);
    let s2_baseline = train_scenario2_model(&ds, &settings_with_workers(1), false);
    for workers in [2usize, 8] {
        let settings = settings_with_workers(workers);
        assert_eq!(
            train_scenario1_models(&ds, &settings, false),
            s1_baseline,
            "scenario-1 predictions differ between 1 and {workers} training workers"
        );
        assert_eq!(
            train_scenario2_model(&ds, &settings, false),
            s2_baseline,
            "scenario-2 predictions differ between 1 and {workers} training workers"
        );
    }
}

/// The dynamic-feature variant threads counters through the same fan-out and
/// must hold the same guarantee (its samples depend on the power level, so a
/// job-indexing bug would corrupt it first).
#[test]
fn dynamic_variant_is_bit_identical_across_worker_counts() {
    let ds = small_dataset();
    let baseline = train_scenario1_models(&ds, &settings_with_workers(1), true);
    assert_eq!(
        train_scenario1_models(&ds, &settings_with_workers(4), true),
        baseline,
        "dynamic scenario-1 predictions differ between 1 and 4 training workers"
    );
}

/// The unseen-power pipeline fans folds out with compound seeds
/// (`0x4000 + fold * 8 + held_out_power`); both held-out caps must reproduce
/// the serial result.
#[test]
fn unseen_power_training_is_bit_identical_across_worker_counts() {
    let ds = small_dataset();
    for held_out in [0usize, ds.space.power_levels.len() - 1] {
        let baseline = train_unseen_power(&ds, &settings_with_workers(1), held_out);
        assert_eq!(
            train_unseen_power(&ds, &settings_with_workers(8), held_out),
            baseline,
            "unseen-power predictions differ between 1 and 8 workers (cap {held_out})"
        );
    }
}

/// Enabling the opt-in intra-op matmul parallelism must not change trained
/// models either: the benchmark code graphs are hundreds of nodes tall, so
/// the row-parallel kernel genuinely engages here (unlike the unit-scale
/// graphs in `pnp-gnn`'s own tests). Safe to flip the global knob even with
/// concurrent tests in this binary — the kernel is bit-identical, so other
/// tests can only observe a wall-clock difference.
#[test]
fn parallel_matmul_does_not_change_trained_models() {
    let ds = small_dataset();
    let settings = settings_with_workers(2);
    set_matmul_threads(1);
    let serial = train_scenario1_models(&ds, &settings, false);
    set_matmul_threads(4);
    let parallel = train_scenario1_models(&ds, &settings, false);
    set_matmul_threads(1);
    assert_eq!(
        parallel, serial,
        "scenario-1 predictions differ between serial and 4-worker matmul"
    );
}
