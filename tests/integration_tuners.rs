//! Cross-crate tuner integration: oracle vs. BLISS vs. OpenTuner vs. default
//! on real benchmark regions, for both objectives.

use pnp_benchmarks::full_suite;
use pnp_machine::haswell;
use pnp_tuners::{
    BlissTuner, DefaultBaseline, Objective, OpenTunerLike, OracleTuner, RandomTuner, SearchSpace,
    SimEvaluator,
};

fn some_regions(n: usize) -> Vec<(String, pnp_openmp::RegionProfile)> {
    full_suite()
        .into_iter()
        .flat_map(|app| {
            app.regions
                .into_iter()
                .map(move |r| (r.profile.name.clone(), r.profile))
        })
        .step_by(7)
        .take(n)
        .collect()
}

#[test]
fn oracle_dominates_every_other_tuner() {
    let machine = haswell();
    let space = SearchSpace::for_machine(&machine);
    for (name, profile) in some_regions(4) {
        for objective in [Objective::TimeAtPower { power_watts: 60.0 }, Objective::Edp] {
            let oracle = OracleTuner::new(&space).tune(
                &SimEvaluator::new(machine.clone(), profile.clone()),
                &objective,
            );
            let bliss = BlissTuner::new(&space, 1).tune(
                &SimEvaluator::new(machine.clone(), profile.clone()),
                &objective,
            );
            let opentuner = OpenTunerLike::new(&space, 2).tune(
                &SimEvaluator::new(machine.clone(), profile.clone()),
                &objective,
            );
            let random = RandomTuner::new(&space, 20, 3).tune(
                &SimEvaluator::new(machine.clone(), profile.clone()),
                &objective,
            );
            let oracle_score = objective.score(&oracle.best_sample);
            for other in [&bliss, &opentuner, &random] {
                assert!(
                    oracle_score <= objective.score(&other.best_sample) * (1.0 + 1e-9),
                    "{name}: oracle must dominate {}",
                    other.tuner
                );
            }
        }
    }
}

#[test]
fn search_tuners_usually_beat_the_default_under_a_tight_cap() {
    let machine = haswell();
    let space = SearchSpace::for_machine(&machine);
    let objective = Objective::TimeAtPower { power_watts: 40.0 };
    let mut bliss_wins = 0usize;
    let mut total = 0usize;
    for (_, profile) in some_regions(6) {
        let default = DefaultBaseline::new(&space, machine.tdp_watts).sample(
            &SimEvaluator::new(machine.clone(), profile.clone()),
            &objective,
        );
        let bliss = BlissTuner::new(&space, 11).tune(
            &SimEvaluator::new(machine.clone(), profile.clone()),
            &objective,
        );
        total += 1;
        if bliss.best_sample.time_s <= default.time_s * 1.001 {
            bliss_wins += 1;
        }
    }
    assert!(
        bliss_wins * 3 >= total * 2,
        "BLISS should at least match the default in most cases ({bliss_wins}/{total})"
    );
}

#[test]
fn execution_counts_reflect_the_papers_cost_asymmetry() {
    // The paper's key selling point: search tuners need many executions, the
    // static PnP tuner needs none. Verify the accounting that claim rests on.
    let machine = haswell();
    let space = SearchSpace::for_machine(&machine);
    let profile = some_regions(1).remove(0).1;
    let objective = Objective::TimeAtPower { power_watts: 70.0 };

    let eval = SimEvaluator::new(machine.clone(), profile.clone());
    let oracle = OracleTuner::new(&space).tune(&eval, &objective);
    assert_eq!(oracle.evaluations, 126);

    let eval = SimEvaluator::new(machine.clone(), profile.clone());
    let bliss = BlissTuner::new(&space, 5).tune(&eval, &objective);
    assert!(bliss.evaluations <= 21 && bliss.evaluations >= 19);

    let eval = SimEvaluator::new(machine, profile);
    let opentuner = OpenTunerLike::new(&space, 5).tune(&eval, &objective);
    assert_eq!(opentuner.evaluations, 60);
}
