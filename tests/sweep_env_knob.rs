//! End-to-end checks of the `PNP_SWEEP_THREADS` and `PNP_TRAIN_THREADS`
//! environment knobs.
//!
//! Dataset bytes cannot tell worker counts apart (bit-identical output is
//! the determinism suite's guarantee), so the worker-count effect is
//! observed at the layer where it is visible — which threads execute the
//! jobs of `parallel_map_indexed`, the primitive `Dataset::build` fans out
//! over. `Dataset::build` itself is then run under the env var to execute
//! its `Threads::from_env` delegation path (its one-line `build` →
//! `build_with_threads(.., Threads::from_env())` forwarding is the only
//! part this test cannot observe directly).
//!
//! This file deliberately holds a **single** test: `std::env::set_var` is
//! only sound while no other thread reads the environment, which a one-test
//! binary guarantees and a parallel test harness does not.

use pnp::benchmarks::full_suite;
use pnp::core::dataset::Dataset;
use pnp::graph::Vocabulary;
use pnp::machine::haswell;
use pnp::openmp::{parallel_map_indexed, Threads};
use std::collections::HashSet;
use std::sync::Mutex;
use std::thread::ThreadId;

fn worker_ids(threads: Threads) -> HashSet<ThreadId> {
    let ids = Mutex::new(HashSet::new());
    parallel_map_indexed(64, threads, |i| {
        ids.lock().unwrap().insert(std::thread::current().id());
        // Give other workers a chance to grab jobs.
        std::thread::sleep(std::time::Duration::from_micros(200));
        i
    });
    ids.into_inner().unwrap()
}

#[test]
fn env_knob_controls_the_worker_count() {
    let saved = std::env::var("PNP_SWEEP_THREADS").ok();

    // Serial request: resolves to Fixed(1) and runs everything on the
    // calling thread.
    std::env::set_var("PNP_SWEEP_THREADS", "1");
    assert_eq!(Threads::from_env(), Threads::Fixed(1));
    let serial_ids = worker_ids(Threads::from_env());
    assert_eq!(serial_ids.len(), 1, "1 worker must mean 1 thread");
    assert!(serial_ids.contains(&std::thread::current().id()));

    // Parallel request: resolves to Fixed(4) and multiple workers
    // participate. Scheduling is up to the OS, so retry a few times before
    // declaring the knob broken.
    std::env::set_var("PNP_SWEEP_THREADS", "4");
    assert_eq!(Threads::from_env(), Threads::Fixed(4));
    assert!(
        (0..3).any(|_| worker_ids(Threads::from_env()).len() > 1),
        "4 workers must mean more than one participating thread"
    );

    // Run the env-resolving `Dataset::build` entry point itself while the
    // var is set: this executes the delegation path and re-checks that an
    // env-configured build matches the explicit API byte-for-byte.
    let machine = haswell();
    let mut apps = full_suite();
    apps.truncate(2);
    let vocab = Vocabulary::standard();
    let via_env = serde_json::to_string(&Dataset::build(&machine, &apps, &vocab)).unwrap();
    let explicit = serde_json::to_string(&Dataset::build_with_threads(
        &machine,
        &apps,
        &vocab,
        Threads::Fixed(4),
    ))
    .unwrap();
    assert_eq!(via_env, explicit);

    // Unset / auto / garbage all resolve to Auto rather than failing.
    std::env::remove_var("PNP_SWEEP_THREADS");
    assert_eq!(Threads::from_env(), Threads::Auto);
    std::env::set_var("PNP_SWEEP_THREADS", "auto");
    assert_eq!(Threads::from_env(), Threads::Auto);
    std::env::set_var("PNP_SWEEP_THREADS", "not-a-number");
    assert_eq!(Threads::from_env(), Threads::Auto);

    // The training knob reads its own variable with the same semantics and
    // flows into `TrainSettings::from_env` — and the two knobs must not
    // shadow each other.
    let saved_train = std::env::var("PNP_TRAIN_THREADS").ok();
    std::env::set_var("PNP_TRAIN_THREADS", "3");
    assert_eq!(Threads::from_train_env(), Threads::Fixed(3));
    assert_eq!(
        pnp::core::training::TrainSettings::from_env().train_threads,
        Threads::Fixed(3)
    );
    std::env::set_var("PNP_SWEEP_THREADS", "7");
    assert_eq!(Threads::from_train_env(), Threads::Fixed(3));
    assert_eq!(Threads::from_env(), Threads::Fixed(7));
    std::env::remove_var("PNP_TRAIN_THREADS");
    assert_eq!(Threads::from_train_env(), Threads::Auto);
    match saved_train {
        Some(v) => std::env::set_var("PNP_TRAIN_THREADS", v),
        None => std::env::remove_var("PNP_TRAIN_THREADS"),
    }

    // Restore whatever the invoking shell had exported.
    match saved {
        Some(v) => std::env::set_var("PNP_SWEEP_THREADS", v),
        None => std::env::remove_var("PNP_SWEEP_THREADS"),
    }
}
