//! # serde (offline stand-in)
//!
//! The build environment of this repository cannot reach crates.io, so this
//! crate provides a self-contained replacement for the slice of serde the
//! workspace uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, and JSON round-trips through the sibling `serde_json` stand-in.
//!
//! Instead of the real serde's visitor architecture, this implementation
//! uses a simple value-tree model: [`Serialize`] converts a type into a
//! [`Value`] tree and [`Deserialize`] reads one back. The derive macros (from
//! the sibling `serde_derive` crate) generate impls matching the real serde's
//! *externally tagged* data format, so the JSON produced here looks exactly
//! like what upstream serde_json would emit for the same types:
//!
//! * struct → JSON object keyed by field name,
//! * unit enum variant → `"VariantName"`,
//! * newtype variant → `{"VariantName": value}`,
//! * tuple variant → `{"VariantName": [values...]}`,
//! * struct variant → `{"VariantName": {fields...}}`.
//!
//! Limitations (enforced at compile time by the derive): no `#[serde(...)]`
//! attributes and no generic type parameters — none of which the workspace
//! needs.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (the data model both `Serialize`
/// and `Deserialize` speak).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats and `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// Key/value fields in insertion order (preserves struct field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the fields if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns a numeric value as `f64` (integers widen losslessly).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the value as a signed integer if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A short human-readable name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Looks up a field by name in an object's field list, yielding `Null` for
/// missing fields (so `Option` fields deserialize to `None`).
pub fn field<'a>(fields: &'a [(String, Value)], name: &str) -> &'a Value {
    fields
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
        .unwrap_or(&Value::Null)
}

/// Deserialization error: a message describing the shape mismatch.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Convenience constructor describing an unexpected value kind.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::new(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a serialization tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `self` back from a serialization tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$ty>::try_from(*i)
                        .map_err(|_| Error::new(format!(
                            "integer {i} out of range for {}", stringify!($ty)))),
                    _ => Err(Error::expected("integer", value)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_big_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    // Values beyond i64::MAX (e.g. `usize::MAX` used as an
                    // "unbounded" sentinel) degrade to the nearest
                    // representable float rather than wrapping negative; the
                    // saturating float→int cast on the way back restores the
                    // sentinel exactly, so the round-trip stays lossless.
                    Err(_) => Value::Float(*self as f64),
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$ty>::try_from(*i)
                        .map_err(|_| Error::new(format!(
                            "integer {i} out of range for {}", stringify!($ty)))),
                    Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Ok(*f as $ty),
                    _ => Err(Error::expected("unsigned integer", value)),
                }
            }
        }
    )*};
}

impl_big_uint!(u64, usize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as f64;
                // JSON has no NaN/Infinity literal; serialize as null, which
                // deserializes back to NaN (adequate for metric tables).
                if v.is_finite() { Value::Float(v) } else { Value::Null }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => Ok(*i as $ty),
                    Value::Float(f) => Ok(*f as $ty),
                    Value::Null => Ok(<$ty>::NAN),
                    _ => Err(Error::expected("number", value)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", value)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", value)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", value)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::new(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::expected("array (tuple)", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected tuple of length {expected}, got {}", items.len())));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(key, value)| (key.clone(), value.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| Error::expected("object (map)", value))?;
        fields
            .iter()
            .map(|(key, value)| Ok((key.clone(), V::from_value(value)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic across runs.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(key, value)| (key.clone(), value.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| Error::expected("object (map)", value))?;
        fields
            .iter()
            .map(|(key, value)| Ok((key.clone(), V::from_value(value)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_through_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::Int(3));
    }

    #[test]
    fn missing_field_reads_as_null() {
        let fields = vec![("a".to_string(), Value::Int(1))];
        assert_eq!(field(&fields, "a"), &Value::Int(1));
        assert_eq!(field(&fields, "b"), &Value::Null);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
    }

    #[test]
    fn int_range_checks() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert_eq!(u8::from_value(&Value::Int(200)).unwrap(), 200);
    }

    #[test]
    fn usize_max_round_trips_through_the_float_fallback() {
        // `usize::MAX` is used as an "unbounded" sentinel (e.g.
        // `RegionProfile::scalability_limit`); `as i64` would wrap it to -1
        // and break every store round-trip of a serialized dataset.
        let v = usize::MAX.to_value();
        assert!(matches!(v, Value::Float(_)), "must not wrap negative");
        assert_eq!(usize::from_value(&v).unwrap(), usize::MAX);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        // Ordinary values keep the integer representation.
        assert_eq!(7usize.to_value(), Value::Int(7));
        assert!(usize::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn map_serialization_is_sorted() {
        let mut map = HashMap::new();
        map.insert("z".to_string(), 1u32);
        map.insert("a".to_string(), 2u32);
        let Value::Object(fields) = map.to_value() else {
            panic!("expected object");
        };
        assert_eq!(fields[0].0, "a");
        assert_eq!(fields[1].0, "z");
    }

    #[test]
    fn tuple_roundtrip() {
        let v = (1u32, "x".to_string()).to_value();
        let back = <(u32, String)>::from_value(&v).unwrap();
        assert_eq!(back, (1, "x".to_string()));
    }
}
