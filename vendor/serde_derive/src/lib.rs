//! # serde_derive (offline stand-in)
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the vendored
//! value-tree `serde` stand-in. Because crates.io (and therefore `syn` /
//! `quote`) is unreachable in this build environment, the item is parsed
//! directly from the raw `proc_macro::TokenStream` and the generated impl is
//! assembled as a string.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields, tuple structs, unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Unsupported (compile error): generic parameters, `where` clauses, and
//! `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Field layout of a struct or an enum variant.
enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (count only).
    Tuple(usize),
    /// No fields.
    Unit,
}

/// One enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// The parsed derive input.
enum Parsed {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (value-tree flavour) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Parsed::Struct { name, fields } => gen_struct_serialize(&name, &fields),
        Parsed::Enum { name, variants } => gen_enum_serialize(&name, &variants),
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (value-tree flavour) for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Parsed::Struct { name, fields } => gen_struct_deserialize(&name, &fields),
        Parsed::Enum { name, variants } => gen_enum_deserialize(&name, &variants),
    };
    code.parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde derive does not support generic type `{name}`");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected token after `struct {name}`: {other:?}"),
            };
            Parsed::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("unexpected token after `enum {name}`: {other:?}"),
            };
            Parsed::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("vendored serde derive supports structs and enums, got `{other}`"),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Advances past one type (or discriminant expression): everything up to and
/// including the next comma that sits outside `<...>` generic brackets.
/// Token groups (parens, brackets, braces) are single trees, so only angle
/// brackets need explicit depth tracking; `->` is guarded so a function-type
/// arrow never closes a generic bracket.
fn skip_past_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i32 = 0;
    let mut last_char = ' ';
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            let c = p.as_char();
            if c == ',' && angle_depth == 0 {
                *i += 1;
                return;
            }
            match c {
                '<' => angle_depth += 1,
                '>' if last_char != '-' => angle_depth -= 1,
                _ => {}
            }
            last_char = c;
        } else {
            last_char = ' ';
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        names.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        skip_past_comma(&tokens, &mut i);
    }
    names
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_past_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_past_comma(&tokens, &mut i);
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// JSON object key for a field: raw identifiers serialize without `r#`.
fn key(name: &str) -> &str {
    name.trim_start_matches("r#")
}

fn serialize_impl_header(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn deserialize_impl_header(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_struct_serialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let mut pushes = String::new();
            for field in names {
                let _ = write!(
                    pushes,
                    "(::std::string::String::from(\"{}\"), \
                     ::serde::Serialize::to_value(&self.{})),",
                    key(field),
                    field
                );
            }
            format!("::serde::Value::Object(vec![{pushes}])")
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(","))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    serialize_impl_header(name, &body)
}

fn gen_struct_deserialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) if names.is_empty() => {
            format!("let _ = value;\n::std::result::Result::Ok({name} {{}})")
        }
        Fields::Named(names) => {
            let mut inits = String::new();
            for field in names {
                let _ = write!(
                    inits,
                    "{field}: ::serde::Deserialize::from_value(\
                         ::serde::field(fields, \"{}\"))?,",
                    key(field)
                );
            }
            format!(
                "let fields = value.as_object().ok_or_else(|| \
                     ::serde::Error::expected(\"object (struct {name})\", value))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Deserialize::from_value(&items[{idx}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| \
                     ::serde::Error::expected(\"array (struct {name})\", value))?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::new(format!(\
                         \"expected {n} elements for {name}, got {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(",")
            )
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    deserialize_impl_header(name, &body)
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        let tag = key(vname);
        match &variant.fields {
            Fields::Unit => {
                let _ = write!(
                    arms,
                    "{name}::{vname} => \
                     ::serde::Value::Str(::std::string::String::from(\"{tag}\")),"
                );
            }
            Fields::Tuple(1) => {
                let _ = write!(
                    arms,
                    "{name}::{vname}(f0) => ::serde::Value::Object(vec![\
                         (::std::string::String::from(\"{tag}\"), \
                          ::serde::Serialize::to_value(f0))]),"
                );
            }
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|idx| format!("f{idx}")).collect();
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                let _ = write!(
                    arms,
                    "{name}::{vname}({binders}) => ::serde::Value::Object(vec![\
                         (::std::string::String::from(\"{tag}\"), \
                          ::serde::Value::Array(vec![{items}]))]),",
                    binders = binders.join(","),
                    items = items.join(",")
                );
            }
            Fields::Named(field_names) => {
                let inner: Vec<String> = field_names
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{}\"), \
                             ::serde::Serialize::to_value({f}))",
                            key(f)
                        )
                    })
                    .collect();
                let _ = write!(
                    arms,
                    "{name}::{vname} {{ {fields} }} => ::serde::Value::Object(vec![\
                         (::std::string::String::from(\"{tag}\"), \
                          ::serde::Value::Object(vec![{inner}]))]),",
                    fields = field_names.join(","),
                    inner = inner.join(",")
                );
            }
        }
    }
    serialize_impl_header(name, &format!("match self {{ {arms} }}"))
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        let tag = key(vname);
        match &variant.fields {
            Fields::Unit => {
                let _ = write!(
                    unit_arms,
                    "\"{tag}\" => ::std::result::Result::Ok({name}::{vname}),"
                );
            }
            Fields::Tuple(1) => {
                let _ = write!(
                    data_arms,
                    "\"{tag}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)?)),"
                );
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|idx| format!("::serde::Deserialize::from_value(&items[{idx}])?"))
                    .collect();
                let _ = write!(
                    data_arms,
                    "\"{tag}\" => {{\n\
                         let items = inner.as_array().ok_or_else(|| \
                             ::serde::Error::expected(\"array ({name}::{vname})\", inner))?;\n\
                         if items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::new(format!(\
                                 \"expected {n} elements for {name}::{vname}, got {{}}\", \
                                 items.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vname}({items}))\n\
                     }}",
                    items = items.join(",")
                );
            }
            Fields::Named(field_names) => {
                let inits: Vec<String> = field_names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::field(obj, \"{}\"))?",
                            key(f)
                        )
                    })
                    .collect();
                let _ = write!(
                    data_arms,
                    "\"{tag}\" => {{\n\
                         let obj = inner.as_object().ok_or_else(|| \
                             ::serde::Error::expected(\"object ({name}::{vname})\", inner))?;\n\
                         ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                     }}",
                    inits = inits.join(",")
                );
            }
        }
    }
    let body = format!(
        "match value {{\n\
             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::Error::new(format!(\
                     \"unknown unit variant `{{other}}` for {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                     {data_arms}\n\
                     other => ::std::result::Result::Err(::serde::Error::new(format!(\
                         \"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
             }}\n\
             other => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"enum {name}\", other)),\n\
         }}"
    );
    deserialize_impl_header(name, &body)
}
