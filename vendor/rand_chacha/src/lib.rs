//! # rand_chacha (offline stand-in)
//!
//! A genuine ChaCha8 keystream generator implementing the [`rand::RngCore`]
//! and [`rand::SeedableRng`] traits of the sibling `rand` stand-in. The
//! stream is *not* bit-compatible with the upstream `rand_chacha` crate (the
//! upstream buffers blocks in a different word order), but it is a faithful
//! ChaCha8 implementation: deterministic, high-quality, and fast — which is
//! all the workspace's seeded experiments need.

use rand::{RngCore, SeedableRng};

/// The ChaCha8 random number generator (8 rounds, 32-byte key seed).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state words (the middle rows of the ChaCha
    /// matrix; the constants are fixed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generates the keystream block for the current counter value.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14] and state[15] are the nonce, fixed to zero.

        let mut working = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let matches = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(matches < 4);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn word_distribution_is_roughly_uniform() {
        // Count set bits over a long stream; a broken generator skews badly.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..4096).map(|_| rng.next_u32().count_ones()).sum();
        let total = 4096 * 32;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.01, "set-bit fraction {frac}");
    }
}
