//! # proptest (offline stand-in)
//!
//! A minimal property-testing harness exposing the slice of the real
//! proptest API this workspace uses: the [`proptest!`] macro (with
//! `#![proptest_config(...)]` and `pattern in strategy` arguments),
//! [`prop_assert!`] / [`prop_assert_eq!`], range strategies, [`Strategy::prop_map`],
//! and [`collection::vec`].
//!
//! Differences from the real crate: cases are generated from a seed derived
//! from the test name (fully deterministic, no persisted failure files), and
//! failing inputs are *not* shrunk — the failing case index and message are
//! reported instead. For the algebraic-identity tests in this repository
//! that trade-off is fine, and it keeps the harness dependency-free.

use std::ops::Range;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic per-test random source.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Creates a generator whose seed is derived from the test name, so each
    /// property gets its own reproducible stream.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(hash),
        }
    }
}

/// Test-runner configuration (`cases` = number of generated inputs).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.inner.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner.gen_range(self.clone())
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.inner.gen_range(self.clone())
    }
}

/// Number-of-elements specification for [`collection::vec`]: either an exact
/// length or a half-open range of lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            lo: len,
            hi: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.inner.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Defines property tests. Mirrors the real proptest surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop(x in 0usize..10, v in prop::collection::vec(-1.0f32..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr; $(
        $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => { $(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("property {} failed on case {}/{}: {}",
                           stringify!($name), case + 1, config.cases, message);
                }
            }
        }
    )* };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// with a formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..200 {
            let x = (1.0f32..2.0).generate(&mut rng);
            assert!((1.0..2.0).contains(&x));
            let n = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = crate::TestRng::deterministic("vec");
        let strat = prop::collection::vec(0.0f64..1.0, 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = prop::collection::vec(0.0f64..1.0, 4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }

    #[test]
    fn prop_map_applies_function() {
        let mut rng = crate::TestRng::deterministic("map");
        let strat = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_surface_works(x in 0usize..100, v in prop::collection::vec(-1.0f32..1.0, 1..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            for element in &v {
                prop_assert!((-1.0..1.0).contains(element), "element {} out of range", element);
            }
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
