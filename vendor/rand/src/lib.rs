//! # rand (offline stand-in)
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate re-implements the *tiny* slice of the real `rand` API that the
//! workspace actually uses: the [`RngCore`] / [`Rng`] / [`SeedableRng`]
//! traits, `gen::<u64>()` / `gen::<f32>()` sampling, and `gen_range` over
//! `usize` ranges. The concrete generator lives in the sibling `rand_chacha`
//! stand-in.
//!
//! The float conversions follow the same fixed-point construction as the real
//! crate (`u32 >> 8` scaled by 2⁻²⁴ for `f32`, `u64 >> 11` scaled by 2⁻⁵³ for
//! `f64`), so samples are uniform in `[0, 1)`.

use std::ops::{Range, RangeInclusive};

/// A source of raw random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits (two `next_u32` calls by default).
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

/// Types that can be sampled uniformly from raw bits (the `Standard`
/// distribution of the real crate).
pub trait Standard {
    /// Draws one uniform sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 significant bits scaled into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The sampled element type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer sampling in `[0, n)` by rejection of the biased tail.
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = (hi - lo) as u64 + 1;
        lo + below(rng, span) as usize
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform sample from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Generators that can be created from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way the real crate does, so small seeds still fill the whole
    /// seed array with well-mixed bits.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.0 >> 32) as u32
        }
    }

    #[test]
    fn f32_samples_are_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.gen_range(2..9usize);
            assert!((2..9).contains(&v));
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
        }
    }

    #[test]
    fn seed_expansion_fills_seed_bytes() {
        struct Probe([u8; 32]);
        impl RngCore for Probe {
            fn next_u32(&mut self) -> u32 {
                0
            }
        }
        impl SeedableRng for Probe {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Probe(seed)
            }
        }
        let p = Probe::seed_from_u64(0);
        // SplitMix64 of seed 0 must not leave the array all-zero.
        assert!(p.0.iter().any(|&b| b != 0));
    }
}
