//! # serde_json (offline stand-in)
//!
//! JSON serialization/deserialization over the vendored `serde` value tree:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], plus the [`Value`]
//! re-export. The emitted JSON matches what upstream serde_json would produce
//! for the same derived types (externally tagged enums, object-per-struct),
//! so checkpoints and experiment exports remain conventional JSON.
//!
//! Numbers are emitted with Rust's shortest round-trip float formatting;
//! non-finite floats become `null` (the vendored `serde` deserializes `null`
//! back to `NaN` for float targets).

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Error produced by JSON parsing (with byte offset) or value decoding.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value_str(input)?;
    Ok(T::from_value(&value)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn emit(value: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::Float(f) => emit_float(*f, out),
        Value::Str(s) => emit_string(s, out),
        Value::Array(items) => emit_seq(
            items.iter(),
            items.len(),
            out,
            indent,
            level,
            ('[', ']'),
            |item, out, indent, level| {
                emit(item, out, indent, level);
            },
        ),
        Value::Object(fields) => emit_seq(
            fields.iter(),
            fields.len(),
            out,
            indent,
            level,
            ('{', '}'),
            |(key, value), out, indent, level| {
                emit_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(value, out, indent, level);
            },
        ),
    }
}

/// Shared layout logic for arrays and objects (compact or pretty).
fn emit_seq<I: Iterator>(
    items: I,
    len: usize,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    delims: (char, char),
    mut emit_item: impl FnMut(I::Item, &mut String, Option<usize>, usize),
) {
    out.push(delims.0);
    if len == 0 {
        out.push(delims.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        emit_item(item, out, indent, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(delims.1);
}

fn emit_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let text = f.to_string();
    out.push_str(&text);
    // `5.0_f64.to_string()` is "5"; keep a float marker so the value parses
    // back as a float-typed JSON number.
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON document"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run up to the next escape or quote.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: expect \uDC00-\uDFFF next.
                                if !self.consume_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        _ => return Err(self.error("unknown escape sequence")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&5.0f64).unwrap(), "5.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let xs = vec![1.0f32, -2.5, 3.25];
        let json = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<f32>>(&json).unwrap(), xs);

        let mut map = std::collections::BTreeMap::new();
        map.insert("a".to_string(), vec![1u32, 2]);
        map.insert("b".to_string(), vec![]);
        let json = to_string(&map).unwrap();
        assert_eq!(json, r#"{"a":[1,2],"b":[]}"#);
        let back: std::collections::BTreeMap<String, Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let xs = vec![vec![1u32], vec![2, 3]];
        let pretty = to_string_pretty(&xs).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), xs);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ unicode: ü 猫".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""ü""#).unwrap(), "ü");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn non_finite_floats_become_null_and_read_back_as_nan() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = from_str::<Vec<u32>>("[1, 2,").unwrap_err();
        assert!(err.to_string().contains("byte"));
        assert!(from_str::<Vec<u32>>("[1] junk").is_err());
    }
}
