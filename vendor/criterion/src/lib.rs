//! # criterion (offline stand-in)
//!
//! A tiny wall-clock micro-benchmark harness with the subset of the real
//! criterion API used by this workspace's `benches/`: [`Criterion`],
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`], the
//! [`Bencher`] `iter` / `iter_batched` methods, [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each routine is warmed up briefly, then timed in
//! batches until ~200 ms of samples (or an iteration cap) is collected, and
//! the mean ns/iteration is printed. There is no statistical analysis, HTML
//! report, or baseline comparison — `cargo bench` here is a quick throughput
//! probe, not a rigorous harness. Passing `--test` (as `cargo test` does for
//! bench targets) runs every routine exactly once.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's traditional name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How `iter_batched` amortizes setup cost. The stand-in runs one setup per
/// measured call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-create the input on every iteration.
    PerIteration,
}

/// The benchmark context handed to `criterion_group!` targets.
pub struct Criterion {
    /// Run each routine exactly once (set by the `--test` CLI flag).
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            smoke_test: std::env::args().any(|arg| arg == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut bencher = Bencher {
            smoke_test: self.smoke_test,
            mean_ns: 0.0,
            iterations: 0,
        };
        f(&mut bencher);
        if self.smoke_test {
            println!("test {id} ... ok (smoke)");
        } else {
            println!(
                "{id:<50} {:>12.1} ns/iter ({} iterations)",
                bencher.mean_ns, bencher.iterations
            );
        }
    }
}

/// A named collection of benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a routine under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(id, f);
    }

    /// Sets the requested sample count. The stand-in's time-budgeted sampling
    /// ignores it; kept so benches written for real criterion compile.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Ends the group (printing nothing; kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark routine.
pub struct Bencher {
    smoke_test: bool,
    mean_ns: f64,
    iterations: u64,
}

/// Sampling budget: keep timing until this much wall-clock is spent.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(200);
/// Upper bound on timed iterations per routine.
const MAX_ITERATIONS: u64 = 10_000;

impl Bencher {
    /// Times `routine` repeatedly and records the mean latency.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            black_box(routine());
            self.iterations = 1;
            return;
        }
        // Warmup.
        black_box(routine());
        let started = Instant::now();
        let mut elapsed = Duration::ZERO;
        let mut iterations = 0u64;
        while elapsed < TARGET_SAMPLE_TIME && iterations < MAX_ITERATIONS {
            black_box(routine());
            iterations += 1;
            elapsed = started.elapsed();
        }
        self.mean_ns = elapsed.as_nanos() as f64 / iterations.max(1) as f64;
        self.iterations = iterations;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke_test {
            black_box(routine(setup()));
            self.iterations = 1;
            return;
        }
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let started = Instant::now();
        let mut iterations = 0u64;
        while started.elapsed() < TARGET_SAMPLE_TIME && iterations < MAX_ITERATIONS {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            iterations += 1;
        }
        self.mean_ns = measured.as_nanos() as f64 / iterations.max(1) as f64;
        self.iterations = iterations;
    }
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_mean() {
        let mut c = Criterion { smoke_test: false };
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 1);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { smoke_test: true };
        let mut group = c.benchmark_group("g");
        let mut ran = 0u64;
        group.bench_function("once", |b| {
            b.iter_batched(|| 1u64, |x| ran += x, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}
