//! The user-facing PnP tuner.
//!
//! [`PnPTuner`] packages a trained model together with the search space so a
//! downstream user can ask "which configuration should I run this region
//! with?" without touching the training pipeline. It needs **no executions**
//! of the target region — the prediction comes purely from the code graph
//! (and, in dynamic mode, one profiling run's counters).

use crate::dataset::Dataset;
use crate::training::TrainSettings;
use pnp_gnn::train::OptimizerKind;
use pnp_gnn::{ModelConfig, PnPModel, TrainConfig, Trainer, TrainingSample};
use pnp_graph::{EncodedGraph, Vocabulary};
use pnp_tuners::ConfigPoint;

/// What the tuner optimizes for.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TunerMode {
    /// Best execution time at the given power-level index of the machine's
    /// search space (scenario 1).
    PowerConstrained {
        /// Index into `SearchSpace::power_levels`.
        power_idx: usize,
    },
    /// Best energy-delay product over the joint power × configuration space
    /// (scenario 2).
    Edp,
}

/// A trained, ready-to-query PnP tuner.
pub struct PnPTuner {
    model: PnPModel,
    dataset_space: pnp_tuners::SearchSpace,
    mode: TunerMode,
    /// Per-class prior quality computed from the training sweeps (see
    /// `training::class_prior_scenario1`); blended with the model's
    /// probabilities at prediction time.
    class_prior: Vec<f64>,
}

impl PnPTuner {
    /// Trains a tuner on *all* regions of a dataset (no held-out fold — this
    /// is the deployment path; the evaluation pipelines in
    /// [`crate::training`] use cross-validation instead).
    pub fn train(dataset: &Dataset, mode: TunerMode, settings: &TrainSettings) -> PnPTuner {
        let (num_classes, samples): (usize, Vec<TrainingSample>) = match mode {
            TunerMode::PowerConstrained { power_idx } => (
                dataset.space.configs_per_power(),
                (0..dataset.len())
                    .map(|i| TrainingSample {
                        graph: dataset.regions[i].graph.clone(),
                        dynamic: None,
                        label: dataset.sweeps[i].best_time_config(power_idx),
                        group: dataset.regions[i].app.clone(),
                    })
                    .collect(),
            ),
            TunerMode::Edp => (
                dataset.space.num_tuned_points(),
                (0..dataset.len())
                    .map(|i| {
                        let (p, c) = dataset.sweeps[i].best_edp_point();
                        TrainingSample {
                            graph: dataset.regions[i].graph.clone(),
                            dynamic: None,
                            label: dataset.space.joint_index(p, c),
                            group: dataset.regions[i].app.clone(),
                        }
                    })
                    .collect(),
            ),
        };
        let mut model = PnPModel::new(ModelConfig {
            vocab_size: Vocabulary::standard().len(),
            hidden_dim: settings.hidden_dim,
            num_rgcn_layers: settings.rgcn_layers,
            fc_hidden: settings.fc_hidden,
            num_classes,
            num_relations: 3,
            num_dynamic_features: 0,
            dropout: 0.0,
            seed: settings.seed,
        });
        let trainer = Trainer::new(TrainConfig {
            epochs: settings.epochs,
            learning_rate: 1e-3,
            batch_size: settings.batch_size,
            optimizer: match mode {
                TunerMode::PowerConstrained { .. } => OptimizerKind::AdamWAmsgrad,
                TunerMode::Edp => OptimizerKind::Adam,
            },
            grad_clip: 5.0,
            freeze_gnn: false,
            seed: settings.seed,
        });
        trainer.train(&mut model, &samples);
        let all_idx: Vec<usize> = (0..dataset.len()).collect();
        let class_prior = match mode {
            TunerMode::PowerConstrained { power_idx } => {
                crate::training::class_prior_scenario1(dataset, power_idx, &all_idx)
            }
            TunerMode::Edp => crate::training::class_prior_scenario2(dataset, &all_idx),
        };
        PnPTuner {
            model,
            dataset_space: dataset.space.clone(),
            mode,
            class_prior,
        }
    }

    /// The tuner's mode.
    pub fn mode(&self) -> TunerMode {
        self.mode
    }

    /// Predicts the best configuration point for an (encoded) region graph —
    /// zero executions needed.
    pub fn predict(&mut self, graph: &EncodedGraph) -> ConfigPoint {
        let class =
            crate::training::predict_with_prior(&mut self.model, graph, None, &self.class_prior);
        match self.mode {
            TunerMode::PowerConstrained { power_idx } => ConfigPoint {
                power_watts: self.dataset_space.power_levels[power_idx],
                omp: self.dataset_space.omp_configs()[class],
            },
            TunerMode::Edp => self.dataset_space.decode_joint(class),
        }
    }

    /// The full ranking of configuration points, most promising first
    /// (prior-blended, like [`PnPTuner::predict`]).
    pub fn predict_ranked(&mut self, graph: &EncodedGraph, top_k: usize) -> Vec<ConfigPoint> {
        let probs = self.model.predict_proba(graph, None);
        let mut classes: Vec<usize> = (0..probs.len()).collect();
        // `total_cmp` keeps the ranking total even if a score degenerates to
        // NaN (e.g. a NaN model probability) — a panic here would take the
        // whole tuner down on one bad prediction.
        classes.sort_by(|&a, &b| {
            let score =
                |c: usize| (probs[c].max(1e-9) as f64).ln() + self.class_prior[c].max(1e-9).ln();
            score(b).total_cmp(&score(a))
        });
        classes
            .into_iter()
            .take(top_k)
            .map(|class| match self.mode {
                TunerMode::PowerConstrained { power_idx } => ConfigPoint {
                    power_watts: self.dataset_space.power_levels[power_idx],
                    omp: self.dataset_space.omp_configs()[class],
                },
                TunerMode::Edp => self.dataset_space.decode_joint(class),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_benchmarks::builders::{matmul_kernel, small_boundary_kernel, streaming_kernel};
    use pnp_benchmarks::Application;
    use pnp_machine::haswell;

    fn tiny_dataset() -> Dataset {
        let apps = vec![
            Application::new("a1", vec![matmul_kernel("a1_r0", 150, 150, 150)]),
            Application::new("a2", vec![streaming_kernel("a2_r0", 100_000, 2, 1.0)]),
            Application::new("a3", vec![small_boundary_kernel("a3_r0", 800, 2)]),
        ];
        Dataset::build(&haswell(), &apps, &Vocabulary::standard())
    }

    fn tiny_settings() -> TrainSettings {
        TrainSettings {
            epochs: 6,
            hidden_dim: 8,
            rgcn_layers: 1,
            fc_hidden: 16,
            ..TrainSettings::quick()
        }
    }

    #[test]
    fn trained_tuner_predicts_valid_points() {
        let ds = tiny_dataset();
        let mut tuner = PnPTuner::train(
            &ds,
            TunerMode::PowerConstrained { power_idx: 0 },
            &tiny_settings(),
        );
        let point = tuner.predict(&ds.regions[0].graph);
        assert_eq!(point.power_watts, ds.space.power_levels[0]);
        assert!(ds.space.omp_index(&point.omp).is_some());
        let ranked = tuner.predict_ranked(&ds.regions[0].graph, 5);
        assert_eq!(ranked.len(), 5);
        assert_eq!(ranked[0].omp, point.omp);
    }

    #[test]
    fn edp_mode_predicts_a_power_level_too() {
        let ds = tiny_dataset();
        let mut tuner = PnPTuner::train(&ds, TunerMode::Edp, &tiny_settings());
        let point = tuner.predict(&ds.regions[1].graph);
        assert!(ds.space.power_levels.contains(&point.power_watts));
        assert_eq!(tuner.mode(), TunerMode::Edp);
    }

    #[test]
    fn tuner_memorizes_training_regions_reasonably() {
        // With no held-out fold, the predicted configurations should perform
        // close to the per-region optimum on most training regions (exact
        // class recovery is not required — many configurations tie).
        let ds = tiny_dataset();
        let mut settings = tiny_settings();
        settings.epochs = 40;
        let mut tuner =
            PnPTuner::train(&ds, TunerMode::PowerConstrained { power_idx: 3 }, &settings);
        let mut near_optimal = 0;
        for i in 0..ds.len() {
            let predicted = tuner.predict(&ds.regions[i].graph);
            let class = ds.space.omp_index(&predicted.omp).expect("in space");
            let predicted_t = ds.sweeps[i].samples[3][class].time_s;
            let best_t = ds.sweeps[i].best_time(3);
            if predicted_t <= best_t * 3.0 {
                near_optimal += 1;
            }
        }
        assert!(
            near_optimal >= 1,
            "only {near_optimal}/3 training regions predicted near-optimally"
        );
    }
}
