//! # pnp-core
//!
//! The top of the PnP-tuner stack: everything needed to go from the benchmark
//! suite to the numbers in the paper's figures.
//!
//! * [`dataset`] — runs the exhaustive configuration sweep of every region on
//!   a machine (the "oracle" data), packages code graphs, counters, and
//!   best-configuration labels.
//! * [`pnp`] — the user-facing [`pnp::PnPTuner`]: a trained GNN that predicts
//!   the best OpenMP configuration (and power level, for EDP mode) for an
//!   unseen region *without executing it*.
//! * [`training`] — leave-one-application-out cross-validation pipelines for
//!   the static and dynamic variants, plus the GNN-freezing transfer-learning
//!   path.
//! * [`eval`] — the metrics the paper reports: speedup, greenup, EDP
//!   improvement, oracle-normalized values, and geometric means.
//! * [`experiments`] — one driver per table/figure (see DESIGN.md's
//!   experiment index); the binaries in `pnp-bench` are thin wrappers around
//!   these.
//! * [`report`] — plain-text table rendering and JSON export of experiment
//!   results.
//! * [`validate`] — the paper-fidelity harness: every figure/table claim
//!   encoded as a machine-checkable invariant (DESIGN.md §11), driven by the
//!   `validate_paper` binary and the `validate` CI job.
//! * [`artifact`] — the content-addressed artifact cache (DESIGN.md §12):
//!   fingerprints and keys for built datasets and trained model grids on top
//!   of `pnp-store`, so drivers and CI jobs reuse instead of recompute.
//! * [`registry`] — the model registry (DESIGN.md §14): a typed
//!   `machine × suite × hyperparameters → TrainedGrid` view assembled from
//!   the persisted store index, with O(1) lookup and `list`/`describe`.
//! * [`serving`] — the serve path shared by the `pnp-serve` daemon and the
//!   offline tests: wire request/response types, checkpoint restoration
//!   with fit checks, and the committee predictor that is bit-identical to
//!   the offline predict path (ARCHITECTURE.md §9).

pub mod artifact;
pub mod dataset;
pub mod eval;
pub mod experiments;
pub mod pnp;
pub mod registry;
pub mod report;
pub mod serving;
pub mod training;
pub mod validate;

pub use artifact::{dataset_fingerprint, ArtifactStore, DatasetCache};
pub use dataset::{Dataset, RegionRecord, Sweep};
pub use eval::{checked_geomean, fraction_within, geomean, normalized_speedups};
pub use pnp::PnPTuner;
pub use registry::{DatasetDescriptor, ModelDescriptor, ModelRegistry, ModelSummary};
pub use serving::{
    resolve_graph, serving_tables, GridPipeline, KernelInput, ServingTables, TuneObjective,
    TunePrediction, TuneRequest, TuneResponse, TuneService,
};
pub use training::{train_scenario1_models, train_scenario2_model, FoldPlan, TrainSettings};
pub use validate::{run_full_validation, ValidationOptions, ValidationReport};
