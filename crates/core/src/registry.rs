//! The model registry (ISSUE 7 tentpole): a typed view over the store index
//! mapping `machine × suite × hyperparameters → TrainedGrid`, with O(1)
//! lookup and `list`/`describe` APIs instead of directory walks.
//!
//! The registry holds no state of its own — it is assembled entirely from
//! the persisted [`StoreIndex`] (artifact headers only, no payload reads).
//! The join that makes it work: a model key embeds the SHA-256 of its
//! training dataset's serialization (`dataset_sha256`), and for a *stored*
//! dataset that hash is exactly the artifact header's `payload_sha256` — so
//! models connect to their dataset (and through it to the machine and
//! suite) via the index alone. DESIGN.md §14 documents this key contract.

use crate::artifact::SEED_SCHEME;
use crate::dataset::Dataset;
use crate::training::{TrainSettings, TrainedGrid};
use pnp_openmp::Threads;
use pnp_store::{ArtifactKey, IndexEntry, Store, StoreIndex};
use serde::{Deserialize, Serialize};

/// One stored dataset, as seen through the index.
#[derive(Clone, Debug)]
pub struct DatasetDescriptor {
    /// Machine name (the `machine` key field).
    pub machine: String,
    /// Number of applications in the suite.
    pub apps: usize,
    /// The dataset's content hash — what model keys embed.
    pub sha256: String,
    /// Content address of the artifact (for `describe` output).
    pub address: String,
    /// Payload size in bytes.
    pub payload_len: usize,
    key: ArtifactKey,
}

/// One stored model grid, joined to its dataset.
#[derive(Clone, Debug)]
pub struct ModelDescriptor {
    /// Stable registry id, e.g. `haswell/scenario1/static@1a2b3c4d5e6f`.
    pub id: String,
    /// Pipeline (`scenario1`, `scenario2`, or `unseen_power`).
    pub pipeline: String,
    /// Machine name from the joined dataset, or `None` when the training
    /// dataset is not (or no longer) in this store.
    pub machine: Option<String>,
    /// Counter-features variant.
    pub dynamic: bool,
    /// Held-out power index (`models/unseen_power` only).
    pub held_out_power: Option<usize>,
    /// The `dataset_sha256` key field.
    pub dataset_sha256: String,
    /// Content address of the grid artifact.
    pub address: String,
    /// Payload size in bytes.
    pub payload_len: usize,
    key: ArtifactKey,
}

/// Wire-friendly summary of one registry model (the daemon's `List`
/// response).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelSummary {
    /// Registry id.
    pub id: String,
    /// Pipeline name.
    pub pipeline: String,
    /// Machine name, or `"unjoined"` when the dataset is absent.
    pub machine: String,
    /// Counter-features variant.
    pub dynamic: bool,
    /// Held-out power index, for `unseen_power` grids.
    pub held_out_power: Option<usize>,
    /// Artifact address.
    pub address: String,
    /// Payload size in bytes.
    pub payload_len: usize,
}

impl ModelDescriptor {
    /// The full artifact key.
    pub fn key(&self) -> &ArtifactKey {
        &self.key
    }

    /// Reconstructs the [`TrainSettings`] the grid was trained under from
    /// the key's hyperparameter fields. Errors on a foreign seed scheme or
    /// a missing/unparseable field — a grid whose settings cannot be
    /// recovered cannot be restored into correctly shaped models.
    pub fn settings(&self) -> Result<TrainSettings, String> {
        let scheme = self.key.get("seed_scheme").unwrap_or("<missing>");
        if scheme != SEED_SCHEME {
            return Err(format!(
                "grid {} uses seed scheme {scheme:?}, this build replays {SEED_SCHEME:?}",
                self.id
            ));
        }
        let field = |name: &str| -> Result<usize, String> {
            self.key
                .get(name)
                .ok_or_else(|| format!("grid {} key lacks field {name:?}", self.id))?
                .parse::<usize>()
                .map_err(|e| format!("grid {} field {name:?}: {e}", self.id))
        };
        let seed = self
            .key
            .get("seed")
            .ok_or_else(|| format!("grid {} key lacks field \"seed\"", self.id))?
            .parse::<u64>()
            .map_err(|e| format!("grid {} field \"seed\": {e}", self.id))?;
        Ok(TrainSettings {
            hidden_dim: field("hidden_dim")?,
            rgcn_layers: field("rgcn_layers")?,
            fc_hidden: field("fc_hidden")?,
            epochs: field("epochs")?,
            batch_size: field("batch_size")?,
            folds: field("folds")?,
            seed,
            // Irrelevant for restoring checkpoints (weights are fully
            // overwritten); pinned for determinism anyway.
            train_threads: Threads::Fixed(1),
        })
    }

    /// The wire summary.
    pub fn summary(&self) -> ModelSummary {
        ModelSummary {
            id: self.id.clone(),
            pipeline: self.pipeline.clone(),
            machine: self.machine.clone().unwrap_or_else(|| "unjoined".into()),
            dynamic: self.dynamic,
            held_out_power: self.held_out_power,
            address: self.address.clone(),
            payload_len: self.payload_len,
        }
    }
}

/// The registry: every dataset and model grid in one store, joined.
pub struct ModelRegistry {
    store: Store,
    generation: String,
    datasets: Vec<DatasetDescriptor>,
    models: Vec<ModelDescriptor>,
}

/// The model-grid artifact kinds the registry understands.
const MODEL_KINDS: [&str; 3] = [
    "models/scenario1",
    "models/scenario2",
    "models/unseen_power",
];

impl ModelRegistry {
    /// Opens the registry over a store: loads (or rebuilds) the persisted
    /// index, then joins model entries to dataset entries. O(index size) —
    /// no artifact payload is read.
    pub fn open(store: Store) -> ModelRegistry {
        let index = StoreIndex::load_or_rebuild(&store);
        ModelRegistry::from_index(store, &index)
    }

    /// [`ModelRegistry::open`] from an already-loaded index.
    pub fn from_index(store: Store, index: &StoreIndex) -> ModelRegistry {
        let parse = |entry: &IndexEntry| match ArtifactKey::parse(&entry.key) {
            Ok(key) => Some(key),
            Err(why) => {
                eprintln!(
                    "[pnp-serve] registry skips {} {} (unparseable key: {why})",
                    entry.kind, entry.address
                );
                None
            }
        };
        let datasets: Vec<DatasetDescriptor> = index
            .of_kind("dataset")
            .filter_map(|entry| {
                let key = parse(entry)?;
                Some(DatasetDescriptor {
                    machine: key.get("machine").unwrap_or("unknown").to_string(),
                    apps: key.get("apps").and_then(|v| v.parse().ok()).unwrap_or(0),
                    sha256: entry.payload_sha256.clone(),
                    address: entry.address.clone(),
                    payload_len: entry.payload_len,
                    key,
                })
            })
            .collect();
        let mut models = Vec::new();
        for kind in MODEL_KINDS {
            let pipeline = kind.trim_start_matches("models/").to_string();
            for entry in index.of_kind(kind) {
                let Some(key) = parse(entry) else { continue };
                let dataset_sha256 = key.get("dataset_sha256").unwrap_or_default().to_string();
                let machine = datasets
                    .iter()
                    .find(|d| d.sha256 == dataset_sha256)
                    .map(|d| d.machine.clone());
                let dynamic = key.get("dynamic") == Some("true");
                let held_out_power = key.get("held_out_power").and_then(|v| v.parse().ok());
                let variant = match held_out_power {
                    Some(cap) => format!("cap{cap}"),
                    None if dynamic => "dynamic".to_string(),
                    None => "static".to_string(),
                };
                let id = format!(
                    "{}/{pipeline}/{variant}@{}",
                    machine.as_deref().unwrap_or("unjoined"),
                    &entry.address[..12]
                );
                models.push(ModelDescriptor {
                    id,
                    pipeline: pipeline.clone(),
                    machine,
                    dynamic,
                    held_out_power,
                    dataset_sha256,
                    address: entry.address.clone(),
                    payload_len: entry.payload_len,
                    key,
                });
            }
        }
        ModelRegistry {
            store,
            generation: index.generation().to_string(),
            datasets,
            models,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Generation stamp of the store index this registry was assembled
    /// from ([`StoreIndex::generation`]). The serve daemon's reload watcher
    /// compares this against the store's current generation to decide when
    /// a hot reload is due.
    pub fn generation(&self) -> &str {
        &self.generation
    }

    /// All stored datasets, in index (kind, address) order.
    pub fn datasets(&self) -> &[DatasetDescriptor] {
        &self.datasets
    }

    /// All stored model grids, grouped by pipeline then address order.
    pub fn models(&self) -> &[ModelDescriptor] {
        &self.models
    }

    /// One model by registry id.
    pub fn get(&self, id: &str) -> Option<&ModelDescriptor> {
        self.models.iter().find(|m| m.id == id)
    }

    /// The dataset a model was trained on, when it is in this store.
    pub fn dataset_of(&self, model: &ModelDescriptor) -> Option<&DatasetDescriptor> {
        self.datasets
            .iter()
            .find(|d| d.sha256 == model.dataset_sha256)
    }

    /// Loads a dataset payload. `None` on a (corrupt-file) miss.
    pub fn load_dataset(&self, dataset: &DatasetDescriptor) -> Option<Dataset> {
        self.store.load(&dataset.key)
    }

    /// Loads a model grid payload. `None` on a (corrupt-file) miss.
    pub fn load_grid(&self, model: &ModelDescriptor) -> Option<TrainedGrid> {
        self.store.load(&model.key)
    }

    /// Human-readable description of one model: identity, provenance, and
    /// every hyperparameter from the key — the daemon's `Describe` answer.
    pub fn describe(&self, id: &str) -> Option<String> {
        let model = self.get(id)?;
        let mut out = format!(
            "{}\n  pipeline: {}\n  machine: {}\n  dynamic: {}\n",
            model.id,
            model.pipeline,
            model.machine.as_deref().unwrap_or("unjoined"),
            model.dynamic,
        );
        if let Some(cap) = model.held_out_power {
            out.push_str(&format!("  held_out_power: {cap}\n"));
        }
        out.push_str(&format!(
            "  artifact: {} ({} bytes)\n",
            model.address, model.payload_len
        ));
        match self.dataset_of(model) {
            Some(ds) => out.push_str(&format!(
                "  dataset: {} ({} apps, {} bytes, sha256 {})\n",
                ds.address, ds.apps, ds.payload_len, ds.sha256
            )),
            None => out.push_str(&format!(
                "  dataset: NOT IN STORE (sha256 {})\n",
                model.dataset_sha256
            )),
        }
        for (name, value) in model.key.fields() {
            if name != "dataset_sha256" {
                out.push_str(&format!("  {name}: {value}\n"));
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ArtifactStore;
    use pnp_graph::Vocabulary;
    use pnp_machine::haswell;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pnp_registry_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// An empty-suite dataset is enough to exercise keys and joins without
    /// training anything.
    fn seed_store(dir: &std::path::Path) -> (Dataset, TrainSettings) {
        let store = ArtifactStore::open(dir);
        let ds = store.load_or_build_dataset(
            &haswell(),
            &[],
            &Vocabulary::standard(),
            Threads::Fixed(1),
        );
        let settings = TrainSettings::quick();
        let cache = store.for_dataset(&ds);
        let grid = TrainedGrid {
            jobs: vec![(0, 0)],
            weights: vec![pnp_tensor::ParameterBundle::default()],
        };
        store
            .store()
            .save(&cache.scenario1_key(&settings, false), &grid)
            .unwrap();
        store
            .store()
            .save(&cache.scenario1_key(&settings, true), &grid)
            .unwrap();
        store
            .store()
            .save(&cache.unseen_power_key(&settings, 3), &grid)
            .unwrap();
        (ds, settings)
    }

    #[test]
    fn registry_joins_models_to_their_dataset() {
        let dir = temp_dir("join");
        let (_ds, _settings) = seed_store(&dir);
        let registry = ModelRegistry::open(Store::open(&dir));
        assert_eq!(registry.datasets().len(), 1);
        assert_eq!(registry.models().len(), 3);
        for model in registry.models() {
            assert_eq!(model.machine.as_deref(), Some("haswell"), "{}", model.id);
            assert!(model.id.starts_with("haswell/"), "{}", model.id);
            assert!(registry.dataset_of(model).is_some());
        }
        let statics: Vec<_> = registry
            .models()
            .iter()
            .filter(|m| m.pipeline == "scenario1" && !m.dynamic)
            .collect();
        assert_eq!(statics.len(), 1);
        let caps: Vec<_> = registry
            .models()
            .iter()
            .filter(|m| m.held_out_power == Some(3))
            .collect();
        assert_eq!(caps.len(), 1);
        assert!(caps[0].id.contains("/cap3@"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn descriptor_settings_round_trip_the_key_fields() {
        let dir = temp_dir("settings");
        let (_ds, settings) = seed_store(&dir);
        let registry = ModelRegistry::open(Store::open(&dir));
        let model = &registry.models()[0];
        let restored = model.settings().unwrap();
        assert_eq!(restored.hidden_dim, settings.hidden_dim);
        assert_eq!(restored.rgcn_layers, settings.rgcn_layers);
        assert_eq!(restored.fc_hidden, settings.fc_hidden);
        assert_eq!(restored.epochs, settings.epochs);
        assert_eq!(restored.batch_size, settings.batch_size);
        assert_eq!(restored.folds, settings.folds);
        assert_eq!(restored.seed, settings.seed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lookup_describe_and_load_work_by_id() {
        let dir = temp_dir("describe");
        seed_store(&dir);
        let registry = ModelRegistry::open(Store::open(&dir));
        let id = registry.models()[0].id.clone();
        let described = registry.describe(&id).expect("describable");
        assert!(described.contains("pipeline:"));
        assert!(described.contains("machine: haswell"));
        assert!(described.contains("epochs:"));
        assert!(registry.describe("nonexistent").is_none());
        let model = registry.get(&id).unwrap();
        let grid = registry.load_grid(model).expect("grid loads");
        assert_eq!(grid.jobs, vec![(0, 0)]);
        let ds = registry
            .load_dataset(registry.dataset_of(model).unwrap())
            .expect("dataset loads");
        assert!(ds.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unjoined_models_are_listed_not_hidden() {
        // A grid whose dataset was never stored still appears (machine
        // unjoined) — operators must be able to see orphaned grids.
        let dir = temp_dir("unjoined");
        let store = ArtifactStore::open(&dir);
        let ds = Dataset::build_with_threads(
            &haswell(),
            &[],
            &Vocabulary::standard(),
            Threads::Fixed(1),
        );
        let cache = store.for_dataset(&ds);
        let grid = TrainedGrid {
            jobs: vec![],
            weights: vec![],
        };
        store
            .store()
            .save(&cache.scenario2_key(&TrainSettings::quick(), false), &grid)
            .unwrap();
        let registry = ModelRegistry::open(Store::open(&dir));
        assert_eq!(registry.datasets().len(), 0);
        assert_eq!(registry.models().len(), 1);
        let model = &registry.models()[0];
        assert_eq!(model.machine, None);
        assert!(model.id.starts_with("unjoined/scenario2/static@"));
        assert_eq!(model.summary().machine, "unjoined");
        assert!(registry.dataset_of(model).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
