//! Dataset creation: the exhaustive sweep that both trains the model (labels)
//! and serves as the oracle every tuner is normalized against.

use pnp_benchmarks::Application;
use pnp_graph::{EncodedGraph, Vocabulary};
use pnp_machine::{CounterSet, EnergySample, MachineSpec, PowerModel};
use pnp_openmp::sim::simulate_region_with_model;
use pnp_openmp::{parallel_map_indexed, OmpConfig, RegionProfile, Threads};
use pnp_tuners::{ConfigPoint, SearchSpace};
use serde::{Deserialize, Serialize};

/// One region of the dataset: identification, static features, and profile.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegionRecord {
    /// Application the region belongs to (the LOOCV group).
    pub app: String,
    /// Region name.
    pub region: String,
    /// Encoded code graph (static features).
    pub graph: EncodedGraph,
    /// Workload profile driving the simulator.
    pub profile: RegionProfile,
}

/// The exhaustive sweep of one region on one machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sweep {
    /// `samples[p][c]` = sample of OpenMP config `c` (space order) at power
    /// level `p`.
    pub samples: Vec<Vec<EnergySample>>,
    /// Sample of the *default* OpenMP configuration at each power level.
    pub default_samples: Vec<EnergySample>,
    /// Counters observed when running the default configuration at each
    /// power level (the dynamic features; the paper collects them with PAPI
    /// in two profiling runs).
    pub default_counters: Vec<CounterSet>,
}

impl Sweep {
    /// Index of the fastest OpenMP configuration at power level `p`.
    pub fn best_time_config(&self, p: usize) -> usize {
        argmin(self.samples[p].iter().map(|s| s.time_s))
    }

    /// The best (lowest) execution time at power level `p`.
    pub fn best_time(&self, p: usize) -> f64 {
        self.samples[p][self.best_time_config(p)].time_s
    }

    /// `(power level, config)` minimizing the energy-delay product.
    pub fn best_edp_point(&self) -> (usize, usize) {
        let mut best = (0usize, 0usize);
        let mut best_edp = f64::INFINITY;
        for (p, row) in self.samples.iter().enumerate() {
            for (c, s) in row.iter().enumerate() {
                if s.edp() < best_edp {
                    best_edp = s.edp();
                    best = (p, c);
                }
            }
        }
        best
    }

    /// The lowest EDP in the joint space.
    pub fn best_edp(&self) -> f64 {
        let (p, c) = self.best_edp_point();
        self.samples[p][c].edp()
    }
}

fn argmin<I: Iterator<Item = f64>>(values: I) -> usize {
    let mut best = 0;
    let mut best_v = f64::INFINITY;
    for (i, v) in values.enumerate() {
        if v < best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// The full dataset for one machine.
///
/// Serializes losslessly (floats use shortest-round-trip formatting), which
/// the artifact store relies on: a dataset cached by `pnp_core::artifact`
/// and loaded back re-serializes to byte-identical JSON.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// The machine the sweep was performed on.
    pub machine: MachineSpec,
    /// The Table I search space of that machine.
    pub space: SearchSpace,
    /// Region records (static features), in suite order.
    pub regions: Vec<RegionRecord>,
    /// Exhaustive sweeps, parallel to `regions`.
    pub sweeps: Vec<Sweep>,
}

/// The serial (per-region) unit of work of [`Dataset::build`]: one region's
/// full `(power level, OpenMP configuration)` grid plus its graph encoding.
struct RegionJob {
    app: String,
    region: String,
    graph: pnp_graph::CodeGraph,
    profile: RegionProfile,
}

impl RegionJob {
    fn run(
        &self,
        machine: &MachineSpec,
        power_model: &PowerModel,
        space: &SearchSpace,
        omp_configs: &[OmpConfig],
        vocab: &Vocabulary,
    ) -> (RegionRecord, Sweep) {
        let mut samples = Vec::with_capacity(space.power_levels.len());
        let mut default_samples = Vec::with_capacity(space.power_levels.len());
        let mut default_counters = Vec::with_capacity(space.power_levels.len());
        for &power in &space.power_levels {
            let row: Vec<EnergySample> = omp_configs
                .iter()
                .map(|omp| {
                    simulate_region_with_model(machine, power_model, &self.profile, omp, power)
                        .sample()
                })
                .collect();
            let default_run = simulate_region_with_model(
                machine,
                power_model,
                &self.profile,
                &space.default_config,
                power,
            );
            default_samples.push(default_run.sample());
            default_counters.push(default_run.counters);
            samples.push(row);
        }
        (
            RegionRecord {
                app: self.app.clone(),
                region: self.region.clone(),
                graph: EncodedGraph::encode(&self.graph, vocab),
                profile: self.profile.clone(),
            },
            Sweep {
                samples,
                default_samples,
                default_counters,
            },
        )
    }
}

impl Dataset {
    /// Builds the dataset: encodes every region's code graph and sweeps every
    /// `(power level, OpenMP configuration)` point through the execution
    /// model.
    ///
    /// Worker count comes from the `PNP_SWEEP_THREADS` environment variable
    /// (see [`Threads::from_env`]); use [`Dataset::build_with_threads`] to
    /// set it explicitly. The result is bit-identical for every worker
    /// count.
    pub fn build(machine: &MachineSpec, apps: &[Application], vocab: &Vocabulary) -> Dataset {
        Dataset::build_with_threads(machine, apps, vocab, Threads::from_env())
    }

    /// Builds the dataset with an explicit worker count, fanning the
    /// per-region sweeps out over [`pnp_openmp::parallel_map_indexed`].
    ///
    /// Each region's `(power level, OpenMP configuration)` grid is one
    /// independent job; results are written back by region index, so
    /// `regions`/`sweeps` keep suite order and the dataset is bit-identical
    /// regardless of `threads` (DESIGN.md §9 explains why that determinism
    /// is a hard requirement for LOOCV reproducibility).
    pub fn build_with_threads(
        machine: &MachineSpec,
        apps: &[Application],
        vocab: &Vocabulary,
        threads: Threads,
    ) -> Dataset {
        let space = SearchSpace::for_machine(machine);
        let power_model = PowerModel::for_machine(machine);
        let omp_configs = space.omp_configs();

        // Serial, cheap prologue: lower every region to its code graph and
        // collect the independent jobs in suite order.
        let mut jobs = Vec::new();
        for app in apps {
            let graphs = app.region_graphs();
            for ((region_name, graph), bench) in graphs.into_iter().zip(&app.regions) {
                debug_assert_eq!(region_name, bench.source.name);
                jobs.push(RegionJob {
                    app: app.name.clone(),
                    region: bench.source.name.clone(),
                    graph,
                    profile: bench.profile.clone(),
                });
            }
        }

        // Parallel fan-out: job `i` produces exactly slot `i` of the output.
        let results = parallel_map_indexed(jobs.len(), threads, |i| {
            jobs[i].run(machine, &power_model, &space, &omp_configs, vocab)
        });
        let (regions, sweeps) = results.into_iter().unzip();

        Dataset {
            machine: machine.clone(),
            space,
            regions,
            sweeps,
        }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when the dataset holds no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The distinct application names, in first-appearance order (the LOOCV
    /// folds).
    pub fn applications(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for r in &self.regions {
            if !seen.contains(&r.app) {
                seen.push(r.app.clone());
            }
        }
        seen
    }

    /// The configuration point for `(power index, OpenMP class index)`.
    pub fn point(&self, power_idx: usize, omp_idx: usize) -> ConfigPoint {
        ConfigPoint {
            power_watts: self.space.power_levels[power_idx],
            omp: self.space.omp_configs()[omp_idx],
        }
    }

    /// The default OpenMP configuration of this machine.
    pub fn default_config(&self) -> OmpConfig {
        self.space.default_config
    }

    /// Normalized dynamic-feature vector for a region at a power level:
    /// the five PAPI-style counters (from the default-configuration profiling
    /// run) plus, optionally, the normalized power cap.
    pub fn dynamic_features(
        &self,
        region_idx: usize,
        power_idx: usize,
        include_power: bool,
    ) -> Vec<f32> {
        let mut f = self.sweeps[region_idx].default_counters[power_idx].normalized_features();
        if include_power {
            let max_power = self.machine.tdp_watts;
            f.push((self.space.power_levels[power_idx] / max_power) as f32);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_benchmarks::builders::{matmul_kernel, small_boundary_kernel, streaming_kernel};
    use pnp_machine::haswell;

    fn tiny_apps() -> Vec<Application> {
        vec![
            Application::new("appA", vec![matmul_kernel("appA_r0", 200, 200, 200)]),
            Application::new(
                "appB",
                vec![
                    streaming_kernel("appB_r0", 200_000, 2, 1.0),
                    small_boundary_kernel("appB_r1", 1000, 2),
                ],
            ),
        ]
    }

    #[test]
    fn parallel_build_is_bit_identical_to_the_serial_build() {
        let machine = haswell();
        let apps = tiny_apps();
        let vocab = Vocabulary::standard();
        let serial = Dataset::build_with_threads(&machine, &apps, &vocab, Threads::Fixed(1));
        let baseline = serde_json::to_string(&serial).expect("serializable");
        for workers in [2usize, 4] {
            let par = Dataset::build_with_threads(&machine, &apps, &vocab, Threads::Fixed(workers));
            assert_eq!(
                serde_json::to_string(&par).unwrap(),
                baseline,
                "dataset differs at {workers} workers"
            );
        }
    }

    #[test]
    fn dataset_dimensions_are_consistent() {
        let machine = haswell();
        let ds = Dataset::build(&machine, &tiny_apps(), &Vocabulary::standard());
        assert_eq!(ds.len(), 3);
        assert_eq!(
            ds.applications(),
            vec!["appA".to_string(), "appB".to_string()]
        );
        for sweep in &ds.sweeps {
            assert_eq!(sweep.samples.len(), 4);
            assert_eq!(sweep.samples[0].len(), 126);
            assert_eq!(sweep.default_samples.len(), 4);
        }
    }

    #[test]
    fn best_labels_are_really_the_best() {
        let machine = haswell();
        let ds = Dataset::build(&machine, &tiny_apps(), &Vocabulary::standard());
        for sweep in &ds.sweeps {
            for p in 0..4 {
                let best = sweep.best_time_config(p);
                let best_t = sweep.samples[p][best].time_s;
                assert!(sweep.samples[p].iter().all(|s| s.time_s >= best_t - 1e-15));
            }
            let (bp, bc) = sweep.best_edp_point();
            let best_edp = sweep.samples[bp][bc].edp();
            for row in &sweep.samples {
                for s in row {
                    assert!(s.edp() >= best_edp - 1e-15);
                }
            }
        }
    }

    #[test]
    fn oracle_beats_or_matches_the_default_configuration() {
        let machine = haswell();
        let ds = Dataset::build(&machine, &tiny_apps(), &Vocabulary::standard());
        for sweep in &ds.sweeps {
            for p in 0..4 {
                // The tuned space does not contain the default chunk setting,
                // but the best tuned config should still be at least roughly
                // as good as the default (and usually much better).
                assert!(sweep.best_time(p) <= sweep.default_samples[p].time_s * 1.05);
            }
        }
    }

    #[test]
    fn dynamic_features_have_expected_width() {
        let machine = haswell();
        let ds = Dataset::build(&machine, &tiny_apps(), &Vocabulary::standard());
        assert_eq!(ds.dynamic_features(0, 0, false).len(), 5);
        assert_eq!(ds.dynamic_features(0, 0, true).len(), 6);
        let low = ds.dynamic_features(0, 0, true);
        let high = ds.dynamic_features(0, 3, true);
        assert!(high[5] > low[5], "power feature should grow with the cap");
    }
}
