//! Evaluation metrics used across all experiments.

use std::collections::BTreeMap;

/// Geometric mean of positive values (1.0 for an empty slice; non-positive
/// or non-finite entries are floored instead of panicking — see
/// [`pnp_tensor::ops::geometric_mean`]).
pub fn geomean(values: &[f64]) -> f64 {
    pnp_tensor::ops::geometric_mean(values)
}

/// Strict geometric mean: `None` for an empty slice or any non-positive /
/// non-finite entry. The paper-fidelity validator uses this to *detect*
/// degenerate aggregates (e.g. a zero-energy region) instead of silently
/// absorbing them.
pub fn checked_geomean(values: &[f64]) -> Option<f64> {
    pnp_tensor::ops::checked_geometric_mean(values)
}

/// Fraction of values that are at least `threshold` (e.g. the paper's
/// "within 5 % of the oracle" is `fraction_within(&normalized, 0.95)`).
pub fn fraction_within(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v >= threshold).count() as f64 / values.len() as f64
}

/// Fraction of values *strictly above* `threshold` — "faster than the
/// default" means strictly faster, so a default-equivalent prediction
/// (ratio exactly 1.0) must not count as an improvement. The paper-fidelity
/// validator's majority claims rely on this strictness.
pub fn fraction_above(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v > threshold).count() as f64 / values.len() as f64
}

/// Fraction of pairwise comparisons where `a` is at least as good as `b`
/// (used for "PnP outperforms BLISS in X % of cases").
pub fn fraction_no_worse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).filter(|(x, y)| **x >= **y - 1e-12).count() as f64 / a.len() as f64
}

/// Groups `(application, value)` pairs and returns the per-application
/// geometric mean, in first-appearance order — how every per-application bar
/// in the paper's figures is computed.
pub fn per_app_geomean(pairs: &[(String, f64)]) -> Vec<(String, f64)> {
    let mut order = Vec::new();
    let mut grouped: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (app, v) in pairs {
        if !order.contains(app) {
            order.push(app.clone());
        }
        grouped.entry(app.clone()).or_default().push(*v);
    }
    order
        .into_iter()
        .map(|app| {
            let g = geomean(&grouped[&app]);
            (app, g)
        })
        .collect()
}

/// Normalizes tuner speedups by oracle speedups element-wise (the y-axis of
/// Figures 2–6). Values are clamped to 1.0 from above only when numerical
/// noise pushes a tuner marginally past the oracle.
pub fn normalized_speedups(tuner: &[f64], oracle: &[f64]) -> Vec<f64> {
    assert_eq!(tuner.len(), oracle.len());
    tuner
        .iter()
        .zip(oracle)
        .map(|(t, o)| if *o <= 0.0 { 0.0 } else { (t / o).min(1.0) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn fraction_within_counts_correctly() {
        let v = [1.0, 0.96, 0.90, 0.80];
        assert!((fraction_within(&v, 0.95) - 0.5).abs() < 1e-12);
        assert_eq!(fraction_within(&[], 0.95), 0.0);
    }

    #[test]
    fn fraction_no_worse_is_directional() {
        let a = [1.0, 0.9, 0.8];
        let b = [0.9, 0.9, 0.9];
        assert!((fraction_no_worse(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_app_geomean_groups_and_preserves_order() {
        let pairs = vec![
            ("beta".to_string(), 2.0),
            ("alpha".to_string(), 4.0),
            ("beta".to_string(), 8.0),
        ];
        let out = per_app_geomean(&pairs);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, "beta");
        assert!((out[0].1 - 4.0).abs() < 1e-12);
        assert_eq!(out[1].0, "alpha");
    }

    #[test]
    fn normalized_speedups_clamp_at_one() {
        let n = normalized_speedups(&[1.2, 0.5], &[1.0, 1.0]);
        assert_eq!(n, vec![1.0, 0.5]);
    }

    #[test]
    fn normalized_speedups_handle_zero_oracle() {
        // A zero-time oracle (degenerate region) maps to 0.0, not inf/NaN.
        let n = normalized_speedups(&[1.0, 1.0], &[0.0, 2.0]);
        assert_eq!(n[0], 0.0);
        assert!((n[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn checked_geomean_flags_degenerate_aggregates() {
        assert!((checked_geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(checked_geomean(&[]), None);
        assert_eq!(checked_geomean(&[1.0, 0.0]), None);
        // The non-strict variant stays finite on the same inputs.
        assert!(geomean(&[1.0, 0.0]).is_finite());
    }

    #[test]
    fn fraction_metrics_handle_exact_ties() {
        // Identical values across the board: everything ties, nothing panics.
        let tied = [1.0, 1.0, 1.0];
        assert_eq!(fraction_within(&tied, 1.0), 1.0);
        assert_eq!(fraction_no_worse(&tied, &tied), 1.0);
        // A tie at exactly the threshold counts as "within"...
        assert_eq!(fraction_within(&[0.95], 0.95), 1.0);
        // ...but not as "above": a default-equivalent prediction (ratio
        // exactly 1.0) is not an improvement.
        assert_eq!(fraction_above(&tied, 1.0), 0.0);
        assert!((fraction_above(&[1.0, 1.2, 0.9], 1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(fraction_above(&[], 1.0), 0.0);
    }
}
