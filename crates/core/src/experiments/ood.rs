//! Out-of-distribution generalization (ROADMAP item 4): train on the frozen
//! paper suite, evaluate on kernels the model has *never seen* — synthetic
//! programs emitted by the `pnp_ir::gen` generator and swept through the
//! same analytic machine models as every paper region.
//!
//! LOOCV over the 30-app suite only measures generalization *within* the
//! frozen distribution. This driver measures it *outside*: the generated
//! corpus varies loop nests, arithmetic mixes, memory footprints, and
//! scalability limits beyond anything in the suite, so a model that merely
//! memorized suite shapes scores near the default here, while one that
//! learned transferable structure tracks the oracle. The paper-fidelity
//! validator gates the resulting invariants (`ood.*` checks).

use crate::artifact::{self, ArtifactStore, DatasetCache};
use crate::dataset::Dataset;
use crate::eval::{fraction_within, geomean};
use crate::report::TextTable;
use crate::training::{class_prior_scenario1, predict_with_prior, train_ood_model, TrainSettings};
use pnp_graph::Vocabulary;
use pnp_machine::MachineSpec;
use serde::{Deserialize, Serialize};

use super::{check_dataset, ExperimentError};

/// Per-power-cap aggregate over the generated evaluation corpus.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OodRow {
    /// Power cap (W) this row was evaluated under.
    pub power_watts: f64,
    /// Geometric-mean speedup of the PnP-predicted configuration over the
    /// OpenMP default, across the generated regions.
    pub pnp_geomean_speedup: f64,
    /// Geometric-mean speedup of the per-region oracle (exhaustive-sweep
    /// best) over the default — the ceiling PnP is measured against.
    pub oracle_geomean_speedup: f64,
    /// Fraction of generated regions whose predicted configuration runs
    /// within 10 % of its oracle time.
    pub frac_within_10pct_of_oracle: f64,
    /// Fraction of generated regions where the prediction is no slower than
    /// the default configuration.
    pub frac_no_worse_than_default: f64,
}

/// Serializable outcome of the out-of-distribution experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OodResults {
    /// Generator seed the evaluation corpus was built from.
    pub seed: u64,
    /// Number of generated kernels evaluated.
    pub kernels: usize,
    /// Region names of the generated corpus, in corpus order.
    pub regions: Vec<String>,
    /// One row per power cap of the shared search space.
    pub rows: Vec<OodRow>,
}

impl OodResults {
    /// Geometric mean of the per-cap PnP speedups — the headline "does the
    /// model beat the default out of distribution" number.
    pub fn overall_pnp_speedup(&self) -> f64 {
        geomean(
            &self
                .rows
                .iter()
                .map(|r| r.pnp_geomean_speedup)
                .collect::<Vec<_>>(),
        )
    }

    /// Geometric mean of the per-cap oracle speedups.
    pub fn overall_oracle_speedup(&self) -> f64 {
        geomean(
            &self
                .rows
                .iter()
                .map(|r| r.oracle_geomean_speedup)
                .collect::<Vec<_>>(),
        )
    }

    /// How much of the oracle's headroom the model captures overall, as
    /// `overall PnP speedup / overall oracle speedup` (1.0 = oracle-perfect,
    /// values near `1 / oracle` = no better than default).
    pub fn oracle_fraction(&self) -> f64 {
        let oracle = self.overall_oracle_speedup();
        if oracle <= 0.0 {
            return 0.0;
        }
        self.overall_pnp_speedup() / oracle
    }

    /// Smallest per-cap fraction of regions that are no worse than default —
    /// the weakest cap is what the validation gate cares about.
    pub fn min_no_worse_than_default(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.frac_no_worse_than_default)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Renders the per-cap table plus the overall summary line.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "power cap (W)",
            "PnP speedup",
            "oracle speedup",
            "within 10% of oracle",
            "no worse than default",
        ]);
        for r in &self.rows {
            t.row(&[
                format!("{:.0}", r.power_watts),
                format!("{:.3}", r.pnp_geomean_speedup),
                format!("{:.3}", r.oracle_geomean_speedup),
                format!("{:.0}%", 100.0 * r.frac_within_10pct_of_oracle),
                format!("{:.0}%", 100.0 * r.frac_no_worse_than_default),
            ]);
        }
        format!(
            "\nOut-of-distribution generalization ({} generated kernels, seed {:#x})\n{}\noverall: PnP {:.3}x vs oracle {:.3}x ({:.0}% of oracle headroom)\n",
            self.kernels,
            self.seed,
            t.render(),
            self.overall_pnp_speedup(),
            self.overall_oracle_speedup(),
            100.0 * self.oracle_fraction(),
        )
    }
}

/// Builds the synthetic evaluation dataset for `(machine, seed, count)`:
/// generated kernels swept through the analytic machine models exactly like
/// the paper suite. Served from the store when warm (the dataset key already
/// fingerprints the generated suite content, so each `(seed, count)` corpus
/// gets its own entry).
pub fn build_synthetic_dataset(
    machine: &MachineSpec,
    seed: u64,
    count: usize,
    sweep_threads: pnp_openmp::Threads,
    store: Option<&ArtifactStore>,
) -> Dataset {
    let apps = pnp_benchmarks::synthetic_suite(seed, count);
    let vocab = Vocabulary::standard();
    match store {
        Some(store) => store.load_or_build_dataset(machine, &apps, &vocab, sweep_threads),
        None => Dataset::build_with_threads(machine, &apps, &vocab, sweep_threads),
    }
}

/// Runs the out-of-distribution experiment on pre-built datasets: for every
/// power cap, train one model on *all* of `train` (no folds — the evaluation
/// set is disjoint by construction) and predict each `eval` region's
/// configuration class, scoring predicted vs. default vs. oracle times from
/// `eval`'s exhaustive sweep.
///
/// `seed`/`kernels` are recorded in the results so reports and cache keys
/// stay tied to the generated corpus they describe.
pub fn try_run_on_datasets(
    train: &Dataset,
    eval: &Dataset,
    settings: &TrainSettings,
    seed: u64,
    kernels: usize,
) -> Result<OodResults, ExperimentError> {
    check_dataset(train, 1)?;
    check_dataset(eval, 1)?;
    if train.space != eval.space {
        return Err(ExperimentError::MismatchedSearchSpaces);
    }

    let all_train: Vec<usize> = (0..train.len()).collect();
    let mut rows = Vec::with_capacity(train.space.power_levels.len());
    for (power_idx, &power_watts) in train.space.power_levels.iter().enumerate() {
        let mut model = train_ood_model(train, settings, power_idx);
        let prior = class_prior_scenario1(train, power_idx, &all_train);

        let mut pnp_ratios = Vec::with_capacity(eval.len());
        let mut oracle_ratios = Vec::with_capacity(eval.len());
        let mut oracle_fracs = Vec::with_capacity(eval.len());
        for (r, record) in eval.regions.iter().enumerate() {
            let pred = predict_with_prior(&mut model, &record.graph, None, &prior);
            let sweep = &eval.sweeps[r];
            let t_pred = sweep.samples[power_idx][pred].time_s;
            let t_default = sweep.default_samples[power_idx].time_s;
            let t_best = sweep.best_time(power_idx);
            pnp_ratios.push(t_default / t_pred);
            oracle_ratios.push(t_default / t_best);
            oracle_fracs.push(t_best / t_pred);
        }

        rows.push(OodRow {
            power_watts,
            pnp_geomean_speedup: geomean(&pnp_ratios),
            oracle_geomean_speedup: geomean(&oracle_ratios),
            frac_within_10pct_of_oracle: fraction_within(&oracle_fracs, 0.9),
            frac_no_worse_than_default: fraction_within(&pnp_ratios, 1.0 - 1e-9),
        });
    }

    Ok(OodResults {
        seed,
        kernels,
        regions: eval
            .regions
            .iter()
            .map(|r| format!("{}/{}", r.app, r.region))
            .collect(),
        rows,
    })
}

/// [`try_run_on_datasets`] with result caching: when cache handles (bound to
/// the two datasets' content hashes) are present, the report is served from /
/// stored into the artifact store under a generator-seed-fingerprinted key.
/// The experiment is fully deterministic (DESIGN.md §9/§12), so cached and
/// fresh results are byte-identical.
pub fn try_run_on_datasets_cached(
    train: &Dataset,
    eval: &Dataset,
    settings: &TrainSettings,
    seed: u64,
    kernels: usize,
    caches: Option<(&DatasetCache, &DatasetCache)>,
) -> Result<OodResults, ExperimentError> {
    match caches {
        Some((cache_train, cache_eval)) => {
            // Probe the error paths *before* touching the store: a degenerate
            // input must fail identically with and without a cache.
            check_dataset(train, 1)?;
            check_dataset(eval, 1)?;
            if train.space != eval.space {
                return Err(ExperimentError::MismatchedSearchSpaces);
            }
            let key = artifact::ood_key(
                cache_train.dataset_sha256(),
                cache_eval.dataset_sha256(),
                settings,
                seed,
                kernels,
            );
            Ok(cache_train.store().load_or_build(&key, || {
                try_run_on_datasets(train, eval, settings, seed, kernels)
                    .expect("preconditions checked above")
            }))
        }
        None => try_run_on_datasets(train, eval, settings, seed, kernels),
    }
}

/// End-to-end convenience: build the Haswell paper-suite training dataset
/// and the `(seed, count)` synthetic evaluation dataset (both served from
/// the store when warm), then run the experiment with the report cached.
pub fn run_with_store(
    settings: &TrainSettings,
    sweep_threads: pnp_openmp::Threads,
    store: Option<&ArtifactStore>,
    seed: u64,
    count: usize,
) -> Result<OodResults, ExperimentError> {
    let machine = pnp_machine::haswell();
    let train = super::build_full_dataset_cached(&machine, sweep_threads, store);
    let eval = build_synthetic_dataset(&machine, seed, count, sweep_threads, store);
    let cache_train = store.map(|s| s.for_dataset(&train));
    let cache_eval = store.map(|s| s.for_dataset(&eval));
    try_run_on_datasets_cached(
        &train,
        &eval,
        settings,
        seed,
        count,
        cache_train.as_ref().zip(cache_eval.as_ref()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::TrainSettings;

    fn tiny_settings() -> TrainSettings {
        let mut s = TrainSettings::quick();
        s.epochs = 2;
        s
    }

    fn tiny_datasets() -> (Dataset, Dataset) {
        let machine = pnp_machine::haswell();
        let vocab = Vocabulary::standard();
        let train_apps: Vec<_> = pnp_benchmarks::full_suite().into_iter().take(3).collect();
        let train = Dataset::build_with_threads(
            &machine,
            &train_apps,
            &vocab,
            pnp_openmp::Threads::Fixed(1),
        );
        let eval = build_synthetic_dataset(&machine, 7, 4, pnp_openmp::Threads::Fixed(1), None);
        (train, eval)
    }

    #[test]
    fn ood_runs_end_to_end_and_is_deterministic() {
        let (train, eval) = tiny_datasets();
        let s = tiny_settings();
        let a = try_run_on_datasets(&train, &eval, &s, 7, 4).unwrap();
        let b = try_run_on_datasets(&train, &eval, &s, 7, 4).unwrap();
        assert_eq!(a.kernels, 4);
        assert_eq!(a.regions.len(), 4);
        assert_eq!(a.rows.len(), train.space.power_levels.len());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "OOD experiment must be bit-deterministic"
        );
        for row in &a.rows {
            assert!(row.oracle_geomean_speedup >= 1.0 - 1e-9);
            assert!(row.pnp_geomean_speedup > 0.0);
            assert!(
                row.pnp_geomean_speedup <= row.oracle_geomean_speedup + 1e-9,
                "prediction cannot beat the exhaustive-sweep oracle"
            );
            assert!((0.0..=1.0).contains(&row.frac_within_10pct_of_oracle));
            assert!((0.0..=1.0).contains(&row.frac_no_worse_than_default));
        }
        let text = a.render();
        assert!(text.contains("Out-of-distribution"));
        assert!(text.contains("oracle"));
    }

    #[test]
    fn ood_rejects_degenerate_inputs() {
        let (train, eval) = tiny_datasets();
        let s = tiny_settings();
        let empty = Dataset {
            machine: train.machine.clone(),
            space: train.space.clone(),
            regions: Vec::new(),
            sweeps: Vec::new(),
        };
        assert_eq!(
            try_run_on_datasets(&empty, &eval, &s, 7, 4).unwrap_err(),
            ExperimentError::EmptyDataset
        );
        assert_eq!(
            try_run_on_datasets(&train, &empty, &s, 7, 4).unwrap_err(),
            ExperimentError::EmptyDataset
        );
        let mut skewed = eval.clone();
        skewed.space.power_levels.push(999.0);
        assert_eq!(
            try_run_on_datasets(&train, &skewed, &s, 7, 4).unwrap_err(),
            ExperimentError::MismatchedSearchSpaces
        );
    }
}
