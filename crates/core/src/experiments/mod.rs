//! Experiment drivers — one per table/figure of the paper.
//!
//! Each driver returns a serializable result structure and knows how to
//! render itself as the rows/series the corresponding figure plots. The
//! `pnp-bench` binaries are thin wrappers that call these and print.
//!
//! | Paper artefact | Driver |
//! |---|---|
//! | §I motivating example | [`motivating`] |
//! | Table I (search space) | `pnp-tuners::SearchSpace` (printed by the `table1_search_space` binary) |
//! | Table II (hyperparameters) | printed by the `table2_hyperparameters` binary |
//! | Fig. 2 / Fig. 3 (+ §IV-B numbers) | [`power_constrained`] |
//! | Fig. 4 / Fig. 5 | [`unseen_power`] |
//! | Fig. 6 / Fig. 7 (+ §IV-C numbers) | [`edp`] |
//! | §IV-B transfer learning | [`transfer`] |
//! | Design-choice ablations (DESIGN.md §6) | [`ablations`] |

pub mod ablations;
pub mod edp;
pub mod motivating;
pub mod ood;
pub mod power_constrained;
pub mod transfer;
pub mod unseen_power;

use pnp_benchmarks::full_suite;
use pnp_graph::Vocabulary;
use pnp_machine::MachineSpec;
use pnp_openmp::Threads;

use crate::artifact::ArtifactStore;
use crate::dataset::Dataset;

/// Why an experiment driver cannot run on a dataset.
///
/// The `try_run_on_dataset` entry points return these instead of panicking
/// deep inside a pipeline (empty prediction sets, `len - 1` underflow on an
/// empty power-level list, training on zero samples) — the degenerate inputs
/// the paper-fidelity validator's edge sweeps probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExperimentError {
    /// The dataset holds no regions: nothing to sweep, train on, or tune.
    EmptyDataset,
    /// The search space has fewer power levels than the experiment needs
    /// (`needed`): 1 for the cap-indexed pipelines, 2 for the unseen-power
    /// hold-out.
    NotEnoughPowerLevels {
        /// Minimum number of power levels the driver requires.
        needed: usize,
        /// Number of power levels the dataset's search space actually has.
        have: usize,
    },
    /// Two datasets that must share a Table I search space (train vs.
    /// evaluate in the out-of-distribution experiment) do not: a class
    /// predicted on one would name a different configuration on the other.
    MismatchedSearchSpaces,
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::EmptyDataset => {
                write!(f, "dataset holds no regions — nothing to train or tune")
            }
            ExperimentError::NotEnoughPowerLevels { needed, have } => write!(
                f,
                "search space has {have} power level(s), the experiment needs at least {needed}"
            ),
            ExperimentError::MismatchedSearchSpaces => write!(
                f,
                "train and evaluation datasets have different search spaces"
            ),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Shared guard for the `try_run_on_dataset` entry points.
pub(crate) fn check_dataset(ds: &Dataset, min_power_levels: usize) -> Result<(), ExperimentError> {
    if ds.is_empty() {
        return Err(ExperimentError::EmptyDataset);
    }
    let have = ds.space.power_levels.len();
    if have < min_power_levels {
        return Err(ExperimentError::NotEnoughPowerLevels {
            needed: min_power_levels,
            have,
        });
    }
    Ok(())
}

/// Builds the full-suite dataset for a machine (the expensive exhaustive
/// sweep shared by several experiments), with the worker count resolved from
/// the `PNP_SWEEP_THREADS` environment variable.
pub fn build_full_dataset(machine: &MachineSpec) -> Dataset {
    build_full_dataset_with(machine, Threads::from_env())
}

/// Builds the full-suite dataset with an explicit sweep worker count (the
/// knob every `pnp-bench` binary threads through from its CLI/environment).
pub fn build_full_dataset_with(machine: &MachineSpec, sweep_threads: Threads) -> Dataset {
    build_full_dataset_cached(machine, sweep_threads, None)
}

/// [`build_full_dataset_with`] with an optional artifact store: a warm store
/// serves the dataset instead of re-running the exhaustive sweep; a cold one
/// builds and caches it. Cached and fresh datasets are byte-identical
/// (DESIGN.md §12), so callers cannot observe which path ran.
pub fn build_full_dataset_cached(
    machine: &MachineSpec,
    sweep_threads: Threads,
    store: Option<&ArtifactStore>,
) -> Dataset {
    let apps = full_suite();
    let vocab = Vocabulary::standard();
    match store {
        Some(store) => store.load_or_build_dataset(machine, &apps, &vocab, sweep_threads),
        None => Dataset::build_with_threads(machine, &apps, &vocab, sweep_threads),
    }
}
