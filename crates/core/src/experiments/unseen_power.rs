//! Generalization to unseen power constraints (Figures 4 and 5): the model is
//! trained with all measurements at the target cap removed, using hardware
//! counters plus the normalized power cap as dynamic features, and evaluated
//! on the held-out cap (lowest and highest per machine).

use crate::artifact::{ArtifactStore, DatasetCache};
use crate::dataset::Dataset;
use crate::eval::{fraction_within, geomean};
use crate::report::TextTable;
use crate::training::{train_unseen_power_cached, TrainSettings};
use pnp_machine::MachineSpec;
use serde::Serialize;

/// One application bar of Figure 4/5 at one held-out power cap.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct UnseenPowerRow {
    /// Application name.
    pub app: String,
    /// Held-out power cap in watts.
    pub power_watts: f64,
    /// Oracle-normalized speedup of the default configuration.
    pub default_norm: f64,
    /// Oracle-normalized speedup of the PnP prediction.
    pub pnp_norm: f64,
}

/// Results for one machine (two held-out caps).
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct UnseenPowerResults {
    /// Machine name ("skylake" → Figure 4, "haswell" → Figure 5).
    pub machine: String,
    /// Per-application, per-held-out-cap rows.
    pub rows: Vec<UnseenPowerRow>,
    /// Geometric-mean PnP speedup over default at each held-out cap,
    /// `(cap, pnp, oracle)`.
    pub geomean_speedups: Vec<(f64, f64, f64)>,
    /// Fraction of regions within 5 % of the oracle (both caps pooled).
    pub within_95: f64,
    /// Fraction of regions within 20 % of the oracle.
    pub within_80: f64,
}

impl UnseenPowerResults {
    /// The held-out power caps, in evaluation order.
    pub fn held_out_caps(&self) -> Vec<f64> {
        self.geomean_speedups.iter().map(|(c, _, _)| *c).collect()
    }

    /// `(pnp, oracle)` geometric-mean speedups at one held-out cap — the
    /// structured accessor the paper-fidelity validator consumes.
    pub fn geomean_at(&self, cap: f64) -> Option<(f64, f64)> {
        self.geomean_speedups
            .iter()
            .find(|(c, _, _)| *c == cap)
            .map(|(_, p, o)| (*p, *o))
    }

    /// Renders the figure's series as a table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "\nUnseen power constraints ({}) — normalized speedups, oracle = 1.0\n",
            self.machine
        ));
        let mut t = TextTable::new(&["app", "power W", "default", "pnp"]);
        for row in &self.rows {
            t.row(&[
                row.app.clone(),
                format!("{:.0}", row.power_watts),
                format!("{:.3}", row.default_norm),
                format!("{:.3}", row.pnp_norm),
            ]);
        }
        out.push_str(&t.render());
        for (cap, pnp, oracle) in &self.geomean_speedups {
            out.push_str(&format!(
                "geomean speedup at {cap:.0} W: PnP {pnp:.2}x vs oracle {oracle:.2}x\n"
            ));
        }
        out.push_str(&format!(
            "within 5% of oracle: {:.1}% | within 20%: {:.1}%\n",
            100.0 * self.within_95,
            100.0 * self.within_80
        ));
        out
    }
}

/// Runs the unseen-power experiment for a machine (holds out the lowest and
/// the highest cap, as in the paper). Sweep worker count comes from the
/// environment; see [`run_with`].
pub fn run(machine: &MachineSpec, settings: &TrainSettings) -> UnseenPowerResults {
    run_with(machine, settings, pnp_openmp::Threads::from_env())
}

/// Runs the unseen-power experiment, building the dataset with an explicit
/// sweep worker count. The per-fold training fan-out is governed separately
/// by `settings.train_threads` (`PNP_TRAIN_THREADS` / `--train-threads`);
/// results are bit-identical for every value of either knob.
pub fn run_with(
    machine: &MachineSpec,
    settings: &TrainSettings,
    sweep_threads: pnp_openmp::Threads,
) -> UnseenPowerResults {
    run_with_store(machine, settings, sweep_threads, None)
}

/// [`run_with`] with an optional artifact store: the dataset and the
/// per-held-out-cap model grids are served from the store when warm
/// (DESIGN.md §12).
pub fn run_with_store(
    machine: &MachineSpec,
    settings: &TrainSettings,
    sweep_threads: pnp_openmp::Threads,
    store: Option<&ArtifactStore>,
) -> UnseenPowerResults {
    let ds = super::build_full_dataset_cached(machine, sweep_threads, store);
    let cache = store.map(|s| s.for_dataset(&ds));
    try_run_on_dataset_cached(&ds, settings, cache.as_ref())
        .expect("unseen-power experiment on degenerate dataset")
}

/// Runs the experiment on a pre-built dataset.
///
/// Panics on degenerate datasets; use [`try_run_on_dataset`] when the input
/// is not known to be well-formed.
pub fn run_on_dataset(ds: &Dataset, settings: &TrainSettings) -> UnseenPowerResults {
    try_run_on_dataset(ds, settings).expect("unseen-power experiment on degenerate dataset")
}

/// Fallible twin of [`run_on_dataset`]: holding a cap out requires at least
/// two power levels and a non-empty region list — degenerate datasets yield
/// a typed error instead of an underflow or an empty-training-set panic.
pub fn try_run_on_dataset(
    ds: &Dataset,
    settings: &TrainSettings,
) -> Result<UnseenPowerResults, super::ExperimentError> {
    try_run_on_dataset_cached(ds, settings, None)
}

/// [`try_run_on_dataset`] with an optional artifact cache bound to `ds`:
/// one trained-model grid per held-out cap is loaded and replayed when
/// warm, trained and saved when cold — bit-identical either way.
pub fn try_run_on_dataset_cached(
    ds: &Dataset,
    settings: &TrainSettings,
    cache: Option<&DatasetCache>,
) -> Result<UnseenPowerResults, super::ExperimentError> {
    super::check_dataset(ds, 2)?;
    let held_out = [ds.space.power_levels.len() - 1, 0];
    let mut rows = Vec::new();
    let mut geomean_speedups = Vec::new();
    let mut all_norm = Vec::new();

    for &p in &held_out {
        let preds = train_unseen_power_cached(ds, settings, p, cache);
        let mut pnp_speedups = Vec::new();
        let mut oracle_speedups = Vec::new();
        let mut norm_per_region = Vec::new();
        for (i, sweep) in ds.sweeps.iter().enumerate() {
            let default_t = sweep.default_samples[p].time_s;
            let best_t = sweep.best_time(p);
            let pnp_t = sweep.samples[p][preds[i]].time_s;
            let oracle_speedup = default_t / best_t;
            let pnp_speedup = default_t / pnp_t;
            pnp_speedups.push(pnp_speedup);
            oracle_speedups.push(oracle_speedup);
            norm_per_region.push((pnp_speedup / oracle_speedup).min(1.0));
        }
        all_norm.extend(norm_per_region.iter().copied());
        geomean_speedups.push((
            ds.space.power_levels[p],
            geomean(&pnp_speedups),
            geomean(&oracle_speedups),
        ));

        for app in ds.applications() {
            let idx: Vec<usize> = (0..ds.len())
                .filter(|&i| ds.regions[i].app == app)
                .collect();
            let default_norm = geomean(
                &idx.iter()
                    .map(|&i| {
                        let sweep = &ds.sweeps[i];
                        (sweep.best_time(p) / sweep.default_samples[p].time_s).min(1.0)
                    })
                    .collect::<Vec<_>>(),
            );
            let pnp_norm = geomean(&idx.iter().map(|&i| norm_per_region[i]).collect::<Vec<_>>());
            rows.push(UnseenPowerRow {
                app,
                power_watts: ds.space.power_levels[p],
                default_norm,
                pnp_norm,
            });
        }
    }

    Ok(UnseenPowerResults {
        machine: ds.machine.name.clone(),
        rows,
        geomean_speedups,
        within_95: fraction_within(&all_norm, 0.95),
        within_80: fraction_within(&all_norm, 0.80),
    })
}
