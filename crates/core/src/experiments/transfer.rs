//! Transfer learning (Section IV-B): the code graphs are identical on both
//! machines (they are produced statically by the same compiler), so the GNN
//! layers trained on the Haswell dataset can be reused on Skylake, retraining
//! only the dense classifier — the paper reports ≈ 4.18× faster training
//! (76 % less training time).

use crate::artifact::{self, ArtifactStore, DatasetCache};
use crate::dataset::Dataset;
use crate::report::TextTable;
use crate::training::{transfer_experiment, TrainSettings, TransferReport};
use pnp_machine::{haswell, skylake};
use serde::Serialize;

/// Serializable wrapper of the transfer-learning outcome.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct TransferResults {
    /// Seconds to train the Skylake model from scratch.
    pub scratch_seconds: f64,
    /// Seconds to train with the transferred (frozen) Haswell GNN.
    pub transfer_seconds: f64,
    /// Training speed-up factor.
    pub speedup: f64,
    /// Training-set accuracy from scratch.
    pub scratch_accuracy: f32,
    /// Training-set accuracy with transfer.
    pub transfer_accuracy: f32,
}

impl From<TransferReport> for TransferResults {
    fn from(r: TransferReport) -> Self {
        TransferResults {
            speedup: r.training_speedup(),
            scratch_seconds: r.scratch_seconds,
            transfer_seconds: r.transfer_seconds,
            scratch_accuracy: r.scratch_accuracy,
            transfer_accuracy: r.transfer_accuracy,
        }
    }
}

impl TransferResults {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["training path", "wall time (s)", "train accuracy"]);
        t.row(&[
            "from scratch (Skylake)".into(),
            format!("{:.2}", self.scratch_seconds),
            format!("{:.2}", self.scratch_accuracy),
        ]);
        t.row(&[
            "transfer (Haswell GNN frozen)".into(),
            format!("{:.2}", self.transfer_seconds),
            format!("{:.2}", self.transfer_accuracy),
        ]);
        format!(
            "\nTransfer learning (paper: ~4.18x faster / 76% less training time)\n{}\ntraining speed-up: {:.2}x ({:.0}% less training time)\n",
            t.render(),
            self.speedup,
            100.0 * (1.0 - 1.0 / self.speedup.max(1e-9))
        )
    }
}

/// Runs the transfer-learning experiment (Haswell → Skylake) at the highest
/// power level. Sweep worker count comes from the environment; see
/// [`run_with`].
pub fn run(settings: &TrainSettings) -> TransferResults {
    run_with(settings, pnp_openmp::Threads::from_env())
}

/// Runs the transfer-learning experiment, building both datasets with an
/// explicit sweep worker count. (Unlike the cross-validated pipelines this
/// experiment trains single models and *measures their wall time*, so it
/// does not consult `settings.train_threads` — the scratch/transfer timing
/// comparison must not depend on an unrelated fan-out knob.)
pub fn run_with(settings: &TrainSettings, sweep_threads: pnp_openmp::Threads) -> TransferResults {
    run_with_store(settings, sweep_threads, None)
}

/// [`run_with`] with an optional artifact store: both datasets come from the
/// store when warm, and the report itself is cached via
/// [`run_on_datasets_cached`].
pub fn run_with_store(
    settings: &TrainSettings,
    sweep_threads: pnp_openmp::Threads,
    store: Option<&ArtifactStore>,
) -> TransferResults {
    let ds_haswell = super::build_full_dataset_cached(&haswell(), sweep_threads, store);
    let ds_skylake = super::build_full_dataset_cached(&skylake(), sweep_threads, store);
    let power_idx = ds_haswell.space.power_levels.len() - 1;
    let cache_source = store.map(|s| s.for_dataset(&ds_haswell));
    let cache_target = store.map(|s| s.for_dataset(&ds_skylake));
    run_on_datasets_cached(
        &ds_haswell,
        &ds_skylake,
        settings,
        power_idx,
        cache_source.as_ref().zip(cache_target.as_ref()),
    )
}

/// Runs the transfer experiment on pre-built datasets, caching the *report*
/// when cache handles (bound to the two datasets' content hashes, which
/// callers have already computed) are present.
///
/// Unlike the model grids, this artifact carries wall-clock measurements
/// (the experiment's very point is the scratch-vs-transfer training-time
/// ratio), so it is cached with the non-deterministic variant: a warm store
/// returns the first run's measured report verbatim; re-measuring is what
/// `--force-rebuild` is for. The bit-identity contract (DESIGN.md §12)
/// explicitly exempts it.
pub fn run_on_datasets_cached(
    source: &Dataset,
    target: &Dataset,
    settings: &TrainSettings,
    power_idx: usize,
    caches: Option<(&DatasetCache, &DatasetCache)>,
) -> TransferResults {
    match caches {
        Some((cache_source, cache_target)) => {
            let key = artifact::transfer_key(
                cache_source.dataset_sha256(),
                cache_target.dataset_sha256(),
                settings,
                power_idx,
            );
            cache_source
                .store()
                .load_or_build_nondeterministic(&key, || {
                    transfer_experiment(source, target, settings, power_idx).into()
                })
        }
        None => transfer_experiment(source, target, settings, power_idx).into(),
    }
}
