//! Design-choice ablations called out in DESIGN.md §6:
//!
//! * relation-typed RGCN vs. plain GCN (tied relation weights),
//! * mean vs. sum readout pooling,
//! * BLISS sampling-budget sensitivity (5 / 10 / 20 samples).
//!
//! Each ablation reports training-set top-1 accuracy of the classifier on the
//! scenario-1 task at TDP (model variants), or the oracle-normalized speedup
//! (tuner budgets). These are intentionally lightweight — they answer "does
//! the design choice matter", not "what is the final benchmark number".

use crate::artifact::{ArtifactStore, DatasetCache};
use crate::dataset::Dataset;
use crate::eval::geomean;
use crate::report::TextTable;
use crate::training::TrainSettings;
use pnp_gnn::train::OptimizerKind;
use pnp_gnn::{ModelConfig, PnPModel, TrainConfig, Trainer, TrainingSample};
use pnp_graph::Vocabulary;
use pnp_machine::MachineSpec;
use pnp_tuners::{BlissTuner, Objective, SimEvaluator};
use serde::Serialize;

/// Result of one ablation row.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct AblationRow {
    /// Name of the variant.
    pub variant: String,
    /// The scalar outcome (accuracy or normalized speedup).
    pub value: f64,
}

/// All ablation results.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct AblationResults {
    /// Model-variant rows (training accuracy).
    pub model_variants: Vec<AblationRow>,
    /// BLISS budget rows (oracle-normalized speedup).
    pub bliss_budgets: Vec<AblationRow>,
}

impl AblationResults {
    /// Training accuracy of the model variant whose name contains `needle`
    /// (structured accessor for the paper-fidelity validator).
    pub fn model_accuracy(&self, needle: &str) -> Option<f64> {
        self.model_variants
            .iter()
            .find(|r| r.variant.contains(needle))
            .map(|r| r.value)
    }

    /// Oracle-normalized speedup of the BLISS run with `budget` samples.
    pub fn bliss_at_budget(&self, budget: usize) -> Option<f64> {
        let label = format!("{budget} samples");
        self.bliss_budgets
            .iter()
            .find(|r| r.variant == label)
            .map(|r| r.value)
    }

    /// Renders both ablation tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("\nModel ablations (training-set accuracy, scenario 1 @ TDP)\n");
        let mut t = TextTable::new(&["variant", "train accuracy"]);
        for r in &self.model_variants {
            t.row_numeric(&r.variant, &[r.value]);
        }
        out.push_str(&t.render());
        out.push_str("\nBLISS sampling-budget sensitivity (oracle-normalized speedup)\n");
        let mut t = TextTable::new(&["budget", "normalized speedup"]);
        for r in &self.bliss_budgets {
            t.row_numeric(&r.variant, &[r.value]);
        }
        out.push_str(&t.render());
        out
    }
}

fn samples_at_power(ds: &Dataset, power_idx: usize) -> Vec<TrainingSample> {
    (0..ds.len())
        .map(|i| TrainingSample {
            graph: ds.regions[i].graph.clone(),
            dynamic: None,
            label: ds.sweeps[i].best_time_config(power_idx),
            group: ds.regions[i].app.clone(),
        })
        .collect()
}

fn train_variant(ds: &Dataset, settings: &TrainSettings, relational: bool, sum_pool: bool) -> f64 {
    let tdp_idx = ds.space.power_levels.len() - 1;
    let samples = samples_at_power(ds, tdp_idx);
    let mut model = PnPModel::new(ModelConfig {
        vocab_size: Vocabulary::standard().len(),
        hidden_dim: settings.hidden_dim,
        num_rgcn_layers: settings.rgcn_layers,
        fc_hidden: settings.fc_hidden,
        num_classes: ds.space.configs_per_power(),
        num_relations: 3,
        num_dynamic_features: 0,
        dropout: 0.0,
        seed: 0xAB1A,
    });
    model.set_relational(relational);
    model.set_sum_pooling(sum_pool);
    let trainer = Trainer::new(TrainConfig {
        epochs: settings.epochs,
        learning_rate: 1e-3,
        batch_size: settings.batch_size,
        optimizer: OptimizerKind::AdamWAmsgrad,
        grad_clip: 5.0,
        freeze_gnn: false,
        seed: 0xAB1A,
    });
    let report = trainer.train(&mut model, &samples);
    report.final_train_accuracy as f64
}

/// Runs all ablations on one machine's dataset (sweep worker count from the
/// environment; see [`run_with`]).
pub fn run(machine: &MachineSpec, settings: &TrainSettings) -> AblationResults {
    run_with(machine, settings, pnp_openmp::Threads::from_env())
}

/// Runs all ablations, building the dataset with an explicit sweep worker
/// count. (The model-variant ablations train one model each on the full
/// training set — there is no fold grid to fan out, so
/// `settings.train_threads` is not consulted here.)
pub fn run_with(
    machine: &MachineSpec,
    settings: &TrainSettings,
    sweep_threads: pnp_openmp::Threads,
) -> AblationResults {
    run_with_store(machine, settings, sweep_threads, None)
}

/// [`run_with`] with an optional artifact store (DESIGN.md §12).
pub fn run_with_store(
    machine: &MachineSpec,
    settings: &TrainSettings,
    sweep_threads: pnp_openmp::Threads,
    store: Option<&ArtifactStore>,
) -> AblationResults {
    let ds = super::build_full_dataset_cached(machine, sweep_threads, store);
    let cache = store.map(|s| s.for_dataset(&ds));
    try_run_on_dataset_cached(&ds, settings, cache.as_ref())
        .expect("ablations on degenerate dataset")
}

/// Runs all ablations on a pre-built dataset.
///
/// Panics on degenerate datasets; use [`try_run_on_dataset`] when the input
/// is not known to be well-formed.
pub fn run_on_dataset(ds: &Dataset, settings: &TrainSettings) -> AblationResults {
    try_run_on_dataset(ds, settings).expect("ablations on degenerate dataset")
}

/// Fallible twin of [`run_on_dataset`]: training a variant on zero regions
/// (or indexing a TDP that does not exist) yields a typed error instead of
/// a panic.
pub fn try_run_on_dataset(
    ds: &Dataset,
    settings: &TrainSettings,
) -> Result<AblationResults, super::ExperimentError> {
    try_run_on_dataset_cached(ds, settings, None)
}

/// [`try_run_on_dataset`] with an optional artifact cache bound to `ds`.
///
/// Ablations train one model per variant on the full training set (no fold
/// grid), so the cached artifact is the whole [`AblationResults`] — every
/// number in it is deterministic (fixed seeds for both the model variants
/// and the BLISS budget sweeps), which keeps it inside the bit-identity
/// contract.
pub fn try_run_on_dataset_cached(
    ds: &Dataset,
    settings: &TrainSettings,
    cache: Option<&DatasetCache>,
) -> Result<AblationResults, super::ExperimentError> {
    super::check_dataset(ds, 1)?;
    if let Some(cache) = cache {
        let key = cache.ablations_key(settings);
        return Ok(cache
            .store()
            .load_or_build(&key, || compute_ablations(ds, settings)));
    }
    Ok(compute_ablations(ds, settings))
}

/// The uncached ablation computation shared by both paths.
fn compute_ablations(ds: &Dataset, settings: &TrainSettings) -> AblationResults {
    let model_variants = vec![
        AblationRow {
            variant: "RGCN + mean pooling (paper)".into(),
            value: train_variant(ds, settings, true, false),
        },
        AblationRow {
            variant: "plain GCN (tied relation weights)".into(),
            value: train_variant(ds, settings, false, false),
        },
        AblationRow {
            variant: "RGCN + sum pooling".into(),
            value: train_variant(ds, settings, true, true),
        },
    ];

    // BLISS budget sensitivity at the lowest power cap, over a subset of
    // regions (every fourth region keeps this cheap).
    let power = ds.space.power_levels[0];
    let objective = Objective::TimeAtPower { power_watts: power };
    let mut bliss_budgets = Vec::new();
    for &budget in &[5usize, 10, 20] {
        let mut normalized = Vec::new();
        for i in (0..ds.len()).step_by(4) {
            let evaluator = SimEvaluator::new(ds.machine.clone(), ds.regions[i].profile.clone());
            let result = BlissTuner::new(&ds.space, 7000 + i as u64)
                .with_budget(budget)
                .tune(&evaluator, &objective);
            let default_t = ds.sweeps[i].default_samples[0].time_s;
            let best_t = ds.sweeps[i].best_time(0);
            let speedup = default_t / result.best_sample.time_s;
            let oracle = default_t / best_t;
            normalized.push((speedup / oracle).min(1.0));
        }
        bliss_budgets.push(AblationRow {
            variant: format!("{budget} samples"),
            value: geomean(&normalized),
        });
    }

    AblationResults {
        model_variants,
        bliss_budgets,
    }
}
