//! The Section I motivating example: exhaustive exploration of the
//! `ApplyAccelerationBoundaryConditionsForNodes` region of LULESH on the
//! Haswell machine.
//!
//! The paper reports that the best OpenMP configuration beats the default by
//! 7.54× / 2.11× / 1.80× / 1.67× at 40/60/70/85 W, that the most
//! energy-efficient point is *not* the fastest one (contradicting
//! race-to-halt), and that the best-EDP point gives a 1.64× speedup and a
//! 2.7× greenup over the default configuration at TDP.

use crate::artifact::{self, ArtifactStore};
use crate::eval::geomean;
use crate::report::TextTable;
use pnp_benchmarks::proxy::lulesh;
use pnp_benchmarks::Application;
use pnp_graph::Vocabulary;
use pnp_machine::haswell;
use pnp_tuners::ConfigPoint;
use serde::Serialize;

use crate::dataset::Dataset;

/// Results of the motivating-example sweep.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct MotivatingResults {
    /// `(power cap, best speedup over the default config at that cap)`.
    pub best_speedup_per_cap: Vec<(f64, f64)>,
    /// The `(power, config)` point with the lowest energy, and its speedup /
    /// greenup over default-at-TDP.
    pub most_energy_efficient: (ConfigPoint, f64, f64),
    /// The `(power, config)` point with the lowest EDP, and its speedup /
    /// greenup over default-at-TDP.
    pub best_edp: (ConfigPoint, f64, f64),
    /// Whether the fastest point differs from the most energy-efficient point
    /// (the paper's "race-to-halt does not hold" observation).
    pub race_to_halt_violated: bool,
}

impl MotivatingResults {
    /// Best-over-default speedup at one power cap (structured accessor for
    /// the paper-fidelity validator).
    pub fn speedup_at(&self, cap: f64) -> Option<f64> {
        self.best_speedup_per_cap
            .iter()
            .find(|(c, _)| *c == cap)
            .map(|(_, s)| *s)
    }

    /// Renders the example as a small table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("\nMotivating example: LULESH boundary-condition region on Haswell\n");
        let mut t = TextTable::new(&["power cap (W)", "best speedup over default"]);
        for (cap, speedup) in &self.best_speedup_per_cap {
            t.row_numeric(&format!("{cap:.0}"), &[*speedup]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "most energy-efficient point: {} @ {:.0} W -> speedup {:.2}x, greenup {:.2}x over default @ TDP\n",
            self.most_energy_efficient.0.omp,
            self.most_energy_efficient.0.power_watts,
            self.most_energy_efficient.1,
            self.most_energy_efficient.2
        ));
        out.push_str(&format!(
            "best-EDP point:              {} @ {:.0} W -> speedup {:.2}x, greenup {:.2}x over default @ TDP\n",
            self.best_edp.0.omp,
            self.best_edp.0.power_watts,
            self.best_edp.1,
            self.best_edp.2
        ));
        out.push_str(&format!(
            "race-to-halt violated (fastest != greenest): {}\n",
            self.race_to_halt_violated
        ));
        out
    }
}

/// Runs the motivating-example sweep (sweep worker count from the
/// environment; see [`run_with`]).
pub fn run() -> MotivatingResults {
    run_with(pnp_openmp::Threads::from_env())
}

/// Runs the motivating-example sweep with an explicit worker count. The
/// dataset is a single region, so the fan-out is a formality — the knob is
/// threaded through for uniformity with the other drivers.
pub fn run_with(sweep_threads: pnp_openmp::Threads) -> MotivatingResults {
    run_with_store(sweep_threads, None)
}

/// [`run_with`] with an optional artifact store: the whole result (a
/// single-region sweep plus deterministic argmin scans) is cached under the
/// machine and suite fingerprints (DESIGN.md §12).
pub fn run_with_store(
    sweep_threads: pnp_openmp::Threads,
    store: Option<&ArtifactStore>,
) -> MotivatingResults {
    let machine = haswell();
    let lulesh_app = lulesh::app();
    let region_idx = lulesh_app
        .regions
        .iter()
        .position(|r| r.name() == lulesh::MOTIVATING_REGION)
        .expect("motivating region exists");
    let single = Application::new("LULESH", vec![lulesh_app.regions[region_idx].clone()]);
    match store {
        Some(store) => {
            let key = artifact::motivating_key(&machine, std::slice::from_ref(&single));
            store.store().load_or_build(&key, || {
                compute_motivating(&machine, single.clone(), sweep_threads)
            })
        }
        None => compute_motivating(&machine, single, sweep_threads),
    }
}

/// The uncached motivating-example computation shared by both paths.
fn compute_motivating(
    machine: &pnp_machine::MachineSpec,
    single: Application,
    sweep_threads: pnp_openmp::Threads,
) -> MotivatingResults {
    let ds =
        Dataset::build_with_threads(machine, &[single], &Vocabulary::standard(), sweep_threads);
    let sweep = &ds.sweeps[0];
    let tdp_idx = ds.space.power_levels.len() - 1;
    let baseline_tdp = sweep.default_samples[tdp_idx];

    let best_speedup_per_cap: Vec<(f64, f64)> = (0..ds.space.power_levels.len())
        .map(|p| {
            (
                ds.space.power_levels[p],
                sweep.default_samples[p].time_s / sweep.best_time(p),
            )
        })
        .collect();

    // Most energy-efficient point over the joint space.
    let mut best_energy = (0usize, 0usize);
    let mut best_energy_val = f64::INFINITY;
    let mut fastest = (0usize, 0usize);
    let mut fastest_val = f64::INFINITY;
    for p in 0..ds.space.power_levels.len() {
        for c in 0..ds.space.configs_per_power() {
            let s = sweep.samples[p][c];
            if s.energy_j < best_energy_val {
                best_energy_val = s.energy_j;
                best_energy = (p, c);
            }
            if s.time_s < fastest_val {
                fastest_val = s.time_s;
                fastest = (p, c);
            }
        }
    }
    let (ep, ec) = best_energy;
    let energy_sample = sweep.samples[ep][ec];
    let most_energy_efficient = (
        ds.point(ep, ec),
        baseline_tdp.time_s / energy_sample.time_s,
        baseline_tdp.energy_j / energy_sample.energy_j,
    );

    let (bp, bc) = sweep.best_edp_point();
    let edp_sample = sweep.samples[bp][bc];
    let best_edp = (
        ds.point(bp, bc),
        baseline_tdp.time_s / edp_sample.time_s,
        baseline_tdp.energy_j / edp_sample.energy_j,
    );

    // Use the geometric mean of the per-cap speedups as a stable scalar for
    // reports (not part of the paper's numbers, but handy in EXPERIMENTS.md).
    let _overall = geomean(
        &best_speedup_per_cap
            .iter()
            .map(|(_, s)| *s)
            .collect::<Vec<_>>(),
    );

    MotivatingResults {
        best_speedup_per_cap,
        most_energy_efficient,
        best_edp,
        race_to_halt_violated: fastest != best_energy,
    }
}
