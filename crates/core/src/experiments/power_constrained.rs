//! Power-constrained tuning (Figures 2 and 3, plus the §IV-B headline
//! numbers): at each of the four power caps, every tuner picks an OpenMP
//! configuration for every region; results are reported as per-application
//! geometric-mean speedups over the default configuration, normalized by the
//! oracle's speedup.

use crate::artifact::{ArtifactStore, DatasetCache};
use crate::dataset::Dataset;
use crate::eval::{fraction_no_worse, fraction_within, geomean};
use crate::report::TextTable;
use crate::training::{train_scenario1_models_cached, TrainSettings};
use pnp_machine::MachineSpec;
use pnp_tuners::{BlissTuner, Objective, OpenTunerLike, RegionEvaluator, SimEvaluator};
use serde::Serialize;

/// The tuners compared in Figures 2/3, in plotting order.
pub const TUNERS: [&str; 5] = ["default", "pnp_static", "pnp_dynamic", "bliss", "opentuner"];

/// One bar group of Figure 2/3: one application at one power cap.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct FigureRow {
    /// Application name.
    pub app: String,
    /// Power cap in watts.
    pub power_watts: f64,
    /// Oracle-normalized geometric-mean speedup per tuner, ordered as
    /// [`TUNERS`].
    pub normalized: Vec<f64>,
}

/// Headline numbers of §IV-B for one machine.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct Summary {
    /// Geometric-mean raw speedup over the default configuration per power
    /// cap, for each tuner (ordered as [`TUNERS`], excluding "default").
    pub geomean_speedup_per_power: Vec<(f64, Vec<f64>)>,
    /// Oracle geometric-mean speedup per power cap.
    pub oracle_geomean_per_power: Vec<(f64, f64)>,
    /// Fraction of (region, power) cases where the static PnP tuner is within
    /// 5 % of the oracle.
    pub pnp_static_within_95: f64,
    /// Same for the dynamic variant.
    pub pnp_dynamic_within_95: f64,
    /// Same for BLISS and OpenTuner.
    pub bliss_within_95: f64,
    /// Fraction of cases OpenTuner is within 5 % of the oracle.
    pub opentuner_within_95: f64,
    /// Fraction of cases the PnP tuner (static) matches or beats BLISS.
    pub pnp_beats_bliss: f64,
    /// Fraction of cases the PnP tuner (static) matches or beats OpenTuner.
    pub pnp_beats_opentuner: f64,
    /// Average number of region executions each tuner needed per case.
    pub executions_per_case: Vec<(String, f64)>,
}

/// Full results of the power-constrained experiment on one machine.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct PowerConstrainedResults {
    /// Machine name ("haswell" → Figure 2, "skylake" → Figure 3).
    pub machine: String,
    /// Per-application, per-power rows.
    pub rows: Vec<FigureRow>,
    /// Headline summary.
    pub summary: Summary,
}

impl PowerConstrainedResults {
    /// Index of a tuner name within [`TUNERS`] (the order of every
    /// per-tuner vector in the rows).
    pub fn tuner_index(name: &str) -> Option<usize> {
        TUNERS.iter().position(|t| *t == name)
    }

    /// The distinct power caps, in row (ascending) order.
    pub fn power_caps(&self) -> Vec<f64> {
        let mut caps: Vec<f64> = self.rows.iter().map(|r| r.power_watts).collect();
        caps.sort_by(f64::total_cmp);
        caps.dedup();
        caps
    }

    /// Geometric-mean *raw* speedup over the default configuration for a
    /// tuner at a power cap (`None` for unknown tuners/caps; "default" is
    /// 1.0 by construction). This is the structured accessor the
    /// paper-fidelity validator consumes — no stdout scraping.
    pub fn geomean_speedup(&self, tuner: &str, power_watts: f64) -> Option<f64> {
        if tuner == "default" {
            return self.cap_entry(power_watts).map(|_| 1.0);
        }
        let t = Self::tuner_index(tuner)?.checked_sub(1)?;
        self.cap_entry(power_watts)?.1.get(t).copied()
    }

    /// Oracle geometric-mean speedup at a power cap.
    pub fn oracle_geomean(&self, power_watts: f64) -> Option<f64> {
        self.summary
            .oracle_geomean_per_power
            .iter()
            .find(|(p, _)| *p == power_watts)
            .map(|(_, g)| *g)
    }

    /// The per-application figure rows at one power cap.
    pub fn rows_at(&self, power_watts: f64) -> Vec<&FigureRow> {
        self.rows
            .iter()
            .filter(|r| r.power_watts == power_watts)
            .collect()
    }

    fn cap_entry(&self, power_watts: f64) -> Option<&(f64, Vec<f64>)> {
        self.summary
            .geomean_speedup_per_power
            .iter()
            .find(|(p, _)| *p == power_watts)
    }

    /// Renders the figure as one table per power cap (the paper's four
    /// stacked charts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let powers: Vec<f64> = {
            let mut p: Vec<f64> = self.rows.iter().map(|r| r.power_watts).collect();
            p.dedup();
            p
        };
        for power in powers {
            out.push_str(&format!(
                "\nNormalized speedups at {power:.0} W ({}) — oracle = 1.0\n",
                self.machine
            ));
            let mut table =
                TextTable::new(&["app", TUNERS[0], TUNERS[1], TUNERS[2], TUNERS[3], TUNERS[4]]);
            for row in self.rows.iter().filter(|r| r.power_watts == power) {
                table.row_numeric(&row.app, &row.normalized);
            }
            out.push_str(&table.render());
        }
        out.push_str(&format!("\nSummary ({})\n", self.machine));
        let mut table = TextTable::new(&[
            "power W",
            "oracle",
            "pnp_static",
            "pnp_dynamic",
            "bliss",
            "opentuner",
        ]);
        for ((power, tuners), (_, oracle)) in self
            .summary
            .geomean_speedup_per_power
            .iter()
            .zip(&self.summary.oracle_geomean_per_power)
        {
            let mut vals = vec![*oracle];
            vals.extend_from_slice(tuners);
            table.row_numeric(&format!("{power:.0}"), &vals);
        }
        out.push_str(&table.render());
        out.push_str(&format!(
            "\n>=0.95x oracle: pnp_static {:.1}% | pnp_dynamic {:.1}% | bliss {:.1}% | opentuner {:.1}%\n",
            100.0 * self.summary.pnp_static_within_95,
            100.0 * self.summary.pnp_dynamic_within_95,
            100.0 * self.summary.bliss_within_95,
            100.0 * self.summary.opentuner_within_95,
        ));
        out.push_str(&format!(
            "PnP (static) matches/beats BLISS in {:.1}% and OpenTuner in {:.1}% of cases\n",
            100.0 * self.summary.pnp_beats_bliss,
            100.0 * self.summary.pnp_beats_opentuner,
        ));
        out.push_str("Executions per tuned case: ");
        for (name, execs) in &self.summary.executions_per_case {
            out.push_str(&format!("{name}={execs:.1} "));
        }
        out.push('\n');
        out
    }
}

/// Runs the experiment on a machine (sweep worker count from the
/// environment; see [`run_with`]).
pub fn run(machine: &MachineSpec, settings: &TrainSettings) -> PowerConstrainedResults {
    run_with(machine, settings, pnp_openmp::Threads::from_env())
}

/// Runs the experiment, building the dataset with an explicit sweep worker
/// count. The LOOCV training fan-out is governed separately by
/// `settings.train_threads` (`PNP_TRAIN_THREADS` / `--train-threads`);
/// results are bit-identical for every value of either knob.
pub fn run_with(
    machine: &MachineSpec,
    settings: &TrainSettings,
    sweep_threads: pnp_openmp::Threads,
) -> PowerConstrainedResults {
    run_with_store(machine, settings, sweep_threads, None)
}

/// [`run_with`] with an optional artifact store: the dataset and both
/// trained-model grids are served from the store when warm (DESIGN.md §12).
pub fn run_with_store(
    machine: &MachineSpec,
    settings: &TrainSettings,
    sweep_threads: pnp_openmp::Threads,
    store: Option<&ArtifactStore>,
) -> PowerConstrainedResults {
    let ds = super::build_full_dataset_cached(machine, sweep_threads, store);
    let cache = store.map(|s| s.for_dataset(&ds));
    try_run_on_dataset_cached(&ds, settings, cache.as_ref())
        .expect("power-constrained experiment on degenerate dataset")
}

/// Runs the experiment on a pre-built dataset (lets callers share the sweep).
///
/// Panics on degenerate datasets; use [`try_run_on_dataset`] when the input
/// is not known to be well-formed.
pub fn run_on_dataset(ds: &Dataset, settings: &TrainSettings) -> PowerConstrainedResults {
    try_run_on_dataset(ds, settings).expect("power-constrained experiment on degenerate dataset")
}

/// Fallible twin of [`run_on_dataset`]: returns a typed error for datasets
/// the pipeline cannot process (no regions, no power levels) instead of
/// panicking mid-training.
pub fn try_run_on_dataset(
    ds: &Dataset,
    settings: &TrainSettings,
) -> Result<PowerConstrainedResults, super::ExperimentError> {
    try_run_on_dataset_cached(ds, settings, None)
}

/// [`try_run_on_dataset`] with an optional artifact cache bound to `ds`:
/// the scenario-1 static and dynamic model grids are loaded and replayed
/// when warm, trained and saved when cold — with bit-identical results
/// either way.
pub fn try_run_on_dataset_cached(
    ds: &Dataset,
    settings: &TrainSettings,
    cache: Option<&DatasetCache>,
) -> Result<PowerConstrainedResults, super::ExperimentError> {
    super::check_dataset(ds, 1)?;
    let preds_static = train_scenario1_models_cached(ds, settings, false, cache);
    let preds_dynamic = train_scenario1_models_cached(ds, settings, true, cache);
    let num_powers = ds.space.power_levels.len();

    // Per (region, power) normalized speedups per tuner.
    let mut normalized: Vec<Vec<Vec<f64>>> = vec![Vec::new(); TUNERS.len()];
    let mut raw_speedup: Vec<Vec<Vec<f64>>> = vec![Vec::new(); TUNERS.len()];
    let mut oracle_speedups: Vec<Vec<f64>> = Vec::new();
    let mut bliss_execs = 0.0;
    let mut opentuner_execs = 0.0;

    for t in 0..TUNERS.len() {
        normalized[t] = vec![Vec::new(); num_powers];
        raw_speedup[t] = vec![Vec::new(); num_powers];
    }

    for (i, sweep) in ds.sweeps.iter().enumerate() {
        let evaluator = SimEvaluator::new(ds.machine.clone(), ds.regions[i].profile.clone());
        let mut oracle_row = Vec::new();
        for p in 0..num_powers {
            let default_t = sweep.default_samples[p].time_s;
            let best_t = sweep.best_time(p);
            let oracle_speedup = default_t / best_t;
            oracle_row.push(oracle_speedup);

            // Tuner times at this power.
            let pnp_static_t = sweep.samples[p][preds_static[i][p]].time_s;
            let pnp_dynamic_t = sweep.samples[p][preds_dynamic[i][p]].time_s;

            let objective = Objective::TimeAtPower {
                power_watts: ds.space.power_levels[p],
            };
            let before = evaluator.evaluations();
            let bliss = BlissTuner::new(&ds.space, 1000 + i as u64).tune(&evaluator, &objective);
            bliss_execs += (evaluator.evaluations() - before) as f64;
            let before = evaluator.evaluations();
            let opentuner =
                OpenTunerLike::new(&ds.space, 2000 + i as u64).tune(&evaluator, &objective);
            opentuner_execs += (evaluator.evaluations() - before) as f64;

            let times = [
                default_t,
                pnp_static_t,
                pnp_dynamic_t,
                bliss.best_sample.time_s,
                opentuner.best_sample.time_s,
            ];
            for (t, &time) in times.iter().enumerate() {
                let speedup = default_t / time;
                raw_speedup[t][p].push(speedup);
                normalized[t][p].push((speedup / oracle_speedup).min(1.0));
            }
        }
        oracle_speedups.push(oracle_row);
    }

    // Per-application rows (geometric mean over the app's regions).
    let mut rows = Vec::new();
    let apps = ds.applications();
    for p in 0..num_powers {
        for app in &apps {
            let region_idx: Vec<usize> = (0..ds.len())
                .filter(|&i| ds.regions[i].app == *app)
                .collect();
            let mut per_tuner = Vec::new();
            for norm_t in normalized.iter() {
                let vals: Vec<f64> = region_idx.iter().map(|&i| norm_t[p][i]).collect();
                per_tuner.push(geomean(&vals));
            }
            rows.push(FigureRow {
                app: app.clone(),
                power_watts: ds.space.power_levels[p],
                normalized: per_tuner,
            });
        }
    }
    // Keep figure ordering: power-major (one chart per power), matching
    // render(). `total_cmp` so a degenerate (NaN) cap cannot panic the sort.
    rows.sort_by(|a, b| a.power_watts.total_cmp(&b.power_watts));

    // Summary.
    let flat = |t: usize| -> Vec<f64> {
        (0..num_powers)
            .flat_map(|p| normalized[t][p].iter().copied())
            .collect()
    };
    let pnp_flat = flat(1);
    let dyn_flat = flat(2);
    let bliss_flat = flat(3);
    let opentuner_flat = flat(4);

    let cases = ds.len() as f64 * num_powers as f64;
    let summary = Summary {
        geomean_speedup_per_power: (0..num_powers)
            .map(|p| {
                (
                    ds.space.power_levels[p],
                    (1..TUNERS.len())
                        .map(|t| geomean(&raw_speedup[t][p]))
                        .collect(),
                )
            })
            .collect(),
        oracle_geomean_per_power: (0..num_powers)
            .map(|p| {
                let v: Vec<f64> = oracle_speedups.iter().map(|r| r[p]).collect();
                (ds.space.power_levels[p], geomean(&v))
            })
            .collect(),
        pnp_static_within_95: fraction_within(&pnp_flat, 0.95),
        pnp_dynamic_within_95: fraction_within(&dyn_flat, 0.95),
        bliss_within_95: fraction_within(&bliss_flat, 0.95),
        opentuner_within_95: fraction_within(&opentuner_flat, 0.95),
        pnp_beats_bliss: fraction_no_worse(&pnp_flat, &bliss_flat),
        pnp_beats_opentuner: fraction_no_worse(&pnp_flat, &opentuner_flat),
        executions_per_case: vec![
            ("pnp_static".into(), 0.0),
            ("pnp_dynamic".into(), 2.0),
            ("bliss".into(), bliss_execs / cases),
            ("opentuner".into(), opentuner_execs / cases),
        ],
    };

    Ok(PowerConstrainedResults {
        machine: ds.machine.name.clone(),
        rows,
        summary,
    })
}
