//! EDP tuning (Figures 6 and 7, plus the §IV-C headline numbers): tuners pick
//! a *joint* (power cap, OpenMP configuration) point minimizing the
//! energy-delay product; results are compared against the default OpenMP
//! configuration at TDP.

use crate::artifact::{ArtifactStore, DatasetCache};
use crate::dataset::Dataset;
use crate::eval::{fraction_above, fraction_within, geomean};
use crate::report::TextTable;
use crate::training::{train_scenario2_model_cached, TrainSettings};
use pnp_machine::MachineSpec;
use pnp_tuners::{BlissTuner, Objective, OpenTunerLike, SimEvaluator};
use serde::Serialize;

/// Tuner order used in all EDP result vectors.
pub const TUNERS: [&str; 5] = ["default", "pnp_static", "pnp_dynamic", "bliss", "opentuner"];

/// One application's bar group in Figure 6 (normalized EDP improvement) and
/// Figure 7 (speedups/greenups).
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct EdpRow {
    /// Application name.
    pub app: String,
    /// Oracle-normalized EDP improvement per tuner ([`TUNERS`] order).
    pub normalized_edp: Vec<f64>,
    /// Raw speedup over default-at-TDP per tuner.
    pub speedup: Vec<f64>,
    /// Raw greenup over default-at-TDP per tuner.
    pub greenup: Vec<f64>,
}

/// §IV-C summary for one machine.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct EdpSummary {
    /// Geometric-mean EDP improvement over default-at-TDP per tuner
    /// (excluding "default").
    pub geomean_edp_improvement: Vec<f64>,
    /// Geometric-mean speedup over default-at-TDP per tuner.
    pub geomean_speedup: Vec<f64>,
    /// Geometric-mean greenup over default-at-TDP per tuner.
    pub geomean_greenup: Vec<f64>,
    /// Fraction of regions where the static PnP prediction is within 5 % /
    /// 20 % of the oracle EDP improvement.
    pub pnp_static_within_95: f64,
    /// Fraction within 20 % of the oracle.
    pub pnp_static_within_80: f64,
    /// Same pair for the dynamic variant.
    pub pnp_dynamic_within_95: f64,
    /// Fraction within 20 % of the oracle for the dynamic variant.
    pub pnp_dynamic_within_80: f64,
    /// Fraction of regions whose tuned execution is faster than the default
    /// (static PnP).
    pub pnp_speedup_cases: f64,
    /// Fraction of regions whose tuned execution uses less energy than the
    /// default (static PnP).
    pub pnp_greenup_cases: f64,
}

/// Full EDP experiment results for one machine.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct EdpResults {
    /// Machine name.
    pub machine: String,
    /// Per-application rows.
    pub rows: Vec<EdpRow>,
    /// Summary numbers.
    pub summary: EdpSummary,
}

impl EdpResults {
    /// Index of a tuner name within [`TUNERS`].
    pub fn tuner_index(name: &str) -> Option<usize> {
        TUNERS.iter().position(|t| *t == name)
    }

    /// Geometric-mean EDP improvement over default-at-TDP for a tuner
    /// (structured accessor for the paper-fidelity validator).
    pub fn geomean_edp_improvement(&self, tuner: &str) -> Option<f64> {
        self.summary_entry(&self.summary.geomean_edp_improvement, tuner)
    }

    /// Geometric-mean speedup over default-at-TDP for a tuner.
    pub fn geomean_speedup(&self, tuner: &str) -> Option<f64> {
        self.summary_entry(&self.summary.geomean_speedup, tuner)
    }

    /// Geometric-mean greenup over default-at-TDP for a tuner.
    pub fn geomean_greenup(&self, tuner: &str) -> Option<f64> {
        self.summary_entry(&self.summary.geomean_greenup, tuner)
    }

    /// Fraction of applications whose per-app geomean greenup for `tuner`
    /// exceeds 1.0 (the paper's "less energy than the default" bars).
    pub fn greenup_majority(&self, tuner: &str) -> Option<f64> {
        let t = Self::tuner_index(tuner)?;
        if self.rows.is_empty() {
            return None;
        }
        let over_one = self
            .rows
            .iter()
            .filter(|r| r.greenup.get(t).is_some_and(|&g| g > 1.0))
            .count();
        Some(over_one as f64 / self.rows.len() as f64)
    }

    fn summary_entry(&self, values: &[f64], tuner: &str) -> Option<f64> {
        if tuner == "default" {
            return Some(1.0);
        }
        values
            .get(Self::tuner_index(tuner)?.checked_sub(1)?)
            .copied()
    }

    /// Renders Figure 6 (normalized EDP improvement) and Figure 7 (speedup /
    /// greenup) as tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "\nNormalized EDP improvement ({}) — oracle = 1.0\n",
            self.machine
        ));
        let hdr = ["app", TUNERS[0], TUNERS[1], TUNERS[2], TUNERS[3], TUNERS[4]];
        let mut t = TextTable::new(&hdr);
        for row in &self.rows {
            t.row_numeric(&row.app, &row.normalized_edp);
        }
        out.push_str(&t.render());

        out.push_str(&format!(
            "\nSpeedups over default @ TDP ({})\n",
            self.machine
        ));
        let mut t = TextTable::new(&hdr);
        for row in &self.rows {
            t.row_numeric(&row.app, &row.speedup);
        }
        out.push_str(&t.render());

        out.push_str(&format!(
            "\nGreenups over default @ TDP ({})\n",
            self.machine
        ));
        let mut t = TextTable::new(&hdr);
        for row in &self.rows {
            t.row_numeric(&row.app, &row.greenup);
        }
        out.push_str(&t.render());

        out.push_str(&format!("\nSummary ({})\n", self.machine));
        let mut t = TextTable::new(&["metric", "pnp_static", "pnp_dynamic", "bliss", "opentuner"]);
        t.row_numeric(
            "geomean EDP improvement",
            &self.summary.geomean_edp_improvement,
        );
        t.row_numeric("geomean speedup", &self.summary.geomean_speedup);
        t.row_numeric("geomean greenup", &self.summary.geomean_greenup);
        out.push_str(&t.render());
        out.push_str(&format!(
            "PnP static within 5%/20% of oracle EDP: {:.1}%/{:.1}%; dynamic: {:.1}%/{:.1}%\n",
            100.0 * self.summary.pnp_static_within_95,
            100.0 * self.summary.pnp_static_within_80,
            100.0 * self.summary.pnp_dynamic_within_95,
            100.0 * self.summary.pnp_dynamic_within_80,
        ));
        out.push_str(&format!(
            "PnP static: faster than default in {:.0}% of regions, less energy in {:.0}% of regions\n",
            100.0 * self.summary.pnp_speedup_cases,
            100.0 * self.summary.pnp_greenup_cases,
        ));
        out
    }
}

/// Runs the EDP experiment on a machine (sweep worker count from the
/// environment; see [`run_with`]).
pub fn run(machine: &MachineSpec, settings: &TrainSettings) -> EdpResults {
    run_with(machine, settings, pnp_openmp::Threads::from_env())
}

/// Runs the EDP experiment, building the dataset with an explicit sweep
/// worker count. The per-fold training fan-out is governed separately by
/// `settings.train_threads` (`PNP_TRAIN_THREADS` / `--train-threads`);
/// results are bit-identical for every value of either knob.
pub fn run_with(
    machine: &MachineSpec,
    settings: &TrainSettings,
    sweep_threads: pnp_openmp::Threads,
) -> EdpResults {
    run_with_store(machine, settings, sweep_threads, None)
}

/// [`run_with`] with an optional artifact store: the dataset and both
/// trained-model grids are served from the store when warm (DESIGN.md §12).
pub fn run_with_store(
    machine: &MachineSpec,
    settings: &TrainSettings,
    sweep_threads: pnp_openmp::Threads,
    store: Option<&ArtifactStore>,
) -> EdpResults {
    let ds = super::build_full_dataset_cached(machine, sweep_threads, store);
    let cache = store.map(|s| s.for_dataset(&ds));
    try_run_on_dataset_cached(&ds, settings, cache.as_ref())
        .expect("EDP experiment on degenerate dataset")
}

/// Runs the EDP experiment on a pre-built dataset.
///
/// Panics on degenerate datasets; use [`try_run_on_dataset`] when the input
/// is not known to be well-formed.
pub fn run_on_dataset(ds: &Dataset, settings: &TrainSettings) -> EdpResults {
    try_run_on_dataset(ds, settings).expect("EDP experiment on degenerate dataset")
}

/// Fallible twin of [`run_on_dataset`]: a typed error instead of an index
/// underflow (`power_levels.len() - 1`) or an empty-training-set panic.
pub fn try_run_on_dataset(
    ds: &Dataset,
    settings: &TrainSettings,
) -> Result<EdpResults, super::ExperimentError> {
    try_run_on_dataset_cached(ds, settings, None)
}

/// [`try_run_on_dataset`] with an optional artifact cache bound to `ds`:
/// the scenario-2 static and dynamic model grids are loaded and replayed
/// when warm, trained and saved when cold — bit-identical either way.
pub fn try_run_on_dataset_cached(
    ds: &Dataset,
    settings: &TrainSettings,
    cache: Option<&DatasetCache>,
) -> Result<EdpResults, super::ExperimentError> {
    super::check_dataset(ds, 1)?;
    let preds_static = train_scenario2_model_cached(ds, settings, false, cache);
    let preds_dynamic = train_scenario2_model_cached(ds, settings, true, cache);
    let tdp_idx = ds.space.power_levels.len() - 1;
    let per = ds.space.configs_per_power();

    // Per region per tuner: (edp, time, energy).
    let mut edp_norm: Vec<Vec<f64>> = vec![Vec::new(); TUNERS.len()];
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); TUNERS.len()];
    let mut greenups: Vec<Vec<f64>> = vec![Vec::new(); TUNERS.len()];

    for (i, sweep) in ds.sweeps.iter().enumerate() {
        let baseline = sweep.default_samples[tdp_idx];
        let oracle_improvement = baseline.edp() / sweep.best_edp();

        let evaluator = SimEvaluator::new(ds.machine.clone(), ds.regions[i].profile.clone());
        let bliss = BlissTuner::new(&ds.space, 3000 + i as u64).tune(&evaluator, &Objective::Edp);
        let opentuner =
            OpenTunerLike::new(&ds.space, 4000 + i as u64).tune(&evaluator, &Objective::Edp);

        let decode = |class: usize| {
            let p = class / per;
            let c = class % per;
            sweep.samples[p][c]
        };
        let samples = [
            baseline,
            decode(preds_static[i]),
            decode(preds_dynamic[i]),
            bliss.best_sample,
            opentuner.best_sample,
        ];
        for (t, s) in samples.iter().enumerate() {
            let improvement = baseline.edp() / s.edp();
            edp_norm[t].push((improvement / oracle_improvement).min(1.0));
            speedups[t].push(baseline.time_s / s.time_s);
            greenups[t].push(baseline.energy_j / s.energy_j);
        }
    }

    // Per-application rows.
    let mut rows = Vec::new();
    for app in ds.applications() {
        let idx: Vec<usize> = (0..ds.len())
            .filter(|&i| ds.regions[i].app == app)
            .collect();
        let collect = |per_tuner: &Vec<Vec<f64>>| -> Vec<f64> {
            per_tuner
                .iter()
                .map(|vals| geomean(&idx.iter().map(|&i| vals[i]).collect::<Vec<_>>()))
                .collect()
        };
        rows.push(EdpRow {
            app,
            normalized_edp: collect(&edp_norm),
            speedup: collect(&speedups),
            greenup: collect(&greenups),
        });
    }

    let summary = EdpSummary {
        // EDP improvement factor over default-at-TDP = speedup × greenup.
        geomean_edp_improvement: (1..TUNERS.len())
            .map(|t| {
                let improvements: Vec<f64> = speedups[t]
                    .iter()
                    .zip(&greenups[t])
                    .map(|(s, g)| s * g)
                    .collect();
                geomean(&improvements)
            })
            .collect(),
        geomean_speedup: (1..TUNERS.len()).map(|t| geomean(&speedups[t])).collect(),
        geomean_greenup: (1..TUNERS.len()).map(|t| geomean(&greenups[t])).collect(),
        pnp_static_within_95: fraction_within(&edp_norm[1], 0.95),
        pnp_static_within_80: fraction_within(&edp_norm[1], 0.80),
        pnp_dynamic_within_95: fraction_within(&edp_norm[2], 0.95),
        pnp_dynamic_within_80: fraction_within(&edp_norm[2], 0.80),
        // Strictly faster / strictly greener: a default-equivalent
        // prediction (ratio exactly 1.0) is not an improvement, and the
        // paper-fidelity `majority_regions_improve` invariant must not be
        // satisfiable by a model that always picks the default.
        pnp_speedup_cases: fraction_above(&speedups[1], 1.0),
        pnp_greenup_cases: fraction_above(&greenups[1], 1.0),
    };

    Ok(EdpResults {
        machine: ds.machine.name.clone(),
        rows,
        summary,
    })
}
