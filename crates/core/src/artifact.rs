//! Domain glue between the generic content-addressed store (`pnp-store`) and
//! the PnP pipeline: fingerprints and cache keys for built [`Dataset`]s and
//! trained model grids, plus the [`ArtifactStore`] wrapper every driver and
//! binary threads through.
//!
//! ## What goes into a key (DESIGN.md §12)
//!
//! A cache key must cover *everything that determines the artifact's bytes*:
//!
//! * **dataset** — machine fingerprint (the serialized [`MachineSpec`], which
//!   also determines the Table I search space), suite fingerprint
//!   (application names, region names, serialized workload profiles),
//!   vocabulary fingerprint, and the store schema version.
//! * **model grids** (`models/scenario1|scenario2|unseen_power`) — the
//!   *content hash of the serialized dataset* the models were trained on
//!   (so any dataset change invalidates every downstream model), every
//!   training hyperparameter of [`TrainSettings`], the dynamic-feature flag
//!   or held-out cap, and the seed-scheme tag [`SEED_SCHEME`].
//! * **experiment results** (`experiments/*`) — the dataset hash(es) plus
//!   the hyperparameters, for results that are cheap to re-derive from
//!   models but expensive to recompute from scratch (ablation grids,
//!   transfer reports, the motivating-example sweep).
//!
//! Worker-count knobs are deliberately excluded: PRs 2–3 made every pipeline
//! bit-identical across worker counts, which is the property that makes this
//! cache sound. What a key *cannot* capture is the code itself — a simulator
//! or training change that alters bytes under an unchanged key must bump
//! [`pnp_store::SCHEMA_VERSION`]; the `--verify-store` mode exists to catch
//! exactly that drift (it recomputes on every hit and byte-compares).

use crate::dataset::Dataset;
use crate::training::TrainSettings;
use pnp_benchmarks::Application;
use pnp_graph::Vocabulary;
use pnp_machine::MachineSpec;
use pnp_openmp::Threads;
use pnp_store::sha256_hex;
pub use pnp_store::{ArtifactKey, Store, StoreStats};

/// Tag naming the deterministic per-job seeding scheme of the LOOCV training
/// grids (DESIGN.md §10: `fold*16+power`, `0x2000+fold`,
/// `0x4000+fold*8+cap`). Changing how jobs derive their seeds changes every
/// trained weight, so the tag is part of every model key.
pub const SEED_SCHEME: &str = "grid-v1";

/// SHA-256 of a value's compact JSON serialization.
fn json_sha256<T: serde::Serialize>(value: &T) -> String {
    sha256_hex(
        serde_json::to_string(value)
            .expect("fingerprinted values serialize")
            .as_bytes(),
    )
}

/// Content fingerprint of a machine model (covers the derived Table I search
/// space, the power model, and the simulator inputs).
pub fn machine_fingerprint(machine: &MachineSpec) -> String {
    json_sha256(machine)
}

/// Content fingerprint of an application suite: application names, region
/// names, and each region's serialized workload profile — the inputs from
/// which the sweep and the code graphs are derived.
pub fn suite_fingerprint(apps: &[Application]) -> String {
    let digest: Vec<(String, Vec<(String, &pnp_openmp::RegionProfile)>)> = apps
        .iter()
        .map(|app| {
            (
                app.name.clone(),
                app.regions
                    .iter()
                    .map(|r| (r.name().to_string(), &r.profile))
                    .collect(),
            )
        })
        .collect();
    json_sha256(&digest)
}

/// Content fingerprint of a built dataset: SHA-256 of its full JSON
/// serialization. Every model key embeds this, so models can never be
/// replayed against a dataset other than the one they were trained on.
pub fn dataset_fingerprint(ds: &Dataset) -> String {
    json_sha256(ds)
}

/// Adds every [`TrainSettings`] hyperparameter that shapes trained weights
/// to a key. (`train_threads` is excluded: training is bit-identical for
/// every worker count, DESIGN.md §10.)
fn with_settings(key: ArtifactKey, s: &TrainSettings) -> ArtifactKey {
    key.field("hidden_dim", s.hidden_dim)
        .field("rgcn_layers", s.rgcn_layers)
        .field("fc_hidden", s.fc_hidden)
        .field("epochs", s.epochs)
        .field("batch_size", s.batch_size)
        .field("folds", s.folds)
        .field("seed", s.seed)
        .field("seed_scheme", SEED_SCHEME)
}

/// A [`Store`] plus the domain key builders — the handle the experiment
/// drivers, the validation harness, and every `pnp-bench` binary thread
/// through (always as `Option<&ArtifactStore>`: `None` means "no cache",
/// and every path must work identically without one).
///
/// ```
/// use pnp_core::artifact::ArtifactStore;
/// use pnp_graph::Vocabulary;
/// use pnp_machine::haswell;
/// use pnp_openmp::Threads;
///
/// let root = std::env::temp_dir().join(format!("pnp-artifact-doc-{}", std::process::id()));
/// # std::fs::remove_dir_all(&root).ok();
/// let store = ArtifactStore::open(&root);
/// // The first call builds and caches the (here: empty-suite) dataset;
/// // the second is a pure load of byte-identical content.
/// let vocab = Vocabulary::standard();
/// let ds = store.load_or_build_dataset(&haswell(), &[], &vocab, Threads::Fixed(1));
/// let again = store.load_or_build_dataset(&haswell(), &[], &vocab, Threads::Fixed(1));
/// assert!(ds.is_empty() && again.is_empty());
/// assert_eq!(store.stats().writes, 1);
/// assert_eq!(store.stats().hits, 1);
/// # std::fs::remove_dir_all(&root).ok();
/// ```
#[derive(Debug)]
pub struct ArtifactStore {
    store: Store,
}

impl ArtifactStore {
    /// Wraps an opened store.
    pub fn new(store: Store) -> Self {
        ArtifactStore { store }
    }

    /// Opens a store rooted at `dir`.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> Self {
        ArtifactStore::new(Store::open(dir))
    }

    /// Opens the store named by `PNP_STORE` (honouring `PNP_STORE_FORCE` /
    /// `PNP_STORE_VERIFY`), or `None` when unset.
    pub fn from_env() -> Option<Self> {
        Store::from_env().map(ArtifactStore::new)
    }

    /// The underlying generic store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// The cache key of a built dataset.
    pub fn dataset_key(
        machine: &MachineSpec,
        apps: &[Application],
        vocab: &Vocabulary,
    ) -> ArtifactKey {
        ArtifactKey::new("dataset")
            .field("machine", &machine.name)
            .field("machine_sha256", machine_fingerprint(machine))
            .field("suite_sha256", suite_fingerprint(apps))
            .field("apps", apps.len())
            // Content hash, not just the length: two equally-sized
            // vocabularies would otherwise collide on one key while encoding
            // graphs differently.
            .field("vocab_sha256", json_sha256(vocab))
    }

    /// Returns the cached dataset for `(machine, apps, vocab)`, or builds it
    /// with `threads` workers and caches it. The cached and freshly built
    /// datasets are byte-identical (enforced by `--verify-store` and the
    /// `store_roundtrip` integration tests), so callers cannot observe which
    /// path ran.
    pub fn load_or_build_dataset(
        &self,
        machine: &MachineSpec,
        apps: &[Application],
        vocab: &Vocabulary,
        threads: Threads,
    ) -> Dataset {
        let key = Self::dataset_key(machine, apps, vocab);
        self.store.load_or_build(&key, || {
            Dataset::build_with_threads(machine, apps, vocab, threads)
        })
    }

    /// Binds this store to a dataset's content hash, yielding the handle the
    /// training pipelines key their model grids under.
    pub fn for_dataset<'a>(&'a self, ds: &Dataset) -> DatasetCache<'a> {
        DatasetCache {
            store: self,
            dataset_sha256: dataset_fingerprint(ds),
        }
    }
}

/// An [`ArtifactStore`] bound to one dataset's content hash. Computing the
/// hash serializes the full dataset once, so drivers create this once per
/// dataset and reuse it across their training calls.
///
/// Every model key embeds the bound hash, which is also exactly the stored
/// dataset artifact's header `payload_sha256` — the join the model registry
/// (DESIGN.md §14) is built on:
///
/// ```
/// use pnp_core::artifact::{dataset_fingerprint, ArtifactStore};
/// use pnp_core::{Dataset, TrainSettings};
/// use pnp_graph::Vocabulary;
/// use pnp_machine::haswell;
/// use pnp_openmp::Threads;
///
/// let store = ArtifactStore::open("/tmp/pnp-artifact-doc-keys");
/// let ds = Dataset::build_with_threads(
///     &haswell(), &[], &Vocabulary::standard(), Threads::Fixed(1));
/// let cache = store.for_dataset(&ds);
/// assert_eq!(cache.dataset_sha256(), dataset_fingerprint(&ds));
/// let key = cache.scenario1_key(&TrainSettings::quick(), false);
/// assert_eq!(key.get("dataset_sha256"), Some(cache.dataset_sha256()));
/// assert_eq!(key.get("seed_scheme"), Some("grid-v1"));
/// ```
#[derive(Debug)]
pub struct DatasetCache<'a> {
    store: &'a ArtifactStore,
    dataset_sha256: String,
}

impl DatasetCache<'_> {
    /// The underlying generic store.
    pub fn store(&self) -> &Store {
        self.store.store()
    }

    /// The bound dataset's content hash.
    pub fn dataset_sha256(&self) -> &str {
        &self.dataset_sha256
    }

    /// Key of the scenario-1 trained-model grid (one model per
    /// `(fold, power level)`).
    pub fn scenario1_key(&self, settings: &TrainSettings, use_dynamic: bool) -> ArtifactKey {
        with_settings(
            ArtifactKey::new("models/scenario1")
                .field("dataset_sha256", &self.dataset_sha256)
                .field("dynamic", use_dynamic),
            settings,
        )
    }

    /// Key of the scenario-2 (EDP) trained-model grid (one model per fold).
    pub fn scenario2_key(&self, settings: &TrainSettings, use_dynamic: bool) -> ArtifactKey {
        with_settings(
            ArtifactKey::new("models/scenario2")
                .field("dataset_sha256", &self.dataset_sha256)
                .field("dynamic", use_dynamic),
            settings,
        )
    }

    /// Key of the unseen-power trained-model grid for one held-out cap.
    pub fn unseen_power_key(&self, settings: &TrainSettings, held_out_power: usize) -> ArtifactKey {
        with_settings(
            ArtifactKey::new("models/unseen_power")
                .field("dataset_sha256", &self.dataset_sha256)
                .field("held_out_power", held_out_power),
            settings,
        )
    }

    /// Key of the cached ablation results.
    pub fn ablations_key(&self, settings: &TrainSettings) -> ArtifactKey {
        with_settings(
            ArtifactKey::new("experiments/ablations").field("dataset_sha256", &self.dataset_sha256),
            settings,
        )
    }
}

/// Key of the cached transfer-learning report (spans two datasets). Unlike
/// every other artifact this one carries *wall-clock measurements*, so it is
/// cached with [`Store::load_or_build_nondeterministic`] — re-measured
/// timings legitimately differ, and the bit-identity contract does not
/// apply to it.
pub fn transfer_key(
    source_sha256: &str,
    target_sha256: &str,
    settings: &TrainSettings,
    power_idx: usize,
) -> ArtifactKey {
    with_settings(
        ArtifactKey::new("experiments/transfer")
            .field("source_sha256", source_sha256)
            .field("target_sha256", target_sha256)
            .field("power_idx", power_idx),
        settings,
    )
}

/// Key of the cached out-of-distribution generalization results: train on
/// one dataset, evaluate on a generated synthetic dataset. Fingerprinted by
/// both dataset hashes *and* the generator seed scheme (`gen_seed`,
/// `gen_kernels`), so changing the generated corpus — even to one with an
/// identical region count — can never replay stale results. Fully
/// deterministic (predictions + analytic sweeps), so it is cached under the
/// bit-identity contract.
pub fn ood_key(
    train_sha256: &str,
    eval_sha256: &str,
    settings: &TrainSettings,
    gen_seed: u64,
    gen_kernels: usize,
) -> ArtifactKey {
    with_settings(
        ArtifactKey::new("experiments/ood")
            .field("train_sha256", train_sha256)
            .field("eval_sha256", eval_sha256)
            .field("gen_seed", gen_seed)
            .field("gen_kernels", gen_kernels)
            .field("gen_scheme", "pnp-gen-v1"),
        settings,
    )
}

/// Key of the cached motivating-example results (a single-region sweep plus
/// argmin scans — fully deterministic).
pub fn motivating_key(machine: &MachineSpec, apps: &[Application]) -> ArtifactKey {
    ArtifactKey::new("experiments/motivating")
        .field("machine", &machine.name)
        .field("machine_sha256", machine_fingerprint(machine))
        .field("suite_sha256", suite_fingerprint(apps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_machine::{haswell, skylake};

    #[test]
    fn machine_fingerprints_differ_between_presets() {
        assert_ne!(
            machine_fingerprint(&haswell()),
            machine_fingerprint(&skylake())
        );
        // Stable across calls.
        assert_eq!(
            machine_fingerprint(&haswell()),
            machine_fingerprint(&haswell())
        );
    }

    #[test]
    fn suite_fingerprint_tracks_apps_and_regions() {
        let apps = pnp_benchmarks::full_suite();
        let full = suite_fingerprint(&apps);
        let mut six = apps.clone();
        six.truncate(6);
        assert_ne!(full, suite_fingerprint(&six));
        assert_eq!(suite_fingerprint(&six), suite_fingerprint(&six));
    }

    #[test]
    fn model_keys_separate_pipelines_and_hyperparameters() {
        let store = ArtifactStore::open("/tmp/unused");
        let ds = Dataset::build_with_threads(
            &haswell(),
            &[],
            &Vocabulary::standard(),
            Threads::Fixed(1),
        );
        let cache = store.for_dataset(&ds);
        let quick = TrainSettings::quick();
        let mut longer = TrainSettings::quick();
        longer.epochs += 1;
        let base = cache.scenario1_key(&quick, false).address();
        assert_ne!(base, cache.scenario1_key(&quick, true).address());
        assert_ne!(base, cache.scenario2_key(&quick, false).address());
        assert_ne!(base, cache.scenario1_key(&longer, false).address());
        assert_ne!(
            cache.unseen_power_key(&quick, 0).address(),
            cache.unseen_power_key(&quick, 3).address()
        );
    }
}
