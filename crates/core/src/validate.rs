//! Paper-fidelity validation: the qualitative claims of every figure/table
//! of conf_ipps_DuttaCJ23, encoded as typed, machine-checkable invariants.
//!
//! Each invariant has a stable id, a figure/table citation, a human-readable
//! claim, and a pass/fail verdict computed from the experiments' *structured*
//! result types (no stdout scraping — every experiment module exposes
//! `…Summary`-level accessors for exactly this purpose). Invariants listed in
//! [`EXPECTED_FAIL`] are known modelling gaps documented in DESIGN.md §11:
//! they are reported but do not count as hard failures (and start counting as
//! [`InvariantStatus::UnexpectedPass`] the day the gap closes, so the list
//! cannot rot silently).
//!
//! The `validate_paper` binary in `pnp-bench` drives [`run_full_validation`]
//! and writes the report as `VALIDATION.json`; the `validate` CI job fails
//! the build on any non-expected failure. `tests/validation_invariants.rs`
//! runs the same pipeline on a reduced 6-application suite.

use crate::artifact::ArtifactStore;
use crate::dataset::Dataset;
use crate::experiments::ablations::AblationResults;
use crate::experiments::edp::EdpResults;
use crate::experiments::motivating::MotivatingResults;
use crate::experiments::ood::OodResults;
use crate::experiments::power_constrained::PowerConstrainedResults;
use crate::experiments::transfer::TransferResults;
use crate::experiments::unseen_power::UnseenPowerResults;
use crate::experiments::{self, ExperimentError};
use crate::report::TextTable;
use crate::training::{FoldPlan, TrainSettings};
use pnp_benchmarks::Application;
use pnp_graph::Vocabulary;
use pnp_machine::{haswell, skylake, MachineSpec};
use pnp_openmp::Threads;
use pnp_tuners::SearchSpace;
use serde::{Deserialize, Serialize};

/// The source paper every claim cites back to.
pub const PAPER: &str = "conf_ipps_DuttaCJ23";

/// Number of applications in the paper's full benchmark suite; validation
/// runs on fewer applications are "reduced" (the CI smoke uses 6) and get
/// the [`SuiteScope::ReducedOnly`] expected-fail entries in addition to the
/// [`SuiteScope::Any`] ones.
pub const FULL_SUITE_APPS: usize = 30;

/// Default generator seed for the out-of-distribution corpus (DESIGN.md
/// §13). Fixed so that every `validate_paper` run — and the CI gate — scores
/// the same byte-identical generated suite unless `--ood-seed` overrides it.
pub const DEFAULT_OOD_SEED: u64 = 0xD17A;

/// Default out-of-distribution corpus size: the ≥ 24-kernel acceptance
/// floor of ROADMAP item 4.
pub const DEFAULT_OOD_KERNELS: usize = 24;

/// Which suite sizes an [`EXPECTED_FAIL`] entry applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuiteScope {
    /// The gap shows on every suite size.
    Any,
    /// The gap only shows on the full 30-application suite.
    FullOnly,
    /// The gap only shows on reduced suites (< [`FULL_SUITE_APPS`] apps),
    /// where leave-applications-out folds have too few structural cousins
    /// to generalize from.
    ReducedOnly,
}

/// One documented modelling gap: the invariant id and the suite sizes it is
/// expected to fail on.
#[derive(Clone, Copy, Debug)]
pub struct ExpectedFailEntry {
    /// Invariant id the entry downgrades.
    pub id: &'static str,
    /// Suite sizes the failure is expected on.
    pub scope: SuiteScope,
}

/// Invariant ids that are *known* to diverge from the paper on this
/// reproduction, with each modelling gap documented in DESIGN.md §11. A
/// matching entry downgrades a failure to
/// [`InvariantStatus::ExpectedFail`] and upgrades a pass to
/// [`InvariantStatus::UnexpectedPass`] (a nudge to remove the entry and the
/// DESIGN.md paragraph together).
pub const EXPECTED_FAIL: &[ExpectedFailEntry] = &[
    // The reproduction's quick-budget GNN is far weaker than the paper's
    // fully-trained model, so the *absolute* oracle-proximity rates of the
    // PnP tuner trail BLISS/OpenTuner instead of beating them (the paper's
    // §IV-B headline). The directional claims (beats default, bounded by
    // the oracle) all hold; see DESIGN.md §11.1.
    ExpectedFailEntry {
        id: "fig2.pnp_competitive_with_search",
        scope: SuiteScope::Any,
    },
    ExpectedFailEntry {
        id: "fig3.pnp_competitive_with_search",
        scope: SuiteScope::Any,
    },
    // Extrapolating the normalized-power feature to the held-out Skylake
    // TDP leaves the unseen-cap geomean a hair at-or-under 1.0 (DESIGN.md
    // §11.2).
    ExpectedFailEntry {
        id: "fig4.pnp_beats_default_at_unseen_caps",
        scope: SuiteScope::Any,
    },
    // The quick-budget EDP model often picks default-equivalent points at
    // TDP on Haswell (speedup/greenup exactly 1.0 — *not* improvements
    // under the strict `fraction_above` semantics), so strictly-improved
    // applications/regions stay in the minority there; the Skylake twins
    // pass (DESIGN.md §11.3).
    ExpectedFailEntry {
        id: "edp.haswell.majority_greenup",
        scope: SuiteScope::FullOnly,
    },
    ExpectedFailEntry {
        id: "edp.haswell.majority_regions_improve",
        scope: SuiteScope::Any,
    },
    // On reduced suites the LOOCV folds hold out applications with no
    // structural cousins left in training, so a few directional per-cap
    // claims miss 1.0 (DESIGN.md §11.4).
    ExpectedFailEntry {
        id: "fig2.pnp_beats_default_every_cap",
        scope: SuiteScope::ReducedOnly,
    },
    // Out of distribution the suite-trained model reliably beats the default
    // (observed ~1.3x geomean, with >= 88 % of generated regions no-regret
    // at every cap), but it captures well under half of the oracle's
    // headroom (~28 % on the 6-app quick-budget run). The >= 50 % floor is
    // kept as the target; the gap is documented in DESIGN.md §13.1.
    ExpectedFailEntry {
        id: "ood.pnp_captures_oracle_headroom",
        scope: SuiteScope::Any,
    },
];

/// True when `id` is expected to fail on a suite of the given size.
pub fn is_expected_fail(id: &str, suite_apps: usize) -> bool {
    let reduced = suite_apps < FULL_SUITE_APPS;
    EXPECTED_FAIL.iter().any(|e| {
        e.id == id
            && match e.scope {
                SuiteScope::Any => true,
                SuiteScope::FullOnly => !reduced,
                SuiteScope::ReducedOnly => reduced,
            }
    })
}

/// Verdict for one invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvariantStatus {
    /// The claim holds.
    Pass,
    /// The claim does not hold and is not a documented gap — a hard failure.
    Fail,
    /// The claim does not hold but the divergence is documented in
    /// DESIGN.md §11 ([`EXPECTED_FAIL`]).
    ExpectedFail,
    /// The claim holds although it is listed in [`EXPECTED_FAIL`] — the
    /// documentation is stale.
    UnexpectedPass,
}

/// One checked claim.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InvariantResult {
    /// Stable machine-readable id, e.g. `fig2.pnp_beats_default_every_cap`.
    pub id: String,
    /// Paper artefact the claim comes from, e.g. `Fig. 2 / §IV-B`.
    pub citation: String,
    /// The qualitative claim in prose.
    pub claim: String,
    /// Observed values backing the verdict.
    pub observed: String,
    /// Verdict.
    pub status: InvariantStatus,
}

/// The measurement context stamped into every report (the ROADMAP's 1-core
/// container caveat travels with the data: speedup-flavoured observations
/// from a host without spare cores should be read accordingly).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ValidationContext {
    /// `std::thread::available_parallelism()` of the measuring host.
    pub available_parallelism: usize,
    /// Number of applications in the evaluated suite.
    pub suite_apps: usize,
    /// Number of OpenMP regions per machine, `(machine, regions)`.
    pub suite_regions: Vec<(String, usize)>,
    /// Training-settings mode (`quick` or `full`).
    pub settings_mode: String,
    /// Epochs per trained model.
    pub epochs: usize,
    /// Cross-validation folds requested.
    pub folds: usize,
    /// Generator seed of the out-of-distribution corpus.
    pub ood_seed: u64,
    /// Number of generated kernels in the out-of-distribution corpus.
    pub ood_kernels: usize,
}

/// The full validation report (serialized as `VALIDATION.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Source paper id.
    pub paper: String,
    /// Measurement context (host parallelism, suite size, settings).
    pub context: ValidationContext,
    /// Every checked invariant, in check order.
    pub invariants: Vec<InvariantResult>,
    /// Number of passing invariants.
    pub passed: usize,
    /// Number of hard failures (not expected, not documented).
    pub failed: usize,
    /// Number of documented expected failures.
    pub expected_failed: usize,
    /// Number of stale [`EXPECTED_FAIL`] entries that now pass.
    pub unexpected_passed: usize,
    /// The out-of-distribution experiment results backing the `ood.*`
    /// verdicts (absent when the driver could not run, e.g. `--apps 0`).
    /// CI publishes this table to the step summary.
    pub ood: Option<OodResults>,
}

impl ValidationReport {
    /// The invariants that constitute hard failures.
    pub fn hard_failures(&self) -> Vec<&InvariantResult> {
        self.invariants
            .iter()
            .filter(|i| i.status == InvariantStatus::Fail)
            .collect()
    }

    /// Looks an invariant up by id.
    pub fn invariant(&self, id: &str) -> Option<&InvariantResult> {
        self.invariants.iter().find(|i| i.id == id)
    }

    /// Renders the report as an aligned text table plus a tally line.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["status", "invariant", "citation", "observed"]);
        for inv in &self.invariants {
            let status = match inv.status {
                InvariantStatus::Pass => "PASS",
                InvariantStatus::Fail => "FAIL",
                InvariantStatus::ExpectedFail => "XFAIL",
                InvariantStatus::UnexpectedPass => "XPASS",
            };
            t.row(&[
                status.to_string(),
                inv.id.clone(),
                inv.citation.clone(),
                inv.observed.clone(),
            ]);
        }
        format!(
            "{}\n{} passed, {} failed, {} expected-fail, {} unexpected-pass \
             ({} invariants; host parallelism {})\n",
            t.render(),
            self.passed,
            self.failed,
            self.expected_failed,
            self.unexpected_passed,
            self.invariants.len(),
            self.context.available_parallelism,
        )
    }
}

/// Accumulates invariant verdicts; [`Validator::check`] applies the
/// [`EXPECTED_FAIL`] downgrade/upgrade rules for the suite size it was
/// created for.
#[derive(Debug)]
pub struct Validator {
    results: Vec<InvariantResult>,
    suite_apps: usize,
}

impl Default for Validator {
    fn default() -> Self {
        Validator::new()
    }
}

impl Validator {
    /// Creates an empty validator for the full-suite expected-fail rules.
    pub fn new() -> Self {
        Validator::for_suite(FULL_SUITE_APPS)
    }

    /// Creates an empty validator for a suite of `suite_apps` applications
    /// (reduced suites get additional [`SuiteScope::ReducedOnly`] entries).
    pub fn for_suite(suite_apps: usize) -> Self {
        Validator {
            results: Vec::new(),
            suite_apps,
        }
    }

    /// Records one claim's verdict.
    pub fn check(&mut self, id: &str, citation: &str, claim: &str, pass: bool, observed: String) {
        let expected_fail = is_expected_fail(id, self.suite_apps);
        let status = match (pass, expected_fail) {
            (true, false) => InvariantStatus::Pass,
            (true, true) => InvariantStatus::UnexpectedPass,
            (false, true) => InvariantStatus::ExpectedFail,
            (false, false) => InvariantStatus::Fail,
        };
        self.results.push(InvariantResult {
            id: id.to_string(),
            citation: citation.to_string(),
            claim: claim.to_string(),
            observed,
            status,
        });
    }

    /// Finalizes the report with its measurement context.
    pub fn into_report(self, context: ValidationContext) -> ValidationReport {
        let count = |s: InvariantStatus| self.results.iter().filter(|i| i.status == s).count();
        ValidationReport {
            paper: PAPER.to_string(),
            passed: count(InvariantStatus::Pass),
            failed: count(InvariantStatus::Fail),
            expected_failed: count(InvariantStatus::ExpectedFail),
            unexpected_passed: count(InvariantStatus::UnexpectedPass),
            invariants: self.results,
            context,
            ood: None,
        }
    }
}

fn fmt_vec(values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    format!("[{}]", cells.join(", "))
}

/// Table I checks: the structure of the tuning search space.
pub fn check_search_space(v: &mut Validator, machine: &MachineSpec, space: &SearchSpace) {
    let cite = "Table I";
    let tag = format!("table1.{}", machine.name);
    let per = space.thread_counts.len() * space.schedules.len() * space.chunk_sizes.len();
    let consistent = space.configs_per_power() == per
        && space.num_tuned_points() == per * space.power_levels.len()
        && space.num_valid_points() == space.num_tuned_points() + space.power_levels.len();
    v.check(
        &format!("{tag}.counts_consistent"),
        cite,
        "threads x schedules x chunks per cap; tuned = per-cap x caps; valid = tuned + defaults",
        consistent,
        format!(
            "per_cap={} tuned={} valid={}",
            space.configs_per_power(),
            space.num_tuned_points(),
            space.num_valid_points()
        ),
    );
    v.check(
        &format!("{tag}.paper_sizes"),
        cite,
        "126 configurations per cap, 504 tuned + 4 defaults = 508 valid points",
        space.configs_per_power() == 126
            && space.num_tuned_points() == 504
            && space.num_valid_points() == 508,
        format!(
            "per_cap={} tuned={} valid={}",
            space.configs_per_power(),
            space.num_tuned_points(),
            space.num_valid_points()
        ),
    );
    let ascending = space.power_levels.windows(2).all(|w| w[0] < w[1]);
    let positive = space.power_levels.iter().all(|&p| p > 0.0);
    let tops_at_tdp = space
        .power_levels
        .last()
        .is_some_and(|&p| (p - machine.tdp_watts).abs() < 1e-9);
    v.check(
        &format!("{tag}.power_levels"),
        cite,
        "4 positive, strictly ascending power caps, topping out at TDP",
        space.power_levels.len() == 4 && ascending && positive && tops_at_tdp,
        format!(
            "caps={} tdp={}",
            fmt_vec(&space.power_levels),
            machine.tdp_watts
        ),
    );
}

/// Table II checks: the training hyperparameters of the full configuration.
pub fn check_hyperparameters(v: &mut Validator) {
    let full = TrainSettings::full();
    let quick = TrainSettings::quick();
    v.check(
        "table2.full_matches_paper",
        "Table II",
        "paper-fidelity settings: 4 RGCN layers, batch 16, LOOCV over 30 applications",
        full.rgcn_layers == 4 && full.batch_size == 16 && full.folds == 30 && full.epochs >= 60,
        format!(
            "rgcn_layers={} batch={} folds={} epochs={}",
            full.rgcn_layers, full.batch_size, full.folds, full.epochs
        ),
    );
    v.check(
        "table2.quick_within_full",
        "Table II",
        "the quick configuration only shrinks the paper's budgets, never exceeds them",
        quick.epochs <= full.epochs
            && quick.hidden_dim <= full.hidden_dim
            && quick.rgcn_layers <= full.rgcn_layers
            && quick.folds <= full.folds,
        format!(
            "quick epochs/hidden/layers/folds = {}/{}/{}/{}",
            quick.epochs, quick.hidden_dim, quick.rgcn_layers, quick.folds
        ),
    );
}

/// Dataset-level physical invariants (the sweep both trains the model and
/// serves as the oracle, so its internal consistency underwrites every
/// figure).
pub fn check_dataset_invariants(v: &mut Validator, ds: &Dataset) {
    let tag = format!("dataset.{}", ds.machine.name);
    check_dataset_invariants_tagged(v, &tag, ds);
}

/// [`check_dataset_invariants`] under an explicit invariant-id prefix, so
/// the same physical checks can gate a second dataset of the *same* machine
/// (the synthetic OOD sweep) without colliding with the paper suite's ids.
pub fn check_dataset_invariants_tagged(v: &mut Validator, tag: &str, ds: &Dataset) {
    let cite = "§III (measurement methodology)";
    let num_powers = ds.space.power_levels.len();

    let mut oracle_monotone = true;
    let mut default_monotone = true;
    let mut oracle_bounds_default = true;
    let mut all_finite = true;
    let mut worst_violation = 0.0f64;
    for sweep in &ds.sweeps {
        for p in 0..num_powers {
            let best = sweep.best_time(p);
            let default = sweep.default_samples[p].time_s;
            if !(best > 0.0 && best.is_finite() && default > 0.0 && default.is_finite()) {
                all_finite = false;
            }
            // The tuned space does not contain the default chunk setting, so
            // allow a 5 % slack before calling the oracle worse than default.
            if best > default * 1.05 {
                oracle_bounds_default = false;
                worst_violation = worst_violation.max(best / default);
            }
            if p + 1 < num_powers {
                // More power headroom can only help (tiny float slack).
                if sweep.best_time(p + 1) > best * (1.0 + 1e-9) {
                    oracle_monotone = false;
                }
                if sweep.default_samples[p + 1].time_s > default * (1.0 + 1e-9) {
                    default_monotone = false;
                }
            }
        }
    }
    v.check(
        &format!("{tag}.times_finite_positive"),
        cite,
        "every sweep sample has finite positive time and energy",
        all_finite
            && ds
                .sweeps
                .iter()
                .flat_map(|s| s.samples.iter().flatten())
                .all(|s| s.time_s > 0.0 && s.time_s.is_finite() && s.energy_j > 0.0),
        format!("regions={} caps={}", ds.len(), num_powers),
    );
    v.check(
        &format!("{tag}.oracle_monotone_in_cap"),
        cite,
        "raising the power cap never slows the per-region oracle down",
        oracle_monotone,
        format!("monotone over {} regions x {} caps", ds.len(), num_powers),
    );
    v.check(
        &format!("{tag}.default_monotone_in_cap"),
        cite,
        "raising the power cap never slows the default configuration down",
        default_monotone,
        format!("monotone over {} regions x {} caps", ds.len(), num_powers),
    );
    v.check(
        &format!("{tag}.oracle_bounds_default"),
        cite,
        "the tuned oracle is never materially slower than the default configuration",
        oracle_bounds_default,
        if oracle_bounds_default {
            "oracle <= 1.05 x default everywhere".to_string()
        } else {
            format!("worst oracle/default ratio {worst_violation:.3}")
        },
    );
    let labels_valid = ds.sweeps.iter().all(|s| {
        (0..num_powers).all(|p| s.best_time_config(p) < ds.space.configs_per_power()) && {
            let (bp, bc) = s.best_edp_point();
            bp < num_powers && bc < ds.space.configs_per_power()
        }
    });
    v.check(
        &format!("{tag}.labels_in_range"),
        cite,
        "every training label indexes a real point of the Table I space",
        labels_valid,
        format!("classes_per_cap={}", ds.space.configs_per_power()),
    );
}

/// Figure 2/3 + §IV-B checks for one machine's power-constrained results.
pub fn check_power_constrained(v: &mut Validator, tag: &str, r: &PowerConstrainedResults) {
    let cite = if tag == "fig2" {
        "Fig. 2 / §IV-B"
    } else {
        "Fig. 3 / §IV-B"
    };
    let caps = r.power_caps();

    let pnp_per_cap: Vec<f64> = caps
        .iter()
        .filter_map(|&c| r.geomean_speedup("pnp_static", c))
        .collect();
    v.check(
        &format!("{tag}.pnp_beats_default_every_cap"),
        cite,
        "the static PnP tuner's geomean speedup over the default exceeds 1 at every cap",
        pnp_per_cap.len() == caps.len() && pnp_per_cap.iter().all(|&s| s > 1.0),
        fmt_vec(&pnp_per_cap),
    );

    let mut oracle_bounds = true;
    for &cap in &caps {
        let oracle = r.oracle_geomean(cap).unwrap_or(0.0);
        for tuner in ["pnp_static", "pnp_dynamic", "bliss", "opentuner"] {
            if r.geomean_speedup(tuner, cap).unwrap_or(f64::INFINITY) > oracle * (1.0 + 1e-9) {
                oracle_bounds = false;
            }
        }
    }
    v.check(
        &format!("{tag}.oracle_bounds_tuners"),
        cite,
        "no tuner's geomean speedup exceeds the oracle's at any cap",
        oracle_bounds,
        format!(
            "oracle={}",
            fmt_vec(
                &caps
                    .iter()
                    .filter_map(|&c| r.oracle_geomean(c))
                    .collect::<Vec<_>>()
            )
        ),
    );

    let normalized_ok = r
        .rows
        .iter()
        .flat_map(|row| row.normalized.iter())
        .all(|&n| (0.0..=1.0 + 1e-9).contains(&n));
    v.check(
        &format!("{tag}.normalized_in_unit_interval"),
        cite,
        "every oracle-normalized bar lies in [0, 1]",
        normalized_ok,
        format!(
            "{} rows x {} tuners",
            r.rows.len(),
            crate::experiments::power_constrained::TUNERS.len()
        ),
    );

    let oracles: Vec<f64> = caps.iter().filter_map(|&c| r.oracle_geomean(c)).collect();
    let headroom = oracles.first().zip(oracles.last());
    v.check(
        &format!("{tag}.headroom_grows_as_cap_shrinks"),
        cite,
        "tuning headroom (oracle geomean speedup) is largest at the most restrictive cap",
        headroom.is_some_and(|(lo, hi)| *lo >= hi * 0.98),
        fmt_vec(&oracles),
    );

    let execs = &r.summary.executions_per_case;
    let exec_of = |name: &str| {
        execs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| *e)
            .unwrap_or(f64::NAN)
    };
    v.check(
        &format!("{tag}.pnp_needs_no_search"),
        cite,
        "PnP tunes with 0 (static) / 2 (dynamic profiling) executions; the search-based tuners need many more",
        exec_of("pnp_static") == 0.0
            && exec_of("pnp_dynamic") <= 2.0
            && exec_of("bliss") > 2.0
            && exec_of("opentuner") > 2.0,
        format!(
            "static={} dynamic={} bliss={:.1} opentuner={:.1}",
            exec_of("pnp_static"),
            exec_of("pnp_dynamic"),
            exec_of("bliss"),
            exec_of("opentuner")
        ),
    );

    let rows_per_cap: Vec<usize> = caps.iter().map(|&c| r.rows_at(c).len()).collect();
    v.check(
        &format!("{tag}.rows_complete"),
        cite,
        "the figure has one bar group per (application, cap) pair — the same applications at every cap",
        !rows_per_cap.is_empty()
            && rows_per_cap.iter().all(|&n| n > 0 && n == rows_per_cap[0])
            && rows_per_cap.iter().sum::<usize>() == r.rows.len(),
        format!("rows={} per_cap={:?}", r.rows.len(), rows_per_cap),
    );

    let s = &r.summary;
    v.check(
        &format!("{tag}.pnp_competitive_with_search"),
        cite,
        "the static PnP tuner matches or beats the search-based tuners' oracle proximity",
        s.pnp_static_within_95 >= s.bliss_within_95
            && s.pnp_static_within_95 >= s.opentuner_within_95,
        format!(
            "within95: pnp={:.2} bliss={:.2} opentuner={:.2}",
            s.pnp_static_within_95, s.bliss_within_95, s.opentuner_within_95
        ),
    );
    v.check(
        &format!("{tag}.fractions_valid"),
        cite,
        "all §IV-B oracle-proximity and head-to-head fractions are valid probabilities",
        [
            s.pnp_static_within_95,
            s.pnp_dynamic_within_95,
            s.bliss_within_95,
            s.opentuner_within_95,
            s.pnp_beats_bliss,
            s.pnp_beats_opentuner,
        ]
        .iter()
        .all(|f| (0.0..=1.0).contains(f)),
        format!(
            "pnp95={:.2} dyn95={:.2} beats_bliss={:.2}",
            s.pnp_static_within_95, s.pnp_dynamic_within_95, s.pnp_beats_bliss
        ),
    );
}

/// Figure 4/5 checks: generalization to unseen power caps, compared against
/// the seen-cap results of the same machine.
pub fn check_unseen_power(
    v: &mut Validator,
    tag: &str,
    r: &UnseenPowerResults,
    seen: &PowerConstrainedResults,
) {
    let cite = if tag == "fig4" { "Fig. 4" } else { "Fig. 5" };
    let caps = r.held_out_caps();

    let mut beats_default = true;
    let mut oracle_bounds = true;
    let mut pnp_geo = Vec::new();
    for &cap in &caps {
        if let Some((pnp, oracle)) = r.geomean_at(cap) {
            pnp_geo.push(pnp);
            if pnp <= 1.0 {
                beats_default = false;
            }
            if pnp > oracle * (1.0 + 1e-9) {
                oracle_bounds = false;
            }
        }
    }
    v.check(
        &format!("{tag}.pnp_beats_default_at_unseen_caps"),
        cite,
        "PnP still beats the default configuration at caps it never trained on",
        beats_default && pnp_geo.len() == caps.len(),
        fmt_vec(&pnp_geo),
    );
    v.check(
        &format!("{tag}.oracle_bounds_pnp"),
        cite,
        "the unseen-cap PnP geomean speedup never exceeds the oracle's",
        oracle_bounds,
        format!("caps={}", fmt_vec(&caps)),
    );
    v.check(
        &format!("{tag}.within_consistency"),
        cite,
        "the within-20% fraction dominates the within-5% fraction (both valid)",
        r.within_80 >= r.within_95 && (0.0..=1.0).contains(&r.within_95),
        format!("within95={:.2} within80={:.2}", r.within_95, r.within_80),
    );
    v.check(
        &format!("{tag}.graceful_degradation"),
        cite,
        "unseen-cap accuracy degrades gracefully: at least half the seen-cap within-5% rate",
        r.within_95 >= seen.summary.pnp_static_within_95 * 0.5,
        format!(
            "unseen within95={:.2} vs seen {:.2}",
            r.within_95, seen.summary.pnp_static_within_95
        ),
    );
}

/// Figure 6/7 + §IV-C checks for one machine's EDP results.
pub fn check_edp(v: &mut Validator, tag: &str, r: &EdpResults) {
    let cite = "Fig. 6/7 / §IV-C";
    let pnp_edp = r.geomean_edp_improvement("pnp_static").unwrap_or(0.0);
    v.check(
        &format!("{tag}.pnp_improves_edp"),
        cite,
        "joint (power, configuration) tuning improves geomean EDP over default-at-TDP",
        pnp_edp > 1.0,
        format!("geomean EDP improvement {pnp_edp:.3}"),
    );

    let mut identity_ok = true;
    let mut worst = 0.0f64;
    for tuner in ["pnp_static", "pnp_dynamic", "bliss", "opentuner"] {
        let edp = r.geomean_edp_improvement(tuner).unwrap_or(f64::NAN);
        let s = r.geomean_speedup(tuner).unwrap_or(f64::NAN);
        let g = r.geomean_greenup(tuner).unwrap_or(f64::NAN);
        let rel = (edp - s * g).abs() / edp.abs().max(1e-12);
        let within_tolerance = rel.is_finite() && rel < 1e-6;
        if !within_tolerance {
            identity_ok = false;
        }
        worst = worst.max(rel);
    }
    v.check(
        &format!("{tag}.edp_speedup_greenup_identity"),
        cite,
        "geomean EDP improvement factors as geomean speedup x geomean greenup (table consistency)",
        identity_ok,
        format!("worst relative error {worst:.2e}"),
    );

    let majority = r.greenup_majority("pnp_static").unwrap_or(0.0);
    v.check(
        &format!("{tag}.majority_greenup"),
        cite,
        "EDP tuning yields a greenup > 1 for the majority of applications",
        majority >= 0.5,
        format!("{:.0}% of applications", 100.0 * majority),
    );
    v.check(
        &format!("{tag}.majority_regions_improve"),
        cite,
        "most regions run faster and use less energy than default-at-TDP",
        r.summary.pnp_speedup_cases >= 0.5 && r.summary.pnp_greenup_cases >= 0.5,
        format!(
            "faster={:.0}% greener={:.0}%",
            100.0 * r.summary.pnp_speedup_cases,
            100.0 * r.summary.pnp_greenup_cases
        ),
    );
    v.check(
        &format!("{tag}.within_consistency"),
        cite,
        "within-20% dominates within-5% for both PnP variants",
        r.summary.pnp_static_within_80 >= r.summary.pnp_static_within_95
            && r.summary.pnp_dynamic_within_80 >= r.summary.pnp_dynamic_within_95,
        format!(
            "static {:.2}/{:.2}, dynamic {:.2}/{:.2}",
            r.summary.pnp_static_within_95,
            r.summary.pnp_static_within_80,
            r.summary.pnp_dynamic_within_95,
            r.summary.pnp_dynamic_within_80
        ),
    );
    let normalized_ok = r
        .rows
        .iter()
        .flat_map(|row| row.normalized_edp.iter())
        .all(|&n| (0.0..=1.0 + 1e-9).contains(&n));
    v.check(
        &format!("{tag}.normalized_in_unit_interval"),
        cite,
        "every oracle-normalized EDP bar lies in [0, 1]",
        normalized_ok,
        format!("{} rows", r.rows.len()),
    );
}

/// Section I motivating-example checks.
pub fn check_motivating(v: &mut Validator, r: &MotivatingResults) {
    let cite = "§I (motivating example)";
    let caps: Vec<f64> = r.best_speedup_per_cap.iter().map(|(c, _)| *c).collect();
    let speedups: Vec<f64> = r.best_speedup_per_cap.iter().map(|(_, s)| *s).collect();

    v.check(
        "motivating.tuning_pays_at_every_cap",
        cite,
        "the best configuration beats the default at every cap",
        speedups.iter().all(|&s| s >= 1.0),
        fmt_vec(&speedups),
    );
    let at_lowest = caps.first().and_then(|&c| r.speedup_at(c));
    let at_highest = caps.last().and_then(|&c| r.speedup_at(c));
    v.check(
        "motivating.headroom",
        cite,
        "tuning headroom is largest at the lowest cap (paper: 7.54x at 40 W vs 1.67x at 85 W)",
        at_lowest.zip(at_highest).is_some_and(|(lo, hi)| lo > hi),
        format!("caps={} speedups={}", fmt_vec(&caps), fmt_vec(&speedups)),
    );
    v.check(
        "motivating.headroom_monotone",
        cite,
        "the best-over-default speedup shrinks monotonically as the cap rises",
        speedups.windows(2).all(|w| w[0] >= w[1] * 0.98),
        fmt_vec(&speedups),
    );
    v.check(
        "motivating.race_to_halt_violated",
        cite,
        "the fastest point is not the most energy-efficient point",
        r.race_to_halt_violated,
        format!("violated={}", r.race_to_halt_violated),
    );
    v.check(
        "motivating.best_edp_wins_both_ways",
        cite,
        "the best-EDP point is both faster and greener than default-at-TDP (paper: 1.64x / 2.7x)",
        r.best_edp.1 > 1.0 && r.best_edp.2 > 1.0,
        format!("speedup={:.2} greenup={:.2}", r.best_edp.1, r.best_edp.2),
    );
}

/// §IV-B transfer-learning checks.
pub fn check_transfer(v: &mut Validator, r: &TransferResults) {
    let cite = "§IV-B (transfer learning)";
    v.check(
        "transfer.speedup",
        cite,
        "re-training only the dense head is clearly faster than training from scratch (paper: ~4.18x)",
        r.speedup > 1.5,
        format!(
            "{:.2}x ({:.2}s -> {:.2}s)",
            r.speedup, r.scratch_seconds, r.transfer_seconds
        ),
    );
    v.check(
        "transfer.accuracy",
        cite,
        "the transferred model's accuracy is comparable to training from scratch",
        f64::from(r.transfer_accuracy) >= f64::from(r.scratch_accuracy) - 0.15,
        format!(
            "scratch={:.2} transfer={:.2}",
            r.scratch_accuracy, r.transfer_accuracy
        ),
    );
}

/// DESIGN.md §6 ablation checks.
pub fn check_ablations(v: &mut Validator, r: &AblationResults) {
    let cite = "DESIGN.md §6 (ablations)";
    let rgcn = r.model_accuracy("RGCN + mean");
    let gcn = r.model_accuracy("plain GCN");
    v.check(
        "ablations.relational_weights_help",
        cite,
        "relation-typed weights never clearly hurt accuracy vs. the tied-weight GCN",
        rgcn.zip(gcn).is_some_and(|(r, g)| r >= g - 0.05),
        format!("rgcn={rgcn:?} gcn={gcn:?}"),
    );
    v.check(
        "ablations.accuracies_valid",
        cite,
        "every ablation accuracy is a valid fraction",
        r.model_variants
            .iter()
            .all(|row| (0.0..=1.0).contains(&row.value)),
        format!("{} variants", r.model_variants.len()),
    );
    let b5 = r.bliss_at_budget(5);
    let b20 = r.bliss_at_budget(20);
    v.check(
        "ablations.bliss_budget_monotone",
        cite,
        "a 20-sample BLISS budget is at least as good as a 5-sample budget",
        b5.zip(b20).is_some_and(|(lo, hi)| hi >= lo - 0.02),
        format!("5={b5:?} 20={b20:?}"),
    );
}

/// Generated-corpus checks (ROADMAP item 4 / DESIGN.md §13): the seed-driven
/// kernel generator must be deterministic and prefix-stable, and every
/// kernel it emits must flow panic-free through
/// lower → verify → region graph → encode with zero out-of-vocabulary nodes
/// — the encode-path hardening half of the OOD gate, checked before any
/// model ever sees the corpus.
pub fn check_generated_corpus(v: &mut Validator, seed: u64, count: usize) {
    let cite = "DESIGN.md §13 (synthetic kernels)";
    let corpus = pnp_ir::gen::corpus(seed, count);
    let again = pnp_ir::gen::corpus(seed, count);
    let prefix = pnp_ir::gen::corpus(seed, count / 2);
    v.check(
        "ood.corpus_deterministic",
        cite,
        "the same generator seed yields a byte-identical corpus, prefix-stable in the count",
        corpus == again && corpus[..count / 2] == prefix[..],
        format!("seed={seed:#x} kernels={count}"),
    );
    let names: std::collections::BTreeSet<&str> =
        corpus.iter().map(|k| k.source.name.as_str()).collect();
    v.check(
        "ood.corpus_size",
        cite,
        "the corpus meets the >= 24-kernel acceptance floor with unique region names",
        corpus.len() == count && count >= DEFAULT_OOD_KERNELS && names.len() == corpus.len(),
        format!("kernels={} unique_names={}", corpus.len(), names.len()),
    );

    let vocab = Vocabulary::standard();
    let mut encoded = 0usize;
    let mut first_err = String::new();
    for (i, k) in corpus.iter().enumerate() {
        let fail = |msg: String| format!("kernel {i} ({}): {msg}", k.source.name);
        let module = match pnp_ir::lower::try_lower_kernel("ood", std::slice::from_ref(&k.source)) {
            Ok(m) => m,
            Err(e) => {
                if first_err.is_empty() {
                    first_err = fail(e.to_string());
                }
                continue;
            }
        };
        if let Err(e) = pnp_ir::verify::verify_module(&module) {
            if first_err.is_empty() {
                first_err = fail(format!("{e:?}"));
            }
            continue;
        }
        let Some(graph) = pnp_graph::builder::build_region_graph(&module, &k.source.name) else {
            if first_err.is_empty() {
                first_err = fail("no region graph".to_string());
            }
            continue;
        };
        if vocab.oov_rate(&graph) != 0.0 {
            if first_err.is_empty() {
                first_err = fail("out-of-vocabulary node texts".to_string());
            }
            continue;
        }
        let enc = pnp_graph::vocab::EncodedGraph::encode(&graph, &vocab);
        if let Err(e) = enc.validate(vocab.len()) {
            if first_err.is_empty() {
                first_err = fail(e);
            }
            continue;
        }
        encoded += 1;
    }
    v.check(
        "ood.corpus_encodes_in_vocabulary",
        cite,
        "every generated kernel lowers, verifies, graphs, and encodes fully in-vocabulary",
        encoded == corpus.len(),
        if first_err.is_empty() {
            format!("{encoded}/{} kernels", corpus.len())
        } else {
            first_err
        },
    );
}

/// Out-of-distribution accuracy checks (ROADMAP item 4 / DESIGN.md §13):
/// the suite-trained model scored on kernels it has never seen.
pub fn check_ood(v: &mut Validator, r: &OodResults) {
    let cite = "DESIGN.md §13 (OOD generalization)";
    let pnp: Vec<f64> = r.rows.iter().map(|x| x.pnp_geomean_speedup).collect();
    let oracle: Vec<f64> = r.rows.iter().map(|x| x.oracle_geomean_speedup).collect();

    v.check(
        "ood.results_complete",
        cite,
        "the driver scored every generated region at every cap with valid fractions",
        !r.rows.is_empty()
            && r.regions.len() == r.kernels
            && r.rows.iter().all(|x| {
                x.pnp_geomean_speedup.is_finite()
                    && x.pnp_geomean_speedup > 0.0
                    && x.oracle_geomean_speedup.is_finite()
                    && (0.0..=1.0).contains(&x.frac_within_10pct_of_oracle)
                    && (0.0..=1.0).contains(&x.frac_no_worse_than_default)
            }),
        format!("kernels={} caps={}", r.kernels, r.rows.len()),
    );
    v.check(
        "ood.oracle_bounds_pnp",
        cite,
        "the predicted configuration never beats the exhaustive-sweep oracle at any cap",
        r.rows
            .iter()
            .all(|x| x.pnp_geomean_speedup <= x.oracle_geomean_speedup * (1.0 + 1e-9)),
        format!("pnp={} oracle={}", fmt_vec(&pnp), fmt_vec(&oracle)),
    );
    v.check(
        "ood.oracle_has_headroom",
        cite,
        "the tuned oracle materially beats the default on the generated corpus too",
        r.rows.iter().all(|x| x.oracle_geomean_speedup >= 0.95),
        fmt_vec(&oracle),
    );
    v.check(
        "ood.pnp_beats_default",
        cite,
        "out of distribution, the suite-trained model still beats the default overall (geomean over caps)",
        r.overall_pnp_speedup() >= 1.0,
        format!("overall pnp={:.3}x oracle={:.3}x", r.overall_pnp_speedup(), r.overall_oracle_speedup()),
    );
    v.check(
        "ood.pnp_captures_oracle_headroom",
        cite,
        "the model captures a substantial fraction of the oracle's OOD headroom, not just parity with default",
        r.oracle_fraction() >= 0.5,
        format!("{:.0}% of oracle headroom", 100.0 * r.oracle_fraction()),
    );
    v.check(
        "ood.majority_no_worse_than_default",
        cite,
        "at every cap, most generated regions run no slower than the default configuration",
        r.min_no_worse_than_default() >= 0.5,
        format!(
            "weakest cap: {:.0}% of regions",
            100.0 * r.min_no_worse_than_default()
        ),
    );
}

/// Edge sweeps: degenerate inputs must produce typed errors or documented
/// neutral values, never panics (the satellite audit of this PR).
pub fn check_edge_cases(v: &mut Validator, settings: &TrainSettings) {
    let cite = "edge sweep (no paper artefact)";
    let machine = haswell();
    let empty =
        Dataset::build_with_threads(&machine, &[], &Vocabulary::standard(), Threads::Fixed(1));
    let all_typed = experiments::power_constrained::try_run_on_dataset(&empty, settings).err()
        == Some(ExperimentError::EmptyDataset)
        && experiments::edp::try_run_on_dataset(&empty, settings).err()
            == Some(ExperimentError::EmptyDataset)
        && experiments::unseen_power::try_run_on_dataset(&empty, settings).err()
            == Some(ExperimentError::EmptyDataset)
        && experiments::ablations::try_run_on_dataset(&empty, settings).err()
            == Some(ExperimentError::EmptyDataset);
    v.check(
        "edge.empty_dataset_is_typed_error",
        cite,
        "every experiment driver rejects an empty dataset with a typed error",
        all_typed,
        "power_constrained/edp/unseen_power/ablations".to_string(),
    );

    v.check(
        "edge.empty_fold_plan",
        cite,
        "an empty application list yields an empty fold plan, not one empty fold",
        FoldPlan::new(&[], 5).is_empty(),
        format!("folds={}", FoldPlan::new(&[], 5).len()),
    );

    let zero_cap = pnp_openmp::sim::simulate_region(
        &machine,
        &pnp_openmp::RegionProfile::balanced("edge", 1000),
        &pnp_openmp::default_config(&machine),
        0.0,
    );
    v.check(
        "edge.zero_cap_stays_finite",
        cite,
        "a zero-watt power cap is floored, yielding finite positive time and energy",
        zero_cap.time_s.is_finite() && zero_cap.time_s > 0.0 && zero_cap.energy_j.is_finite(),
        format!(
            "time={:.3e}s energy={:.3e}J",
            zero_cap.time_s, zero_cap.energy_j
        ),
    );

    v.check(
        "edge.geomean_total",
        cite,
        "aggregates are total: empty geomean is the neutral 1.0 and zero values are detected, not panics",
        crate::eval::geomean(&[]) == 1.0
            && crate::eval::checked_geomean(&[1.0, 0.0]).is_none()
            && crate::eval::geomean(&[1.0, 0.0]).is_finite(),
        "geomean([])=1.0, checked_geomean catches non-positives".to_string(),
    );
}

/// Options for [`run_full_validation`].
pub struct ValidationOptions {
    /// Training settings (quick or full).
    pub settings: TrainSettings,
    /// Worker count for the exhaustive sweeps.
    pub sweep_threads: Threads,
    /// Truncate the application suite to the first `n` apps (`None` = full
    /// 30-application suite).
    pub apps: Option<usize>,
    /// Optional content-addressed artifact store (DESIGN.md §12): when warm
    /// it serves both datasets and every trained-model grid, turning the
    /// harness into load-and-evaluate — with a byte-identical verdict list,
    /// since every cached artifact is bit-identical to a fresh computation
    /// (the transfer report is cached as-measured).
    pub store: Option<ArtifactStore>,
    /// Generator seed for the out-of-distribution corpus
    /// ([`DEFAULT_OOD_SEED`] unless overridden via `--ood-seed`).
    pub ood_seed: u64,
    /// Out-of-distribution corpus size ([`DEFAULT_OOD_KERNELS`] unless
    /// overridden via `--ood-kernels`).
    pub ood_kernels: usize,
}

/// Runs every figure/table experiment through the shared `run_on_dataset`
/// entry points and checks all encoded invariants, returning the report.
pub fn run_full_validation(opts: &ValidationOptions) -> ValidationReport {
    let mut apps = pnp_benchmarks::full_suite();
    if let Some(n) = opts.apps {
        apps.truncate(n);
    }
    run_validation_on_suite_with_store(
        &apps,
        &opts.settings,
        opts.sweep_threads,
        opts.store.as_ref(),
        opts.ood_seed,
        opts.ood_kernels,
    )
}

/// [`run_full_validation`] over an explicit application list (the reduced
/// 6-app suite of the integration tests enters here), with the default
/// out-of-distribution corpus.
pub fn run_validation_on_suite(
    apps: &[Application],
    settings: &TrainSettings,
    sweep_threads: Threads,
) -> ValidationReport {
    run_validation_on_suite_with_store(
        apps,
        settings,
        sweep_threads,
        None,
        DEFAULT_OOD_SEED,
        DEFAULT_OOD_KERNELS,
    )
}

/// [`run_validation_on_suite`] with an optional artifact store and an
/// explicit out-of-distribution corpus (`ood_seed`, `ood_kernels`).
pub fn run_validation_on_suite_with_store(
    apps: &[Application],
    settings: &TrainSettings,
    sweep_threads: Threads,
    store: Option<&ArtifactStore>,
    ood_seed: u64,
    ood_kernels: usize,
) -> ValidationReport {
    let mut v = Validator::for_suite(apps.len());
    let vocab = Vocabulary::standard();

    check_hyperparameters(&mut v);
    check_edge_cases(&mut v, settings);

    // One dataset per machine, shared by every per-machine experiment (and
    // served from the artifact store when one is warm).
    let machines = [haswell(), skylake()];
    let mut datasets = Vec::new();
    for machine in &machines {
        let space = SearchSpace::for_machine(machine);
        check_search_space(&mut v, machine, &space);
        let ds = match store {
            Some(store) => store.load_or_build_dataset(machine, apps, &vocab, sweep_threads),
            None => Dataset::build_with_threads(machine, apps, &vocab, sweep_threads),
        };
        check_dataset_invariants(&mut v, &ds);
        datasets.push(ds);
    }
    let (ds_haswell, ds_skylake) = (&datasets[0], &datasets[1]);
    // One cache handle per dataset (each binds the dataset's content hash,
    // computed once here and reused by every training pipeline below).
    let caches: Vec<_> = datasets
        .iter()
        .map(|ds| store.map(|s| s.for_dataset(ds)))
        .collect();
    let (cache_haswell, cache_skylake) = (caches[0].as_ref(), caches[1].as_ref());

    // One failing meta-invariant per driver that cannot run at all — the
    // harness itself must survive degenerate suites (e.g. `--apps 0`) and
    // report them as verdicts, not panics, so it uses the typed
    // `try_run_on_dataset` twins throughout.
    let driver_failed = |v: &mut Validator, tag: &str, cite: &str, err: &ExperimentError| {
        v.check(
            &format!("{tag}.driver_ran"),
            cite,
            "the experiment driver accepts the validation suite",
            false,
            err.to_string(),
        );
    };

    // Fig. 2/3 (+ §IV-B) and Fig. 4/5 — power-constrained and unseen-cap.
    for (ds, cache, pc_tag, up_tag) in [
        (ds_haswell, cache_haswell, "fig2", "fig5"),
        (ds_skylake, cache_skylake, "fig3", "fig4"),
    ] {
        match experiments::power_constrained::try_run_on_dataset_cached(ds, settings, cache) {
            Ok(pc) => {
                check_power_constrained(&mut v, pc_tag, &pc);
                match experiments::unseen_power::try_run_on_dataset_cached(ds, settings, cache) {
                    Ok(up) => check_unseen_power(&mut v, up_tag, &up, &pc),
                    Err(e) => driver_failed(&mut v, up_tag, "Fig. 4/5", &e),
                }
            }
            Err(e) => {
                driver_failed(&mut v, pc_tag, "Fig. 2/3 / §IV-B", &e);
                driver_failed(&mut v, up_tag, "Fig. 4/5", &e);
            }
        }
    }

    // Fig. 6/7 (+ §IV-C) on both machines.
    for (ds, cache, tag) in [
        (ds_haswell, cache_haswell, "edp.haswell"),
        (ds_skylake, cache_skylake, "edp.skylake"),
    ] {
        match experiments::edp::try_run_on_dataset_cached(ds, settings, cache) {
            Ok(edp) => check_edp(&mut v, tag, &edp),
            Err(e) => driver_failed(&mut v, tag, "Fig. 6/7 / §IV-C", &e),
        }
    }

    // §I motivating example (its own single-region sweep, independent of
    // the validation suite).
    let motivating = experiments::motivating::run_with_store(sweep_threads, store);
    check_motivating(&mut v, &motivating);

    // §IV-B transfer learning and the DESIGN.md §6 ablations need regions
    // to train on; on a degenerate suite they are reported, not run.
    if ds_haswell.is_empty() || ds_skylake.is_empty() {
        driver_failed(
            &mut v,
            "transfer",
            "§IV-B (transfer learning)",
            &ExperimentError::EmptyDataset,
        );
    } else {
        let power_idx = ds_haswell.space.power_levels.len() - 1;
        let transfer: TransferResults = experiments::transfer::run_on_datasets_cached(
            ds_haswell,
            ds_skylake,
            settings,
            power_idx,
            cache_haswell.zip(cache_skylake),
        );
        check_transfer(&mut v, &transfer);
    }
    match experiments::ablations::try_run_on_dataset_cached(ds_haswell, settings, cache_haswell) {
        Ok(ablations) => check_ablations(&mut v, &ablations),
        Err(e) => driver_failed(&mut v, "ablations", "DESIGN.md §6 (ablations)", &e),
    }

    // ROADMAP item 4: out-of-distribution generalization on generated
    // kernels (DESIGN.md §13). The corpus-level checks run unconditionally;
    // the accuracy gate needs a non-degenerate training suite.
    check_generated_corpus(&mut v, ood_seed, ood_kernels);
    let eval = experiments::ood::build_synthetic_dataset(
        &haswell(),
        ood_seed,
        ood_kernels,
        sweep_threads,
        store,
    );
    check_dataset_invariants_tagged(&mut v, "ood.dataset", &eval);
    let cache_eval = store.map(|s| s.for_dataset(&eval));
    let ood = match experiments::ood::try_run_on_datasets_cached(
        ds_haswell,
        &eval,
        settings,
        ood_seed,
        ood_kernels,
        cache_haswell.zip(cache_eval.as_ref()),
    ) {
        Ok(r) => {
            check_ood(&mut v, &r);
            Some(r)
        }
        Err(e) => {
            driver_failed(&mut v, "ood", "DESIGN.md §13 (OOD generalization)", &e);
            None
        }
    };

    let context = ValidationContext {
        available_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        suite_apps: apps.len(),
        suite_regions: datasets
            .iter()
            .map(|ds| (ds.machine.name.clone(), ds.len()))
            .collect(),
        settings_mode: if settings.folds >= 30 {
            "full"
        } else {
            "quick"
        }
        .to_string(),
        epochs: settings.epochs,
        folds: settings.folds,
        ood_seed,
        ood_kernels,
    };
    let mut report = v.into_report(context);
    report.ood = ood;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_applies_expected_fail_rules() {
        let mut v = Validator::new();
        v.check("unit.pass", "t", "c", true, "x".into());
        v.check("unit.fail", "t", "c", false, "x".into());
        v.check(EXPECTED_FAIL[0].id, "t", "c", false, "x".into());
        v.check(EXPECTED_FAIL[1].id, "t", "c", true, "x".into());
        let report = v.into_report(ValidationContext {
            available_parallelism: 1,
            suite_apps: 0,
            suite_regions: vec![],
            settings_mode: "quick".into(),
            epochs: 1,
            folds: 1,
            ood_seed: 0,
            ood_kernels: 0,
        });
        assert_eq!(report.passed, 1);
        assert_eq!(report.failed, 1);
        assert_eq!(report.expected_failed, 1);
        assert_eq!(report.unexpected_passed, 1);
        assert_eq!(report.hard_failures().len(), 1);
        assert_eq!(report.hard_failures()[0].id, "unit.fail");
        assert_eq!(
            report.invariant(EXPECTED_FAIL[0].id).unwrap().status,
            InvariantStatus::ExpectedFail
        );
    }

    #[test]
    fn expected_fail_scopes_follow_suite_size() {
        // Any-scope entries apply on both suite sizes.
        assert!(is_expected_fail("fig2.pnp_competitive_with_search", 6));
        assert!(is_expected_fail("fig2.pnp_competitive_with_search", 30));
        // FullOnly entries are enforced strictly on reduced suites.
        assert!(is_expected_fail("edp.haswell.majority_greenup", 30));
        assert!(!is_expected_fail("edp.haswell.majority_greenup", 6));
        // ReducedOnly entries are enforced strictly on the full suite.
        assert!(is_expected_fail("fig2.pnp_beats_default_every_cap", 6));
        assert!(!is_expected_fail("fig2.pnp_beats_default_every_cap", 30));
        // Unknown ids are never expected to fail.
        assert!(!is_expected_fail("fig2.rows_complete", 6));
    }

    #[test]
    fn report_round_trips_through_json_and_renders() {
        let mut v = Validator::new();
        v.check("unit.a", "Fig. 2", "claim", true, "1.0".into());
        let report = v.into_report(ValidationContext {
            available_parallelism: 4,
            suite_apps: 6,
            suite_regions: vec![("haswell".into(), 13)],
            settings_mode: "quick".into(),
            epochs: 14,
            folds: 5,
            ood_seed: 0,
            ood_kernels: 0,
        });
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("available_parallelism"));
        let back: ValidationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.passed, 1);
        let text = report.render();
        assert!(text.contains("PASS"));
        assert!(text.contains("unit.a"));
        assert!(text.contains("host parallelism 4"));
    }

    #[test]
    fn table_level_checks_pass_on_the_real_presets() {
        let mut v = Validator::new();
        check_hyperparameters(&mut v);
        for machine in [haswell(), skylake()] {
            let space = SearchSpace::for_machine(&machine);
            check_search_space(&mut v, &machine, &space);
        }
        let report = v.into_report(ValidationContext {
            available_parallelism: 1,
            suite_apps: 0,
            suite_regions: vec![],
            settings_mode: "quick".into(),
            epochs: 1,
            folds: 1,
            ood_seed: 0,
            ood_kernels: 0,
        });
        assert_eq!(report.failed, 0, "failures: {:?}", report.hard_failures());
    }
}
