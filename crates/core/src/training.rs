//! Training pipelines: grouped leave-applications-out cross-validation for
//! both tuning scenarios, the dynamic-feature variants, the
//! unseen-power-constraint generalization, and transfer learning.
//!
//! ## Parallel LOOCV (DESIGN.md §10)
//!
//! Every cross-validated pipeline here is a grid of *independent* training
//! jobs — one model per `(fold, power level)` pair for scenario 1, one per
//! fold for scenario 2 and the unseen-power variant. Since PR 3 these jobs
//! fan out over the in-tree OpenMP executor (`pnp_openmp::par`): each job
//! carries its own deterministic seed (derived from its grid coordinates,
//! e.g. `fold_idx * 16 + power_idx`), trains in isolation, and returns its
//! held-out predictions, which are written back into the prediction matrix
//! by `(region, power)` index. Because no float ever crosses a job boundary
//! and the seeds do not depend on the worker count, the trained models and
//! all downstream metrics are **bit-identical for every worker count** —
//! `tests/training_determinism.rs` and the CI train-perf smoke enforce it.
//! The knob is [`TrainSettings::train_threads`] (`PNP_TRAIN_THREADS` /
//! `--train-threads` in the experiment binaries).

//! ## Cached training (DESIGN.md §12)
//!
//! Each `train_*_cached` twin persists its grid of trained checkpoints in
//! the content-addressed artifact store as a [`TrainedGrid`] (one
//! [`ParameterBundle`] per `(fold, power)` job, keyed on the dataset's
//! content hash plus every hyperparameter). On a warm store the pipeline
//! skips training entirely and *replays*: it rebuilds each job's model from
//! its seed, restores the checkpoint, and recomputes the held-out
//! predictions — which are bit-identical to the freshly trained ones,
//! because weights survive the JSON round-trip exactly (shortest-round-trip
//! float formatting) and prediction is deterministic. Any checkpoint that
//! does not fit the current job plan falls back to training that job, never
//! to a panic.

use crate::artifact::{ArtifactKey, DatasetCache};
use crate::dataset::Dataset;
use pnp_gnn::train::OptimizerKind;
use pnp_gnn::{ModelConfig, PnPModel, TrainConfig, Trainer, TrainingSample};
use pnp_graph::Vocabulary;
use pnp_openmp::{parallel_map, parallel_map_indexed, Threads};
use pnp_tensor::ParameterBundle;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Model/training sizes. `quick` keeps the whole evaluation tractable on a
/// single core; `full` matches the paper's hyperparameters (Table II).
#[derive(Clone, Debug)]
pub struct TrainSettings {
    /// Hidden width of the node representation.
    pub hidden_dim: usize,
    /// Number of RGCN layers (paper: 4).
    pub rgcn_layers: usize,
    /// Width of the dense classifier layers.
    pub fc_hidden: usize,
    /// Training epochs per fold.
    pub epochs: usize,
    /// Gradient-accumulation batch size (paper: 16).
    pub batch_size: usize,
    /// Number of cross-validation folds over applications. With 30 (one per
    /// application) this is exactly the paper's LOOCV; the quick setting
    /// groups applications into fewer folds, which is still leakage-free.
    pub folds: usize,
    /// Base random seed.
    pub seed: u64,
    /// Worker count for the cross-validation training fan-out (one job per
    /// `(fold, power level)` pair in scenario 1, one per fold elsewhere).
    /// Training outputs are bit-identical for every value — the knob only
    /// changes wall-clock time. Resolved from `PNP_TRAIN_THREADS` by
    /// [`TrainSettings::from_env`]; defaults to one worker per core.
    pub train_threads: Threads,
}

impl TrainSettings {
    /// Fast settings for the single-core container (default).
    pub fn quick() -> Self {
        TrainSettings {
            hidden_dim: 16,
            rgcn_layers: 2,
            fc_hidden: 32,
            epochs: 14,
            batch_size: 16,
            folds: 5,
            seed: 0x5EED,
            train_threads: Threads::Auto,
        }
    }

    /// Paper-fidelity settings (Table II; LOOCV over all 30 applications).
    pub fn full() -> Self {
        TrainSettings {
            hidden_dim: 32,
            rgcn_layers: 4,
            fc_hidden: 64,
            epochs: 60,
            batch_size: 16,
            folds: 30,
            seed: 0x5EED,
            train_threads: Threads::Auto,
        }
    }

    /// `quick()` unless the environment variable `PNP_FULL=1` is set; the
    /// training worker count is resolved from `PNP_TRAIN_THREADS` (unset
    /// means one worker per core).
    pub fn from_env() -> Self {
        let mut settings = if std::env::var("PNP_FULL").map(|v| v == "1").unwrap_or(false) {
            Self::full()
        } else {
            Self::quick()
        };
        settings.train_threads = Threads::from_train_env();
        settings
    }

    pub(crate) fn model_config(
        &self,
        num_classes: usize,
        num_dynamic: usize,
        seed_offset: u64,
    ) -> ModelConfig {
        ModelConfig {
            vocab_size: Vocabulary::standard().len(),
            hidden_dim: self.hidden_dim,
            num_rgcn_layers: self.rgcn_layers,
            fc_hidden: self.fc_hidden,
            num_classes,
            num_relations: 3,
            num_dynamic_features: num_dynamic,
            dropout: 0.0,
            seed: self.seed ^ seed_offset,
        }
    }

    fn train_config(&self, optimizer: OptimizerKind, freeze_gnn: bool) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            learning_rate: 1e-3,
            batch_size: self.batch_size,
            optimizer,
            grad_clip: 5.0,
            freeze_gnn,
            seed: self.seed,
        }
    }
}

/// The cross-validation fold plan: each entry is the set of applications held
/// out (validated on) in that fold.
#[derive(Clone, Debug)]
pub struct FoldPlan {
    /// Held-out application groups, one per fold.
    pub held_out: Vec<Vec<String>>,
}

impl FoldPlan {
    /// Splits the applications into `folds` groups round-robin. With
    /// `folds >= apps.len()` this degenerates to exact LOOCV.
    ///
    /// An empty `apps` list yields an **empty plan** (no folds): there is
    /// nothing to hold out, so every training pipeline driven by the plan
    /// trains zero models and returns its all-zero prediction default.
    /// (Before PR 3 this case silently clamped to one empty fold, which the
    /// pipelines then had to skip as degenerate.)
    pub fn new(apps: &[String], folds: usize) -> Self {
        if apps.is_empty() {
            return FoldPlan {
                held_out: Vec::new(),
            };
        }
        let folds = folds.clamp(1, apps.len());
        let mut held_out = vec![Vec::new(); folds];
        for (i, app) in apps.iter().enumerate() {
            held_out[i % folds].push(app.clone());
        }
        FoldPlan { held_out }
    }

    /// Number of folds.
    pub fn len(&self) -> usize {
        self.held_out.len()
    }

    /// True when the plan has no folds.
    pub fn is_empty(&self) -> bool {
        self.held_out.is_empty()
    }
}

/// Per-class "prior quality" scores computed from the training sweeps: for
/// scenario 1, `score[c]` combines the geometric mean over training regions
/// of `best_time / time(c)` with a [`RISK_WEIGHT`]-weighted worst-case term;
/// for scenario 2 the same with EDP. Predictions blend the classifier's
/// probabilities with this prior (`ln p + ln prior`), which keeps the tuner
/// sensible when the model is uncertain — the GNN sharpens the choice where
/// it has signal and the prior prevents catastrophic picks (e.g. a
/// huge-chunk static schedule for a short loop) where it does not. The
/// paper's models are trained far longer on real hardware; this blending
/// compensates for the reduced training budget of the reproduction and is
/// documented in DESIGN.md §11.
pub(crate) fn class_prior_scenario1(
    ds: &Dataset,
    power_idx: usize,
    train_idx: &[usize],
) -> Vec<f64> {
    let num_classes = ds.space.configs_per_power();
    let mut scores = vec![0.0f64; num_classes];
    for (c, score) in scores.iter_mut().enumerate() {
        let ratios: Vec<f64> = train_idx
            .iter()
            .map(|&i| {
                let best = ds.sweeps[i].best_time(power_idx);
                let t = ds.sweeps[i].samples[power_idx][c].time_s;
                (best / t).max(1e-6)
            })
            .collect();
        *score = risk_adjusted_score(&ratios);
    }
    scores
}

/// Weight of the worst-case (minimum over training regions) ratio inside the
/// class priors: a configuration that is catastrophic for even one training
/// region is strongly penalized, while uniformly-decent configurations are
/// unaffected.
pub(crate) const RISK_WEIGHT: f64 = 0.5;

/// Risk-adjusted prior score for one class from its per-training-region
/// `best / observed` ratios (each in `(0, 1]`): the geometric mean times the
/// worst case raised to [`RISK_WEIGHT`].
///
/// A pure geometric mean endorses configurations that are fine on average
/// but disastrous for a minority of regions — the paper-fidelity harness
/// caught held-out regions being handed a 512-element static chunk that
/// starves most threads on short loops (0.05–0.09x "speedups"). The
/// worst-case term vetoes such picks while leaving uniformly-decent
/// configurations untouched.
pub(crate) fn risk_adjusted_score(ratios: &[f64]) -> f64 {
    let mut log_sum = 0.0f64;
    let mut log_min = 0.0f64;
    for &r in ratios {
        let l = r.ln();
        log_sum += l;
        log_min = log_min.min(l);
    }
    let mean = log_sum / ratios.len().max(1) as f64;
    (mean + RISK_WEIGHT * log_min).exp()
}

pub(crate) fn class_prior_scenario2(ds: &Dataset, train_idx: &[usize]) -> Vec<f64> {
    let per = ds.space.configs_per_power();
    let num_classes = ds.space.num_tuned_points();
    let mut scores = vec![0.0f64; num_classes];
    for (class, score) in scores.iter_mut().enumerate() {
        let (p, c) = (class / per, class % per);
        let ratios: Vec<f64> = train_idx
            .iter()
            .map(|&i| {
                let best = ds.sweeps[i].best_edp();
                let e = ds.sweeps[i].samples[p][c].edp();
                (best / e).max(1e-9)
            })
            .collect();
        *score = risk_adjusted_score(&ratios);
    }
    scores
}

/// Picks the class maximizing `ln p_model + ln prior`. (A 2x prior
/// upweighting for the extrapolating unseen-power pipeline was measured and
/// rejected: it nudged the full-suite fig. 4 geomean up by ~2 % but clearly
/// hurt the reduced validation suite — one shared weight keeps the blend
/// predictable.)
pub(crate) fn predict_with_prior(
    model: &mut PnPModel,
    graph: &pnp_graph::EncodedGraph,
    dynamic: Option<&[f32]>,
    prior: &[f64],
) -> usize {
    let probs = model.predict_proba(graph, dynamic);
    prior_blend_argmax(&probs, prior)
}

/// The `ln p + ln prior` argmax with strict `>` comparison — one function
/// shared by the single and batched predictors so tie-breaking cannot drift.
fn prior_blend_argmax(probs: &[f32], prior: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (c, (&p, &q)) in probs.iter().zip(prior).enumerate() {
        let score = (p.max(1e-9) as f64).ln() + q.max(1e-9).ln();
        if score > best_score {
            best_score = score;
            best = c;
        }
    }
    best
}

/// Batched twin of [`predict_with_prior`]: one class per graph through the
/// fused block-diagonal forward ([`pnp_gnn::GraphBatch`], DESIGN.md §15),
/// bit-identical to looping `predict_with_prior` over the graphs — the LOOCV
/// prediction phases call this so a whole validation fold costs one tall
/// matmul per relation per layer instead of one small matmul per region.
///
/// If the batch cannot be assembled (a zero-node graph in the fold — not
/// producible by the dataset builder, but a fold must degrade gracefully,
/// never panic), it falls back to the per-graph path.
pub(crate) fn predict_with_prior_batch(
    model: &mut PnPModel,
    graphs: &[&pnp_graph::EncodedGraph],
    dynamic: Option<&[Vec<f32>]>,
    prior: &[f64],
) -> Vec<usize> {
    if graphs.is_empty() {
        return Vec::new();
    }
    match pnp_gnn::GraphBatch::from_graphs(graphs) {
        Ok(batch) => model
            .predict_proba_batch(&batch, dynamic)
            .iter()
            .map(|probs| prior_blend_argmax(probs, prior))
            .collect(),
        Err(_) => graphs
            .iter()
            .enumerate()
            .map(|(k, g)| predict_with_prior(model, g, dynamic.map(|d| d[k].as_slice()), prior))
            .collect(),
    }
}

fn scenario1_samples(
    ds: &Dataset,
    power_idx: usize,
    region_indices: &[usize],
    dynamic: Option<bool>, // Some(include_power)
) -> Vec<TrainingSample> {
    region_indices
        .iter()
        .map(|&i| TrainingSample {
            graph: ds.regions[i].graph.clone(),
            dynamic: dynamic.map(|inc_power| ds.dynamic_features(i, power_idx, inc_power)),
            label: ds.sweeps[i].best_time_config(power_idx),
            group: ds.regions[i].app.clone(),
        })
        .collect()
}

/// One scenario-1 training job: `(fold_idx, power_idx, train_idx, val_idx)`.
/// The index vectors are shared (`Arc`) across a fold's per-power jobs
/// rather than cloned into each.
type Scenario1Job = (
    usize,
    usize,
    std::sync::Arc<Vec<usize>>,
    std::sync::Arc<Vec<usize>>,
);

/// A cross-validated pipeline's trained checkpoints — the artifact the
/// content-addressed store persists for each `train_*` pipeline.
///
/// `jobs[i]` holds job `i`'s grid coordinates (`(fold_idx, power_idx)` for
/// scenario 1, `(fold_idx, 0)` for the per-fold pipelines) and `weights[i]`
/// its full checkpoint. On load, the coordinates are checked against the
/// current fold plan: a grid trained under a different plan is retrained,
/// not misapplied.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainedGrid {
    /// Grid coordinates per job, in dispatch order.
    pub jobs: Vec<(usize, usize)>,
    /// Full model checkpoint per job (every trainable parameter).
    pub weights: Vec<ParameterBundle>,
}

/// The cached-grid choreography shared by every `train_*_cached` pipeline:
/// load the [`TrainedGrid`] for `key` (training and saving on a miss),
/// retrain-and-overwrite when the cached grid does not match the current
/// job plan (`coords`), then replay each job — restore its checkpoint into
/// a freshly seeded model from `make_model`, with a per-job retraining
/// fallback — and return the per-job predictions. All closures are indexed
/// by job position, matching `coords`.
#[allow(clippy::too_many_arguments)]
fn replay_or_train(
    cache: &DatasetCache,
    key: ArtifactKey,
    pipeline: &str,
    coords: Vec<(usize, usize)>,
    threads: Threads,
    train_job: &(impl Fn(usize) -> PnPModel + Sync),
    make_model: &(impl Fn(usize) -> PnPModel + Sync),
    predict_job: &(impl Fn(usize, &mut PnPModel) -> Vec<usize> + Sync),
) -> Vec<Vec<usize>> {
    let n = coords.len();
    let train_grid = || TrainedGrid {
        jobs: coords.clone(),
        weights: parallel_map_indexed(n, threads, |j| train_job(j).all_weights()),
    };
    let mut grid = cache.store().load_or_build(&key, train_grid);
    // Coordinates AND weight count must fit the current plan — a grid from
    // drifted code could match one but not the other, and the replay below
    // indexes `weights[j]`, which must degrade to retraining, never panic.
    if grid.jobs != coords || grid.weights.len() != coords.len() {
        eprintln!(
            "[pnp-store] cached {pipeline} grid does not match the current fold plan; \
             retraining"
        );
        grid = train_grid();
        if let Err(e) = cache.store().save(&key, &grid) {
            eprintln!("[pnp-store] could not overwrite stale grid: {e}");
        }
    }
    parallel_map_indexed(n, threads, |j| {
        let mut model =
            restore_or_retrain(make_model(j), &grid.weights[j], pipeline, || train_job(j));
        predict_job(j, &mut model)
    })
}

/// Restores job `i`'s checkpoint into a freshly seeded model, or retrains
/// the job when the checkpoint does not fit the model (wrong tensor count /
/// names / shapes — possible only when code drifted under an unchanged
/// store schema; the fallback keeps a stale store degraded, not fatal).
fn restore_or_retrain(
    mut model: PnPModel,
    checkpoint: &ParameterBundle,
    pipeline: &str,
    retrain: impl FnOnce() -> PnPModel,
) -> PnPModel {
    let restored = model.load_all_weights(checkpoint);
    if restored == model.num_parameters() && checkpoint.len() == restored {
        model
    } else {
        eprintln!(
            "[pnp-store] {pipeline} checkpoint does not fit the current model \
             ({restored}/{} tensors restored, {} stored); retraining this job",
            model.num_parameters(),
            checkpoint.len()
        );
        retrain()
    }
}

/// Per-fold `(fold_idx, train_idx, val_idx)` region splits, dropping folds
/// that are degenerate (nothing to train on or nothing to validate on) so
/// the training fan-outs only dispatch real jobs.
fn fold_region_splits(ds: &Dataset, folds: &FoldPlan) -> Vec<(usize, Vec<usize>, Vec<usize>)> {
    folds
        .held_out
        .iter()
        .enumerate()
        .filter_map(|(fold_idx, held_out)| {
            let train_idx: Vec<usize> = (0..ds.len())
                .filter(|&i| !held_out.contains(&ds.regions[i].app))
                .collect();
            let val_idx: Vec<usize> = (0..ds.len())
                .filter(|&i| held_out.contains(&ds.regions[i].app))
                .collect();
            (!train_idx.is_empty() && !val_idx.is_empty()).then_some((fold_idx, train_idx, val_idx))
        })
        .collect()
}

/// Scenario 1 (power-constrained tuning): trains one model per fold per power
/// level and returns `predictions[region][power]` = predicted OpenMP class.
///
/// `use_dynamic` adds the five PAPI-style counters (collected from the
/// default-configuration run at that power level) to the classifier input —
/// the paper's "PnP Tuner (Dynamic)" variant.
///
/// The `fold × power` grid of independent jobs fans out over
/// [`TrainSettings::train_threads`] workers; each job keeps its serial seed
/// (`fold_idx * 16 + power_idx`) and predictions are written back by
/// `(region, power)` index, so the output is bit-identical for every worker
/// count (DESIGN.md §10).
pub fn train_scenario1_models(
    ds: &Dataset,
    settings: &TrainSettings,
    use_dynamic: bool,
) -> Vec<Vec<usize>> {
    train_scenario1_models_cached(ds, settings, use_dynamic, None)
}

/// [`train_scenario1_models`] with an optional artifact cache: on a warm
/// store the `fold × power` grid of checkpoints is loaded and replayed
/// instead of trained, producing bit-identical predictions (DESIGN.md §12).
pub fn train_scenario1_models_cached(
    ds: &Dataset,
    settings: &TrainSettings,
    use_dynamic: bool,
    cache: Option<&DatasetCache>,
) -> Vec<Vec<usize>> {
    let apps = ds.applications();
    let folds = FoldPlan::new(&apps, settings.folds);
    let num_powers = ds.space.power_levels.len();
    let num_classes = ds.space.configs_per_power();
    let num_dynamic = if use_dynamic { 5 } else { 0 };
    let mut predictions = vec![vec![0usize; num_powers]; ds.len()];

    let jobs: Vec<Scenario1Job> = fold_region_splits(ds, &folds)
        .into_iter()
        .flat_map(|(fold_idx, train_idx, val_idx)| {
            let train_idx = std::sync::Arc::new(train_idx);
            let val_idx = std::sync::Arc::new(val_idx);
            (0..num_powers)
                .map(move |power_idx| (fold_idx, power_idx, train_idx.clone(), val_idx.clone()))
        })
        .collect();

    let train_job = |fold_idx: usize, power_idx: usize, train_idx: &[usize]| -> PnPModel {
        let samples = scenario1_samples(
            ds,
            power_idx,
            train_idx,
            if use_dynamic { Some(false) } else { None },
        );
        let mut model = PnPModel::new(settings.model_config(
            num_classes,
            num_dynamic,
            (fold_idx * 16 + power_idx) as u64,
        ));
        let trainer = Trainer::new(settings.train_config(OptimizerKind::AdamWAmsgrad, false));
        trainer.train(&mut model, &samples);
        model
    };
    // The whole validation fold predicts through one fused block-diagonal
    // forward — bit-identical to the per-region loop (DESIGN.md §15).
    let predict_job =
        |power_idx: usize, train_idx: &[usize], val_idx: &[usize], model: &mut PnPModel| {
            let prior = class_prior_scenario1(ds, power_idx, train_idx);
            let graphs: Vec<&pnp_graph::EncodedGraph> =
                val_idx.iter().map(|&i| &ds.regions[i].graph).collect();
            let dynamic: Option<Vec<Vec<f32>>> = use_dynamic.then(|| {
                val_idx
                    .iter()
                    .map(|&i| ds.dynamic_features(i, power_idx, false))
                    .collect()
            });
            predict_with_prior_batch(model, &graphs, dynamic.as_deref(), &prior)
        };

    let job_predictions = match cache {
        None => parallel_map(
            &jobs,
            settings.train_threads,
            |(fold_idx, power_idx, train_idx, val_idx)| {
                let mut model = train_job(*fold_idx, *power_idx, train_idx);
                predict_job(*power_idx, train_idx, val_idx, &mut model)
            },
        ),
        Some(cache) => replay_or_train(
            cache,
            cache.scenario1_key(settings, use_dynamic),
            "scenario1",
            jobs.iter().map(|(f, p, _, _)| (*f, *p)).collect(),
            settings.train_threads,
            &|j| {
                let (fold_idx, power_idx, train_idx, _) = &jobs[j];
                train_job(*fold_idx, *power_idx, train_idx)
            },
            &|j| {
                let (fold_idx, power_idx, _, _) = &jobs[j];
                PnPModel::new(settings.model_config(
                    num_classes,
                    num_dynamic,
                    (fold_idx * 16 + power_idx) as u64,
                ))
            },
            &|j, model| {
                let (_, power_idx, train_idx, val_idx) = &jobs[j];
                predict_job(*power_idx, train_idx, val_idx, model)
            },
        ),
    };

    for ((_, power_idx, _, val_idx), preds) in jobs.iter().zip(job_predictions) {
        for (&i, class) in val_idx.iter().zip(preds) {
            predictions[i][*power_idx] = class;
        }
    }
    predictions
}

/// Scenario 2 (EDP tuning): trains one model per fold over the joint
/// (power × configuration) class space and returns `predictions[region]` =
/// predicted joint class.
///
/// Folds are independent jobs and fan out over
/// [`TrainSettings::train_threads`] workers with per-fold seeds
/// (`0x2000 + fold_idx`) and indexed write-back — output is bit-identical
/// for every worker count (DESIGN.md §10).
pub fn train_scenario2_model(
    ds: &Dataset,
    settings: &TrainSettings,
    use_dynamic: bool,
) -> Vec<usize> {
    train_scenario2_model_cached(ds, settings, use_dynamic, None)
}

/// [`train_scenario2_model`] with an optional artifact cache: a warm store
/// replays the per-fold checkpoints instead of training (DESIGN.md §12).
pub fn train_scenario2_model_cached(
    ds: &Dataset,
    settings: &TrainSettings,
    use_dynamic: bool,
    cache: Option<&DatasetCache>,
) -> Vec<usize> {
    let apps = ds.applications();
    let folds = FoldPlan::new(&apps, settings.folds);
    let num_classes = ds.space.num_tuned_points();
    let num_dynamic = if use_dynamic { 5 } else { 0 };
    // Counters for the EDP scenario come from the default run at TDP (the
    // highest power level), matching "two profiling executions" in the paper.
    let tdp_idx = ds.space.power_levels.len() - 1;
    let mut predictions = vec![0usize; ds.len()];

    let jobs = fold_region_splits(ds, &folds);

    let train_job = |fold_idx: usize, train_idx: &[usize]| -> PnPModel {
        let samples: Vec<TrainingSample> = train_idx
            .iter()
            .map(|&i| {
                let (p, c) = ds.sweeps[i].best_edp_point();
                TrainingSample {
                    graph: ds.regions[i].graph.clone(),
                    dynamic: use_dynamic.then(|| ds.dynamic_features(i, tdp_idx, false)),
                    label: ds.space.joint_index(p, c),
                    group: ds.regions[i].app.clone(),
                }
            })
            .collect();
        let mut model = PnPModel::new(settings.model_config(
            num_classes,
            num_dynamic,
            0x2000 + fold_idx as u64,
        ));
        // Table II: the EDP experiments use plain Adam.
        let trainer = Trainer::new(settings.train_config(OptimizerKind::Adam, false));
        trainer.train(&mut model, &samples);
        model
    };
    // Fused fold prediction, bit-identical to the per-region loop
    // (DESIGN.md §15).
    let predict_job = |train_idx: &[usize], val_idx: &[usize], model: &mut PnPModel| {
        let prior = class_prior_scenario2(ds, train_idx);
        let graphs: Vec<&pnp_graph::EncodedGraph> =
            val_idx.iter().map(|&i| &ds.regions[i].graph).collect();
        let dynamic: Option<Vec<Vec<f32>>> = use_dynamic.then(|| {
            val_idx
                .iter()
                .map(|&i| ds.dynamic_features(i, tdp_idx, false))
                .collect()
        });
        predict_with_prior_batch(model, &graphs, dynamic.as_deref(), &prior)
    };

    let job_predictions = match cache {
        None => parallel_map(
            &jobs,
            settings.train_threads,
            |(fold_idx, train_idx, val_idx)| {
                let mut model = train_job(*fold_idx, train_idx);
                predict_job(train_idx, val_idx, &mut model)
            },
        ),
        Some(cache) => replay_or_train(
            cache,
            cache.scenario2_key(settings, use_dynamic),
            "scenario2",
            jobs.iter().map(|(f, _, _)| (*f, 0)).collect(),
            settings.train_threads,
            &|j| {
                let (fold_idx, train_idx, _) = &jobs[j];
                train_job(*fold_idx, train_idx)
            },
            &|j| {
                let (fold_idx, _, _) = &jobs[j];
                PnPModel::new(settings.model_config(
                    num_classes,
                    num_dynamic,
                    0x2000 + *fold_idx as u64,
                ))
            },
            &|j, model| {
                let (_, train_idx, val_idx) = &jobs[j];
                predict_job(train_idx, val_idx, model)
            },
        ),
    };

    for ((_, _, val_idx), preds) in jobs.iter().zip(job_predictions) {
        for (&i, class) in val_idx.iter().zip(preds) {
            predictions[i] = class;
        }
    }
    predictions
}

/// Unseen-power-constraint generalization (Figures 4/5): the model never sees
/// measurements at `held_out_power`; it is trained on the other power levels
/// with counters *and the normalized power cap* as dynamic features, then
/// asked to predict configurations for the held-out cap. Cross-validation
/// over applications is applied simultaneously, as in the paper.
///
/// Folds fan out over [`TrainSettings::train_threads`] workers exactly like
/// the scenario pipelines, with the serial per-fold seeds
/// (`0x4000 + fold_idx * 8 + held_out_power`) — output is bit-identical for
/// every worker count.
pub fn train_unseen_power(
    ds: &Dataset,
    settings: &TrainSettings,
    held_out_power: usize,
) -> Vec<usize> {
    train_unseen_power_cached(ds, settings, held_out_power, None)
}

/// [`train_unseen_power`] with an optional artifact cache: a warm store
/// replays the per-fold checkpoints instead of training (DESIGN.md §12).
pub fn train_unseen_power_cached(
    ds: &Dataset,
    settings: &TrainSettings,
    held_out_power: usize,
    cache: Option<&DatasetCache>,
) -> Vec<usize> {
    let apps = ds.applications();
    let folds = FoldPlan::new(&apps, settings.folds);
    let num_classes = ds.space.configs_per_power();
    let train_powers: Vec<usize> = (0..ds.space.power_levels.len())
        .filter(|&p| p != held_out_power)
        .collect();
    let mut predictions = vec![0usize; ds.len()];

    let jobs = fold_region_splits(ds, &folds);

    let train_job = |fold_idx: usize, train_idx: &[usize]| -> PnPModel {
        let mut samples = Vec::new();
        for &i in train_idx {
            for &p in &train_powers {
                samples.push(TrainingSample {
                    graph: ds.regions[i].graph.clone(),
                    dynamic: Some(ds.dynamic_features(i, p, true)),
                    label: ds.sweeps[i].best_time_config(p),
                    group: ds.regions[i].app.clone(),
                });
            }
        }
        let mut model = PnPModel::new(settings.model_config(
            num_classes,
            6,
            0x4000 + (fold_idx * 8 + held_out_power) as u64,
        ));
        let trainer = Trainer::new(settings.train_config(OptimizerKind::AdamWAmsgrad, false));
        trainer.train(&mut model, &samples);
        model
    };
    let predict_job = |train_idx: &[usize], val_idx: &[usize], model: &mut PnPModel| {
        // The prior for the unseen cap is a proximity-weighted average
        // over the caps observed during training (measurements at the
        // held-out cap are, by construction, unavailable). Inverse-
        // distance weights matter: a uniform average biases the prior
        // toward the behaviour of far-away caps — e.g. toward
        // few-thread configurations when TDP is held out — which the
        // `fig4.pnp_beats_default_at_unseen_caps` paper-fidelity
        // invariant caught as a sub-1.0 geomean speedup.
        let held_cap = ds.space.power_levels[held_out_power];
        let scale = ds.machine.tdp_watts.max(1e-9);
        let mut prior = vec![0.0f64; num_classes];
        let mut total_w = 0.0f64;
        for &p in &train_powers {
            let dist = (ds.space.power_levels[p] - held_cap).abs() / scale;
            let w = 1.0 / (dist + 0.05);
            total_w += w;
            for (c, v) in class_prior_scenario1(ds, p, train_idx)
                .into_iter()
                .enumerate()
            {
                prior[c] += w * v;
            }
        }
        for v in &mut prior {
            *v /= total_w.max(1e-9);
        }
        // Fused fold prediction at the held-out cap, bit-identical to the
        // per-region loop (DESIGN.md §15).
        let graphs: Vec<&pnp_graph::EncodedGraph> =
            val_idx.iter().map(|&i| &ds.regions[i].graph).collect();
        let dynamic: Vec<Vec<f32>> = val_idx
            .iter()
            .map(|&i| ds.dynamic_features(i, held_out_power, true))
            .collect();
        predict_with_prior_batch(model, &graphs, Some(&dynamic), &prior)
    };

    let job_predictions = match cache {
        None => parallel_map(
            &jobs,
            settings.train_threads,
            |(fold_idx, train_idx, val_idx)| {
                let mut model = train_job(*fold_idx, train_idx);
                predict_job(train_idx, val_idx, &mut model)
            },
        ),
        Some(cache) => replay_or_train(
            cache,
            cache.unseen_power_key(settings, held_out_power),
            "unseen_power",
            jobs.iter().map(|(f, _, _)| (*f, 0)).collect(),
            settings.train_threads,
            &|j| {
                let (fold_idx, train_idx, _) = &jobs[j];
                train_job(*fold_idx, train_idx)
            },
            &|j| {
                let (fold_idx, _, _) = &jobs[j];
                PnPModel::new(settings.model_config(
                    num_classes,
                    6,
                    0x4000 + (fold_idx * 8 + held_out_power) as u64,
                ))
            },
            &|j, model| {
                let (_, train_idx, val_idx) = &jobs[j];
                predict_job(train_idx, val_idx, model)
            },
        ),
    };

    for ((_, _, val_idx), preds) in jobs.iter().zip(job_predictions) {
        for (&i, class) in val_idx.iter().zip(preds) {
            predictions[i] = class;
        }
    }
    predictions
}

/// Outcome of the transfer-learning experiment (Section IV-B): training the
/// Skylake model from scratch vs. loading the Haswell-trained GNN weights and
/// re-training only the dense layers.
#[derive(Clone, Debug)]
pub struct TransferReport {
    /// Wall-clock seconds to train from scratch.
    pub scratch_seconds: f64,
    /// Wall-clock seconds with frozen, transferred GNN layers.
    pub transfer_seconds: f64,
    /// Training-set accuracy from scratch.
    pub scratch_accuracy: f32,
    /// Training-set accuracy with transfer.
    pub transfer_accuracy: f32,
}

impl TransferReport {
    /// The speed-up of the training process (paper reports ≈ 4.18×, i.e.
    /// ~76 % less training time).
    pub fn training_speedup(&self) -> f64 {
        self.scratch_seconds / self.transfer_seconds.max(1e-9)
    }
}

/// Runs the transfer-learning experiment: trains on the source dataset, saves
/// the GNN weights, then trains a target-machine model (a) from scratch and
/// (b) with the transferred GNN frozen, comparing wall-clock time and
/// accuracy.
pub fn transfer_experiment(
    source: &Dataset,
    target: &Dataset,
    settings: &TrainSettings,
    power_idx: usize,
) -> TransferReport {
    let num_classes = source.space.configs_per_power();
    let all: Vec<usize> = (0..source.len()).collect();
    let source_samples = scenario1_samples(source, power_idx, &all, None);
    let mut source_model = PnPModel::new(settings.model_config(num_classes, 0, 0x7000));
    let trainer = Trainer::new(settings.train_config(OptimizerKind::AdamWAmsgrad, false));
    trainer.train(&mut source_model, &source_samples);
    let bundle: ParameterBundle = source_model.gnn_weights();

    let all_t: Vec<usize> = (0..target.len()).collect();
    let target_samples = scenario1_samples(target, power_idx, &all_t, None);

    // From scratch on the target machine.
    let mut scratch_model = PnPModel::new(settings.model_config(num_classes, 0, 0x7100));
    // pnp-lint: allow(wall-clock) — the transfer experiment's deliverable IS wall-clock training time
    let t0 = Instant::now();
    let scratch_report = trainer.train(&mut scratch_model, &target_samples);
    let scratch_seconds = t0.elapsed().as_secs_f64();

    // Transfer: restore GNN weights, freeze them, and re-train only the
    // dense head — with the *full* epoch budget. The time saving comes from
    // the trainer's frozen-GNN fast path (graph layers run once per sample
    // instead of once per sample per epoch), matching the paper's mechanism:
    // comparable accuracy at ~76 % less training time. (An earlier revision
    // instead cut the epoch budget to a quarter, which faked the speedup and
    // collapsed the transfer accuracy to chance — caught by the
    // `transfer.accuracy` paper-fidelity invariant, DESIGN.md §11.)
    let mut transfer_model = PnPModel::new(settings.model_config(num_classes, 0, 0x7200));
    transfer_model.load_gnn_weights(&bundle);
    let frozen_trainer = Trainer::new(settings.train_config(OptimizerKind::AdamWAmsgrad, true));
    // pnp-lint: allow(wall-clock) — paired timing against the scratch run above
    let t1 = Instant::now();
    let transfer_report = frozen_trainer.train(&mut transfer_model, &target_samples);
    let transfer_seconds = t1.elapsed().as_secs_f64();

    TransferReport {
        scratch_seconds,
        transfer_seconds,
        scratch_accuracy: scratch_report.final_train_accuracy,
        transfer_accuracy: transfer_report.final_train_accuracy,
    }
}

/// Trains one static-feature model on the *whole* source dataset (no folds)
/// for the out-of-distribution experiment: train on every paper region,
/// evaluate on generated kernels the suite has never seen. Seed offsets
/// `0x8000 + power_idx` keep the OOD family's weights disjoint from every
/// other pipeline under the `grid-v1` seed scheme (DESIGN.md §10).
pub(crate) fn train_ood_model(
    ds: &Dataset,
    settings: &TrainSettings,
    power_idx: usize,
) -> PnPModel {
    let num_classes = ds.space.configs_per_power();
    let all: Vec<usize> = (0..ds.len()).collect();
    let samples = scenario1_samples(ds, power_idx, &all, None);
    let mut model = PnPModel::new(settings.model_config(num_classes, 0, 0x8000 + power_idx as u64));
    let trainer = Trainer::new(settings.train_config(OptimizerKind::AdamWAmsgrad, false));
    trainer.train(&mut model, &samples);
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_plan_partitions_applications() {
        let apps: Vec<String> = (0..7).map(|i| format!("app{i}")).collect();
        let plan = FoldPlan::new(&apps, 3);
        assert_eq!(plan.len(), 3);
        let total: usize = plan.held_out.iter().map(|g| g.len()).sum();
        assert_eq!(total, 7);
        // LOOCV degenerate case
        let loocv = FoldPlan::new(&apps, 100);
        assert_eq!(loocv.len(), 7);
        assert!(loocv.held_out.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn fold_plan_for_empty_dataset_is_empty() {
        // No applications means no folds — not one empty fold (which every
        // consumer would then have to special-case as untrainable).
        for folds in [0usize, 1, 5] {
            let plan = FoldPlan::new(&[], folds);
            assert!(plan.is_empty(), "folds={folds}");
            assert_eq!(plan.len(), 0, "folds={folds}");
        }
        // A zero-fold request over a non-empty list still clamps to 1.
        let apps = vec!["a".to_string()];
        assert_eq!(FoldPlan::new(&apps, 0).len(), 1);
    }

    #[test]
    fn risk_adjusted_prior_vetoes_catastrophic_minority_configs() {
        // Two hypothetical configs over four training regions: A is
        // uniformly decent, B is slightly better on average but disastrous
        // for one region. The risk-adjusted score must rank A above B,
        // where a pure geometric mean would rank B above A.
        let a = [0.8, 0.8, 0.8, 0.8];
        let b = [1.0, 1.0, 1.0, 0.5];
        assert!(
            crate::eval::geomean(&b) > crate::eval::geomean(&a),
            "the pure geomean should prefer B, or this test checks nothing"
        );
        assert!(
            risk_adjusted_score(&a) > risk_adjusted_score(&b),
            "A={} B={}",
            risk_adjusted_score(&a),
            risk_adjusted_score(&b)
        );
        // Uniform ratios: the worst case equals the mean, so the adjustment
        // only sharpens the score monotonically (ordering is preserved).
        assert!(risk_adjusted_score(&[1.0; 3]) >= risk_adjusted_score(&[0.9; 3]));
        // Degenerate empty input stays finite (no training regions).
        assert!(risk_adjusted_score(&[]).is_finite());
    }

    #[test]
    fn quick_settings_are_smaller_than_full() {
        let q = TrainSettings::quick();
        let f = TrainSettings::full();
        assert!(q.epochs < f.epochs);
        assert!(q.hidden_dim <= f.hidden_dim);
        assert_eq!(f.rgcn_layers, 4);
        assert_eq!(f.folds, 30);
        assert_eq!(f.batch_size, 16);
    }
}
