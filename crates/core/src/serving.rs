//! The serve path (ISSUE 7): request/response wire types, sweep-derived
//! serving tables, checkpoint restoration for cached [`TrainedGrid`]s, and
//! the committee predictor — everything the `pnp-serve` daemon needs that
//! must live *next to the training pipelines* so served predictions are
//! bit-identical to offline ones (DESIGN.md §14).
//!
//! The split mirrors ARCHITECTURE.md §9: this module is the inference
//! engine (pure, deterministic, no I/O beyond what callers hand it); the
//! `pnp-serve` crate adds the registry-driven startup, the socket protocol,
//! and request batching around it. The offline path calls
//! [`TuneService::tune`]; the daemon calls [`TuneService::tune_batch`],
//! which fuses each objective group into one block-diagonal forward
//! ([`pnp_gnn::GraphBatch`], DESIGN.md §15) and is bit-identical to the
//! single path per request — so the bit-identity guarantee stays
//! structural: both paths share one committee and one prediction builder.

use crate::dataset::Dataset;
use crate::training::{TrainSettings, TrainedGrid};
use pnp_gnn::{BatchError, GraphBatch, PnPModel};
use pnp_graph::{build_region_graph, EdgeFlow, EncodedGraph, Vocabulary};
use pnp_ir::{try_lower_kernel, RegionSource};
use pnp_openmp::OmpConfig;
use pnp_tuners::{ConfigPoint, SearchSpace};
use serde::{Deserialize, Serialize};

/// What one tune request optimizes for.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TuneObjective {
    /// Best execution time at power level `power_idx` of the machine's
    /// search space (scenario 1).
    Time {
        /// Index into `SearchSpace::power_levels`.
        power_idx: usize,
    },
    /// Best energy-delay product over the joint power × configuration space
    /// (scenario 2).
    Edp,
}

/// The kernel a client wants tuned: either DSL source (the server lowers,
/// graphs, and encodes it — the zero-setup path) or a pre-encoded graph
/// (the client already ran the compiler side; the server only validates).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum KernelInput {
    /// Serialized region sources of one application; `region` names which
    /// one to tune.
    Source {
        /// Application name (module name in the lowered IR).
        app: String,
        /// All of the application's regions (helpers may be shared).
        regions: Vec<RegionSource>,
        /// The region to tune.
        region: String,
    },
    /// A pre-encoded code graph (validated against the server vocabulary).
    Graph(EncodedGraph),
}

/// One tune request, as carried by the wire protocol.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TuneRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Machine to tune for (a registry machine name, e.g. `"haswell"`).
    pub machine: String,
    /// Objective.
    pub objective: TuneObjective,
    /// The kernel.
    pub kernel: KernelInput,
    /// Per-request deadline in milliseconds, measured from the moment the
    /// daemon admits the request. `None` (or an absent field, which old
    /// clients send) means no deadline. A request whose deadline passes
    /// while it waits in the dispatcher queue is answered with a typed
    /// rejection instead of a stale prediction — the degradation contract
    /// (DESIGN.md §17).
    pub deadline_ms: Option<u64>,
}

/// A successful prediction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TunePrediction {
    /// Predicted class index (per-power OpenMP class for the time
    /// objective, joint class for EDP).
    pub class: usize,
    /// The concrete configuration point: power cap plus OpenMP config.
    pub point: ConfigPoint,
    /// Expected gain over the default configuration, from the training
    /// sweeps: geomean `default time / predicted time` at the request's
    /// power level (time objective) or geomean EDP improvement over
    /// default-at-TDP (EDP objective). A *population* expectation, not a
    /// per-kernel measurement — serving never executes anything.
    pub expected_gain: f64,
    /// Registry id of the model that produced the prediction.
    pub model: String,
}

/// One tune response. Exactly one of `prediction`/`error` is set; `error`
/// carries a human-readable reason (unknown machine, malformed kernel,
/// out-of-range power index, ...).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TuneResponse {
    /// The request's correlation id.
    pub id: u64,
    /// The prediction, on success.
    pub prediction: Option<TunePrediction>,
    /// The failure reason, otherwise.
    pub error: Option<String>,
}

impl TuneResponse {
    /// A success response.
    pub fn ok(id: u64, prediction: TunePrediction) -> TuneResponse {
        TuneResponse {
            id,
            prediction: Some(prediction),
            error: None,
        }
    }

    /// An error response.
    pub fn err(id: u64, error: impl Into<String>) -> TuneResponse {
        TuneResponse {
            id,
            prediction: None,
            error: Some(error.into()),
        }
    }
}

/// Resolves a [`KernelInput`] to an encoded graph: lowers + graphs + encodes
/// the source form, or validates the pre-encoded form against `vocab`. Both
/// forms of the same kernel yield the same graph (tested below), so clients
/// can switch freely.
pub fn resolve_graph(kernel: &KernelInput, vocab: &Vocabulary) -> Result<EncodedGraph, String> {
    let graph = match kernel {
        KernelInput::Graph(graph) => {
            graph.validate(vocab.len())?;
            graph.clone()
        }
        KernelInput::Source {
            app,
            regions,
            region,
        } => {
            let module =
                try_lower_kernel(app, regions).map_err(|e| format!("lowering failed: {e:?}"))?;
            let graph = build_region_graph(&module, region)
                .ok_or_else(|| format!("region {region:?} not found in application {app:?}"))?;
            EncodedGraph::encode(&graph, vocab)
        }
    };
    // The model cannot pool an empty node set and its RGCN layers expect
    // exactly the standard relation arity; a pre-encoded graph violating
    // either must come back as an error, never a panic (the daemon feeds
    // this from client input).
    if graph.num_nodes() == 0 {
        return Err(format!("{}: kernel graph has no nodes", graph.name));
    }
    if graph.relations.len() != EdgeFlow::COUNT {
        return Err(format!(
            "{}: expected {} edge relations, got {}",
            graph.name,
            EdgeFlow::COUNT,
            graph.relations.len()
        ));
    }
    Ok(graph)
}

/// Sweep-derived tables computed once at startup: the all-regions class
/// priors (the deployment-path blend, exactly as [`crate::PnPTuner`] uses)
/// and the expected-gain tables reported alongside predictions.
#[derive(Clone, Debug)]
pub struct ServingTables {
    /// `time_priors[p][c]`: scenario-1 prior of OpenMP class `c` at power
    /// level `p`, computed over every region.
    pub time_priors: Vec<Vec<f64>>,
    /// Scenario-2 prior per joint class, computed over every region.
    pub edp_prior: Vec<f64>,
    /// `expected_speedup[p][c]`: geomean over regions of
    /// `default time / time(c)` at power level `p`.
    pub expected_speedup: Vec<Vec<f64>>,
    /// Expected EDP improvement over default-at-TDP per joint class.
    pub expected_edp_gain: Vec<f64>,
}

/// Computes the serving tables from a dataset's sweeps.
pub fn serving_tables(ds: &Dataset) -> ServingTables {
    let all_idx: Vec<usize> = (0..ds.len()).collect();
    let num_powers = ds.space.power_levels.len();
    let per = ds.space.configs_per_power();
    let tdp_idx = num_powers - 1;

    let time_priors: Vec<Vec<f64>> = (0..num_powers)
        .map(|p| crate::training::class_prior_scenario1(ds, p, &all_idx))
        .collect();
    let edp_prior = crate::training::class_prior_scenario2(ds, &all_idx);

    let expected_speedup: Vec<Vec<f64>> = (0..num_powers)
        .map(|p| {
            (0..per)
                .map(|c| {
                    let ratios: Vec<f64> = ds
                        .sweeps
                        .iter()
                        .map(|s| s.default_samples[p].time_s / s.samples[p][c].time_s)
                        .collect();
                    crate::eval::geomean(&ratios)
                })
                .collect()
        })
        .collect();
    let expected_edp_gain: Vec<f64> = (0..ds.space.num_tuned_points())
        .map(|class| {
            let (p, c) = (class / per, class % per);
            let ratios: Vec<f64> = ds
                .sweeps
                .iter()
                .map(|s| s.default_samples[tdp_idx].edp() / s.samples[p][c].edp())
                .collect();
            crate::eval::geomean(&ratios)
        })
        .collect();

    ServingTables {
        time_priors,
        edp_prior,
        expected_speedup,
        expected_edp_gain,
    }
}

/// Which cached training grid a checkpoint set belongs to — determines the
/// per-job model shape and the `grid-v1` seed offsets (DESIGN.md §10), so a
/// checkpoint can be restored into an identically seeded model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GridPipeline {
    /// `models/scenario1`: one model per `(fold, power)`.
    Scenario1 {
        /// Counter-features variant.
        dynamic: bool,
    },
    /// `models/scenario2`: one model per fold over the joint class space.
    Scenario2 {
        /// Counter-features variant.
        dynamic: bool,
    },
    /// `models/unseen_power`: one model per fold, trained without one cap.
    UnseenPower {
        /// The held-out power index.
        held_out_power: usize,
    },
}

impl GridPipeline {
    fn num_classes(&self, ds: &Dataset) -> usize {
        match self {
            GridPipeline::Scenario2 { .. } => ds.space.num_tuned_points(),
            _ => ds.space.configs_per_power(),
        }
    }

    fn num_dynamic(&self) -> usize {
        match self {
            GridPipeline::Scenario1 { dynamic } | GridPipeline::Scenario2 { dynamic } => {
                if *dynamic {
                    5
                } else {
                    0
                }
            }
            GridPipeline::UnseenPower { .. } => 6,
        }
    }

    fn seed_offset(&self, fold_idx: usize, power_idx: usize) -> u64 {
        match self {
            GridPipeline::Scenario1 { .. } => (fold_idx * 16 + power_idx) as u64,
            GridPipeline::Scenario2 { .. } => 0x2000 + fold_idx as u64,
            GridPipeline::UnseenPower { held_out_power } => {
                0x4000 + (fold_idx * 8 + held_out_power) as u64
            }
        }
    }
}

/// A restored grid: `(grid coordinates, model)` per job, in grid order.
pub type RestoredGrid = Vec<((usize, usize), PnPModel)>;

/// Restores every checkpoint of a cached grid into a freshly seeded model of
/// the pipeline's shape, returning `(grid coordinates, model)` per job in
/// grid order. Errors (rather than silently misapplying weights) when a
/// checkpoint does not fit — wrong tensor count, names, or shapes, the
/// "unfit checkpoint" failure mode SERVING.md documents: the caller skips
/// that grid and keeps serving from the ones that load.
pub fn restore_grid(
    ds: &Dataset,
    settings: &TrainSettings,
    pipeline: GridPipeline,
    grid: &TrainedGrid,
) -> Result<RestoredGrid, String> {
    if grid.jobs.len() != grid.weights.len() {
        return Err(format!(
            "grid has {} job coordinates but {} checkpoints",
            grid.jobs.len(),
            grid.weights.len()
        ));
    }
    let num_classes = pipeline.num_classes(ds);
    let num_dynamic = pipeline.num_dynamic();
    let mut models = Vec::with_capacity(grid.jobs.len());
    for (&(fold_idx, power_idx), checkpoint) in grid.jobs.iter().zip(&grid.weights) {
        let mut model = PnPModel::new(settings.model_config(
            num_classes,
            num_dynamic,
            pipeline.seed_offset(fold_idx, power_idx),
        ));
        let restored = model.load_all_weights(checkpoint);
        if restored != model.num_parameters() || checkpoint.len() != restored {
            return Err(format!(
                "checkpoint for job (fold {fold_idx}, power {power_idx}) does not fit: \
                 {restored}/{} tensors restored, {} stored",
                model.num_parameters(),
                checkpoint.len()
            ));
        }
        models.push(((fold_idx, power_idx), model));
    }
    Ok(models)
}

/// Committee prediction: the mean of `predict_proba` over the fold models
/// (f64 accumulation in model order — deterministic), blended with the
/// class prior by `ln p + ln prior` argmax exactly like the offline
/// pipelines' `predict_with_prior`.
pub fn committee_predict(models: &mut [PnPModel], graph: &EncodedGraph, prior: &[f64]) -> usize {
    let mut sum = vec![0.0f64; prior.len()];
    for model in models.iter_mut() {
        let probs = model.predict_proba(graph, None);
        for (s, &p) in sum.iter_mut().zip(&probs) {
            *s += p as f64;
        }
    }
    let n = models.len().max(1) as f64;
    blend_with_prior(&sum, n, prior)
}

/// The committee's prior-blend argmax: `ln(mean proba) + ln(prior)` with
/// strict `>` comparison. One function shared by the single and batched
/// committees so their tie-breaking cannot drift apart.
fn blend_with_prior(sum: &[f64], n: f64, prior: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (c, (&s, &q)) in sum.iter().zip(prior).enumerate() {
        let score = (s / n).max(1e-9).ln() + q.max(1e-9).ln();
        if score > best_score {
            best_score = score;
            best = c;
        }
    }
    best
}

/// Batched committee prediction: one class per graph, each bit-identical to
/// [`committee_predict`] on that graph alone (DESIGN.md §15).
///
/// The whole batch runs through every fold model's fused
/// [`PnPModel::predict_proba_batch`] forward — one tall matmul per relation
/// per layer instead of one small matmul per graph per model. Per graph the
/// f64 probability accumulation still happens in model order and the
/// prior-blend argmax is byte-for-byte the single-graph loop, so batching
/// changes the schedule, never the prediction.
pub fn committee_predict_batch(
    models: &mut [PnPModel],
    graphs: &[&EncodedGraph],
    prior: &[f64],
) -> Result<Vec<usize>, BatchError> {
    let batch = GraphBatch::from_graphs(graphs)?;
    let mut sums = vec![vec![0.0f64; prior.len()]; graphs.len()];
    for model in models.iter_mut() {
        let probs = model.predict_proba_batch(&batch, None);
        for (sum, row) in sums.iter_mut().zip(&probs) {
            for (s, &p) in sum.iter_mut().zip(row) {
                *s += p as f64;
            }
        }
    }
    let n = models.len().max(1) as f64;
    Ok(sums
        .iter()
        .map(|sum| blend_with_prior(sum, n, prior))
        .collect())
}

/// One machine's ready-to-serve inference state: the static scenario-1 and
/// scenario-2 fold committees restored from their cached grids, the serving
/// tables, and the search space. This is the *single* prediction path —
/// the daemon wraps it in replicas and a socket; the bit-identity tests
/// call it directly.
pub struct TuneService {
    machine: String,
    space: SearchSpace,
    vocab: Vocabulary,
    tables: ServingTables,
    omp_configs: Vec<OmpConfig>,
    /// `time[p]` = scenario-1 fold committee for power level `p`.
    time: Vec<Vec<PnPModel>>,
    /// Scenario-2 fold committee over the joint class space.
    edp: Vec<PnPModel>,
    time_model_id: String,
    edp_model_id: String,
}

impl TuneService {
    /// Restores a service from the two static grids of one machine's
    /// dataset. `time_model_id`/`edp_model_id` are the registry ids echoed
    /// in predictions.
    pub fn restore(
        ds: &Dataset,
        settings: &TrainSettings,
        scenario1: &TrainedGrid,
        scenario2: &TrainedGrid,
        time_model_id: impl Into<String>,
        edp_model_id: impl Into<String>,
    ) -> Result<TuneService, String> {
        let num_powers = ds.space.power_levels.len();
        let mut time: Vec<Vec<PnPModel>> = (0..num_powers).map(|_| Vec::new()).collect();
        for ((_, power_idx), model) in restore_grid(
            ds,
            settings,
            GridPipeline::Scenario1 { dynamic: false },
            scenario1,
        )? {
            time.get_mut(power_idx)
                .ok_or_else(|| format!("scenario1 job has power index {power_idx} out of range"))?
                .push(model);
        }
        for (p, committee) in time.iter().enumerate() {
            if committee.is_empty() {
                return Err(format!("scenario1 grid has no model for power level {p}"));
            }
        }
        let edp: Vec<PnPModel> = restore_grid(
            ds,
            settings,
            GridPipeline::Scenario2 { dynamic: false },
            scenario2,
        )?
        .into_iter()
        .map(|(_, m)| m)
        .collect();
        if edp.is_empty() {
            return Err("scenario2 grid holds no models".into());
        }
        Ok(TuneService {
            machine: ds.machine.name.clone(),
            omp_configs: ds.space.omp_configs(),
            space: ds.space.clone(),
            vocab: Vocabulary::standard(),
            tables: serving_tables(ds),
            time,
            edp,
            time_model_id: time_model_id.into(),
            edp_model_id: edp_model_id.into(),
        })
    }

    /// The machine this service predicts for.
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// The machine's power levels (watts), lowest cap first.
    pub fn power_levels(&self) -> &[f64] {
        &self.space.power_levels
    }

    /// Number of fold models per committee, `(scenario1 per power,
    /// scenario2)` — what `describe` reports.
    pub fn committee_sizes(&self) -> (usize, usize) {
        (self.time.first().map_or(0, Vec::len), self.edp.len())
    }

    /// Packages a scenario-1 class prediction for `power_idx` — one
    /// construction path for the single and batched tuners.
    fn time_prediction(&self, power_idx: usize, class: usize) -> TunePrediction {
        TunePrediction {
            class,
            point: ConfigPoint {
                power_watts: self.space.power_levels[power_idx],
                omp: self.omp_configs[class],
            },
            expected_gain: self.tables.expected_speedup[power_idx][class],
            model: self.time_model_id.clone(),
        }
    }

    /// Packages a scenario-2 joint-class prediction.
    fn edp_prediction(&self, class: usize) -> TunePrediction {
        TunePrediction {
            class,
            point: self.space.decode_joint(class),
            expected_gain: self.tables.expected_edp_gain[class],
            model: self.edp_model_id.clone(),
        }
    }

    fn check_power_idx(&self, power_idx: usize) -> Result<(), String> {
        if power_idx >= self.space.power_levels.len() {
            return Err(format!(
                "power_idx {power_idx} out of range ({} levels)",
                self.space.power_levels.len()
            ));
        }
        Ok(())
    }

    /// Predicts for an already-encoded graph.
    pub fn tune_graph(
        &mut self,
        graph: &EncodedGraph,
        objective: TuneObjective,
    ) -> Result<TunePrediction, String> {
        match objective {
            TuneObjective::Time { power_idx } => {
                self.check_power_idx(power_idx)?;
                let class = committee_predict(
                    &mut self.time[power_idx],
                    graph,
                    &self.tables.time_priors[power_idx],
                );
                Ok(self.time_prediction(power_idx, class))
            }
            TuneObjective::Edp => {
                let class = committee_predict(&mut self.edp, graph, &self.tables.edp_prior);
                Ok(self.edp_prediction(class))
            }
        }
    }

    /// The full serve path for one request body: resolve the kernel to a
    /// graph, then predict.
    pub fn tune(
        &mut self,
        kernel: &KernelInput,
        objective: TuneObjective,
    ) -> Result<TunePrediction, String> {
        let graph = resolve_graph(kernel, &self.vocab)?;
        self.tune_graph(&graph, objective)
    }

    /// The fused serve path for a batch of request bodies: every kernel is
    /// resolved, the valid requests are grouped by objective (time requests
    /// share a committee per power level, EDP requests share one), and each
    /// group runs through [`committee_predict_batch`] as a single
    /// block-diagonal forward per fold model.
    ///
    /// Results come back in request order and each is bit-identical to
    /// [`TuneService::tune`] on that request alone (DESIGN.md §15).
    /// Per-request failures — malformed kernels, out-of-range power
    /// indices — fill their own slot without failing the rest of the batch.
    pub fn tune_batch(
        &mut self,
        requests: &[(&KernelInput, TuneObjective)],
    ) -> Vec<Result<TunePrediction, String>> {
        let mut slots: Vec<Option<Result<TunePrediction, String>>> =
            (0..requests.len()).map(|_| None).collect();

        // Resolve every kernel up front; failures settle their slot now.
        // Objective key: (0, power_idx) for time, (1, 0) for EDP.
        let mut graphs: Vec<Option<EncodedGraph>> = Vec::with_capacity(requests.len());
        let mut groups: std::collections::BTreeMap<(usize, usize), Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, (kernel, objective)) in requests.iter().enumerate() {
            let key = match objective {
                TuneObjective::Time { power_idx } => {
                    if let Err(why) = self.check_power_idx(*power_idx) {
                        slots[i] = Some(Err(why));
                        graphs.push(None);
                        continue;
                    }
                    (0, *power_idx)
                }
                TuneObjective::Edp => (1, 0),
            };
            match resolve_graph(kernel, &self.vocab) {
                Ok(graph) => {
                    graphs.push(Some(graph));
                    groups.entry(key).or_default().push(i);
                }
                Err(why) => {
                    slots[i] = Some(Err(why));
                    graphs.push(None);
                }
            }
        }

        for ((objective_kind, power_idx), indices) in groups {
            // Grouped requests all resolved a graph; pairing index and graph
            // through one filter keeps them aligned without a panic path.
            let (indices, group): (Vec<usize>, Vec<&EncodedGraph>) = indices
                .iter()
                .filter_map(|&i| graphs.get(i).and_then(|g| g.as_ref()).map(|g| (i, g)))
                .unzip();
            let classes = if objective_kind == 0 {
                committee_predict_batch(
                    &mut self.time[power_idx],
                    &group,
                    &self.tables.time_priors[power_idx],
                )
            } else {
                committee_predict_batch(&mut self.edp, &group, &self.tables.edp_prior)
            };
            match classes {
                Ok(classes) => {
                    for (&i, class) in indices.iter().zip(classes) {
                        slots[i] = Some(Ok(if objective_kind == 0 {
                            self.time_prediction(power_idx, class)
                        } else {
                            self.edp_prediction(class)
                        }));
                    }
                }
                // Unreachable for graphs that passed `resolve_graph`, but a
                // batch-assembly failure must degrade to per-slot errors,
                // never a panic.
                Err(why) => {
                    for &i in &indices {
                        slots[i] = Some(Err(format!("batch assembly failed: {why}")));
                    }
                }
            }
        }

        // Every slot is settled above; if one ever were not, a typed error
        // beats a daemon-killing panic.
        slots
            .into_iter()
            .map(|slot| slot.unwrap_or_else(|| Err("internal: request slot left unsettled".into())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ArtifactStore;
    use crate::training::{train_scenario1_models_cached, train_scenario2_model_cached};
    use pnp_benchmarks::builders::{matmul_kernel, small_boundary_kernel, streaming_kernel};
    use pnp_benchmarks::Application;
    use pnp_machine::haswell;
    use pnp_openmp::Threads;

    fn tiny_apps() -> Vec<Application> {
        vec![
            Application::new("a1", vec![matmul_kernel("a1_r0", 120, 120, 120)]),
            Application::new("a2", vec![streaming_kernel("a2_r0", 80_000, 2, 1.0)]),
            Application::new("a3", vec![small_boundary_kernel("a3_r0", 700, 2)]),
        ]
    }

    fn tiny_settings() -> TrainSettings {
        TrainSettings {
            epochs: 4,
            hidden_dim: 8,
            rgcn_layers: 1,
            fc_hidden: 16,
            folds: 3,
            train_threads: Threads::Fixed(1),
            ..TrainSettings::quick()
        }
    }

    /// Builds a tiny dataset, trains both static grids through the cached
    /// pipelines into a temp store, and returns everything a service needs.
    fn trained_fixture(
        tag: &str,
    ) -> (
        Dataset,
        TrainSettings,
        TrainedGrid,
        TrainedGrid,
        ArtifactStore,
    ) {
        let dir =
            std::env::temp_dir().join(format!("pnp_serving_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir);
        let ds = Dataset::build_with_threads(
            &haswell(),
            &tiny_apps(),
            &Vocabulary::standard(),
            Threads::Fixed(1),
        );
        let settings = tiny_settings();
        let cache = store.for_dataset(&ds);
        train_scenario1_models_cached(&ds, &settings, false, Some(&cache));
        train_scenario2_model_cached(&ds, &settings, false, Some(&cache));
        let s1: TrainedGrid = cache
            .store()
            .load(&cache.scenario1_key(&settings, false))
            .expect("scenario1 grid cached");
        let s2: TrainedGrid = cache
            .store()
            .load(&cache.scenario2_key(&settings, false))
            .expect("scenario2 grid cached");
        (ds, settings, s1, s2, store)
    }

    #[test]
    fn serving_tables_are_shaped_and_positive() {
        let ds = Dataset::build_with_threads(
            &haswell(),
            &tiny_apps(),
            &Vocabulary::standard(),
            Threads::Fixed(1),
        );
        let tables = serving_tables(&ds);
        let num_powers = ds.space.power_levels.len();
        assert_eq!(tables.time_priors.len(), num_powers);
        assert_eq!(tables.expected_speedup.len(), num_powers);
        assert_eq!(tables.edp_prior.len(), ds.space.num_tuned_points());
        assert_eq!(tables.expected_edp_gain.len(), ds.space.num_tuned_points());
        for row in tables.time_priors.iter().chain(&tables.expected_speedup) {
            assert_eq!(row.len(), ds.space.configs_per_power());
            assert!(row.iter().all(|v| v.is_finite() && *v > 0.0));
        }
        assert!(tables.edp_prior.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn restored_service_predicts_deterministically_and_in_range() {
        let (ds, settings, s1, s2, store) = trained_fixture("restore");
        let mut service =
            TuneService::restore(&ds, &settings, &s1, &s2, "time-model", "edp-model").unwrap();
        assert_eq!(service.machine(), "haswell");
        let graph = &ds.regions[0].graph;
        for p in 0..ds.space.power_levels.len() {
            let a = service
                .tune_graph(graph, TuneObjective::Time { power_idx: p })
                .unwrap();
            let b = service
                .tune_graph(graph, TuneObjective::Time { power_idx: p })
                .unwrap();
            assert_eq!(a, b, "prediction must be deterministic");
            assert!(a.class < ds.space.configs_per_power());
            assert_eq!(a.point.power_watts, ds.space.power_levels[p]);
            assert_eq!(a.model, "time-model");
            assert!(a.expected_gain.is_finite() && a.expected_gain > 0.0);
        }
        let e = service.tune_graph(graph, TuneObjective::Edp).unwrap();
        assert!(e.class < ds.space.num_tuned_points());
        assert!(ds.space.power_levels.contains(&e.point.power_watts));
        assert_eq!(e.model, "edp-model");
        // Out-of-range power index is an error, not a panic.
        assert!(service
            .tune_graph(graph, TuneObjective::Time { power_idx: 99 })
            .is_err());
        std::fs::remove_dir_all(store.store().root()).ok();
    }

    #[test]
    fn source_and_graph_inputs_agree() {
        let (ds, settings, s1, s2, store) = trained_fixture("source");
        let mut service =
            TuneService::restore(&ds, &settings, &s1, &s2, "time-model", "edp-model").unwrap();
        let apps = tiny_apps();
        let source = KernelInput::Source {
            app: apps[0].name.clone(),
            regions: apps[0].regions.iter().map(|r| r.source.clone()).collect(),
            region: "a1_r0".into(),
        };
        let graph = KernelInput::Graph(ds.regions[0].graph.clone());
        let objective = TuneObjective::Time { power_idx: 0 };
        assert_eq!(
            service.tune(&source, objective).unwrap(),
            service.tune(&graph, objective).unwrap(),
            "the source path must resolve to the same graph the dataset encoded"
        );
        // Unknown regions and invalid graphs are errors, not panics.
        let missing = KernelInput::Source {
            app: "a1".into(),
            regions: apps[0].regions.iter().map(|r| r.source.clone()).collect(),
            region: "nope".into(),
        };
        assert!(service.tune(&missing, objective).is_err());
        let mut bad = ds.regions[0].graph.clone();
        bad.tokens.push(usize::MAX);
        assert!(service.tune(&KernelInput::Graph(bad), objective).is_err());
        std::fs::remove_dir_all(store.store().root()).ok();
    }

    #[test]
    fn unfit_checkpoints_are_rejected_not_misapplied() {
        let (ds, settings, s1, _s2, store) = trained_fixture("unfit");
        // Empty bundle: wrong tensor count.
        let mut broken = s1.clone();
        broken.weights[0] = pnp_tensor::ParameterBundle::default();
        assert!(restore_grid(
            &ds,
            &settings,
            GridPipeline::Scenario1 { dynamic: false },
            &broken
        )
        .is_err());
        // Mismatched jobs/weights lengths.
        let mut truncated = s1.clone();
        truncated.weights.pop();
        assert!(restore_grid(
            &ds,
            &settings,
            GridPipeline::Scenario1 { dynamic: false },
            &truncated
        )
        .is_err());
        // A wider model shape (different hyperparameters) cannot absorb the
        // same checkpoints.
        let mut wider = settings.clone();
        wider.hidden_dim *= 2;
        assert!(
            restore_grid(&ds, &wider, GridPipeline::Scenario1 { dynamic: false }, &s1).is_err()
        );
        std::fs::remove_dir_all(store.store().root()).ok();
    }

    #[test]
    fn batched_committee_matches_single_committee_exactly() {
        let (ds, settings, s1, s2, store) = trained_fixture("committee_batch");
        let mut service =
            TuneService::restore(&ds, &settings, &s1, &s2, "time-model", "edp-model").unwrap();
        let graphs: Vec<&EncodedGraph> = ds.regions.iter().map(|r| &r.graph).collect();
        for p in 0..ds.space.power_levels.len() {
            let prior = service.tables.time_priors[p].clone();
            let batched = committee_predict_batch(&mut service.time[p], &graphs, &prior).unwrap();
            let single: Vec<usize> = graphs
                .iter()
                .map(|g| committee_predict(&mut service.time[p], g, &prior))
                .collect();
            assert_eq!(batched, single, "power level {p}");
        }
        let prior = service.tables.edp_prior.clone();
        let batched = committee_predict_batch(&mut service.edp, &graphs, &prior).unwrap();
        let single: Vec<usize> = graphs
            .iter()
            .map(|g| committee_predict(&mut service.edp, g, &prior))
            .collect();
        assert_eq!(batched, single);
        std::fs::remove_dir_all(store.store().root()).ok();
    }

    #[test]
    fn tune_batch_is_bit_identical_to_tune_and_isolates_failures() {
        let (ds, settings, s1, s2, store) = trained_fixture("tune_batch");
        let mut service =
            TuneService::restore(&ds, &settings, &s1, &s2, "time-model", "edp-model").unwrap();
        let num_powers = ds.space.power_levels.len();

        // A mixed batch: every region under every objective, interleaved
        // with malformed requests that must fail in place.
        let kernels: Vec<KernelInput> = ds
            .regions
            .iter()
            .map(|r| KernelInput::Graph(r.graph.clone()))
            .collect();
        let mut bad = ds.regions[0].graph.clone();
        bad.tokens.push(usize::MAX);
        let bad = KernelInput::Graph(bad);
        let hollow = KernelInput::Graph(EncodedGraph {
            name: "hollow".into(),
            tokens: vec![],
            kinds: vec![],
            relations: vec![vec![], vec![], vec![]],
        });

        let mut requests: Vec<(&KernelInput, TuneObjective)> = Vec::new();
        for (i, kernel) in kernels.iter().enumerate() {
            requests.push((
                kernel,
                TuneObjective::Time {
                    power_idx: i % num_powers,
                },
            ));
            requests.push((kernel, TuneObjective::Edp));
        }
        requests.push((&bad, TuneObjective::Edp));
        requests.push((&hollow, TuneObjective::Edp));
        requests.push((&kernels[0], TuneObjective::Time { power_idx: 99 }));

        let batched = service.tune_batch(&requests);
        assert_eq!(batched.len(), requests.len());
        for ((kernel, objective), result) in requests.iter().zip(&batched) {
            let single = service.tune(kernel, *objective);
            match (result, &single) {
                (Ok(b), Ok(s)) => {
                    assert_eq!(b, s);
                    assert_eq!(
                        b.expected_gain.to_bits(),
                        s.expected_gain.to_bits(),
                        "expected_gain must match to the bit"
                    );
                }
                (Err(b), Err(s)) => assert_eq!(b, s),
                (b, s) => panic!("batched {b:?} disagrees with single {s:?}"),
            }
        }
        // The malformed tail really did error.
        assert!(batched[batched.len() - 3].is_err(), "invalid token");
        assert!(batched[batched.len() - 2].is_err(), "empty graph");
        assert!(batched[batched.len() - 1].is_err(), "bad power index");
        std::fs::remove_dir_all(store.store().root()).ok();
    }

    #[test]
    fn empty_and_misshapen_kernels_are_errors_on_the_single_path_too() {
        let vocab = Vocabulary::standard();
        let hollow = KernelInput::Graph(EncodedGraph {
            name: "hollow".into(),
            tokens: vec![],
            kinds: vec![],
            relations: vec![vec![], vec![], vec![]],
        });
        assert!(resolve_graph(&hollow, &vocab)
            .unwrap_err()
            .contains("no nodes"));
        let two_rel = KernelInput::Graph(EncodedGraph {
            name: "two-rel".into(),
            tokens: vec![0],
            kinds: vec![0],
            relations: vec![vec![], vec![]],
        });
        assert!(resolve_graph(&two_rel, &vocab)
            .unwrap_err()
            .contains("edge relations"));
    }

    #[test]
    fn wire_types_round_trip_through_json() {
        let request = TuneRequest {
            id: 7,
            machine: "haswell".into(),
            objective: TuneObjective::Time { power_idx: 2 },
            kernel: KernelInput::Graph(EncodedGraph {
                name: "k".into(),
                tokens: vec![1, 2],
                kinds: vec![0, 1],
                relations: vec![vec![(0, 1)], vec![], vec![]],
            }),
            deadline_ms: Some(250),
        };
        let json = serde_json::to_string(&request).unwrap();
        let back: TuneRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(back.objective, request.objective);
        assert_eq!(back.deadline_ms, Some(250));
        // A frame from a client predating deadlines has no `deadline_ms`
        // field at all; it must parse as "no deadline", not an error.
        let legacy = json.replace(",\"deadline_ms\":250", "");
        assert_ne!(legacy, json, "the field was present to remove");
        let back: TuneRequest = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.deadline_ms, None);
        let response = TuneResponse::err(7, "unknown machine \"riscv\"");
        let json = serde_json::to_string(&response).unwrap();
        let back: TuneResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, 7);
        assert!(back.prediction.is_none());
        assert_eq!(back.error.as_deref(), Some("unknown machine \"riscv\""));
    }
}
