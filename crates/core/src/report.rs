//! Plain-text table rendering and JSON export of experiment results.

use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned text table, used by every experiment binary to
/// print the rows/series the paper's figures plot.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of label + numeric cells with 3 decimals.
    pub fn row_numeric(&mut self, label: &str, values: &[f64]) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Writes any serializable experiment result as JSON under
/// `target/experiments/<name>.json` (creating the directory if needed) and
/// returns the path written to.
///
/// Serialization failures surface as `io::Error` (kind `InvalidData`) rather
/// than panicking — experiment binaries treat a missing JSON copy as a
/// warning, not a crash.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("target").join("experiments");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(&["app", "speedup", "greenup"]);
        t.row_numeric("gemm", &[1.25, 1.4]);
        t.row_numeric("a-very-long-application-name", &[0.951, 1.0]);
        let text = t.render();
        assert!(text.contains("gemm"));
        assert!(text.contains("1.250"));
        assert_eq!(t.num_rows(), 2);
        // every line has the same column structure (two trailing spaces per col)
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn json_export_writes_a_file() {
        #[derive(Serialize)]
        struct Dummy {
            x: f64,
        }
        let path = write_json("unit_test_dummy", &Dummy { x: 1.5 }).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("1.5"));
        std::fs::remove_file(path).ok();
    }
}
