//! Serde round-trip property tests for the dataset types (ISSUE 6
//! satellite): `Dataset` / `Sweep` / `RegionRecord` must survive
//! JSON serialization byte-identically — including the `usize::MAX`
//! "unlimited" sentinel in `RegionProfile::scalability_limit`, which the
//! vendored serde silently wrapped through `i64` before PR 5 fixed it.
//!
//! The artifact store persists these exact types (DESIGN.md §12's
//! bit-identity contract hashes their serialized form), so any lossy field
//! would corrupt cache keys and cached datasets alike.

use proptest::prelude::*;

use pnp_core::{Dataset, RegionRecord, Sweep};
use pnp_graph::Vocabulary;
use pnp_openmp::Threads;

/// One small real dataset (two generated single-region apps) as the
/// structural template the properties mutate. Built once: the sweep is
/// deterministic, and the tests only care about serialization.
fn base_dataset() -> Dataset {
    let apps = pnp_benchmarks::synthetic_suite(0xA5, 2);
    Dataset::build_with_threads(
        &pnp_machine::haswell(),
        &apps,
        &Vocabulary::standard(),
        Threads::Fixed(1),
    )
}

fn roundtrip_json<T: serde::Serialize + serde::Deserialize>(value: &T) -> (String, T) {
    let json = serde_json::to_string(value).expect("serializes");
    let back: T = serde_json::from_str(&json).expect("deserializes");
    (json, back)
}

/// `scalability_limit` values including every boundary that has bitten:
/// 0/1 (degenerate), a mid value, `i64::MAX as usize + 1` (the first value
/// the old i64 path wrapped negative), and the `usize::MAX` sentinel.
fn arb_scalability_limit() -> impl Strategy<Value = usize> {
    (0usize..5).prop_map(|i| match i {
        0 => 0,
        1 => 1,
        2 => 48,
        3 => i64::MAX as usize + 1,
        _ => usize::MAX,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn region_record_roundtrips_with_any_scalability_limit(
        limit in arb_scalability_limit(),
        iterations in 1usize..1_000_000,
    ) {
        let ds = base_dataset();
        let mut record: RegionRecord = ds.regions[0].clone();
        record.profile.scalability_limit = limit;
        record.profile.iterations = iterations;
        let (json, back) = roundtrip_json(&record);
        prop_assert_eq!(back.profile.scalability_limit, limit);
        prop_assert_eq!(back.profile.iterations, iterations);
        // Byte-identical re-serialization: the store's content hash of a
        // loaded record must equal the hash of the stored one.
        prop_assert_eq!(serde_json::to_string(&back).expect("re-serializes"), json);
    }

    #[test]
    fn sweep_roundtrips_bit_identically(
        time_s in 1e-6f64..1e3,
        energy_j in 1e-6f64..1e6,
    ) {
        let ds = base_dataset();
        let mut sweep: Sweep = ds.sweeps[0].clone();
        // Plant generated floats at both sample surfaces; Rust's shortest
        // round-trip float formatting must bring them back exactly.
        sweep.samples[0][0].time_s = time_s;
        sweep.samples[0][0].energy_j = energy_j;
        sweep.default_samples[0].time_s = time_s / 2.0;
        let (json, back) = roundtrip_json(&sweep);
        prop_assert_eq!(back.samples[0][0].time_s, time_s);
        prop_assert_eq!(back.samples[0][0].energy_j, energy_j);
        prop_assert_eq!(back.default_samples[0].time_s, time_s / 2.0);
        prop_assert_eq!(serde_json::to_string(&back).expect("re-serializes"), json);
    }

    #[test]
    fn dataset_roundtrips_bit_identically(limit in arb_scalability_limit()) {
        let mut ds = base_dataset();
        ds.regions[1].profile.scalability_limit = limit;
        let (json, back) = roundtrip_json(&ds);
        prop_assert_eq!(back.regions[1].profile.scalability_limit, limit);
        prop_assert_eq!(back.regions.len(), ds.regions.len());
        prop_assert_eq!(back.sweeps.len(), ds.sweeps.len());
        prop_assert_eq!(serde_json::to_string(&back).expect("re-serializes"), json);
    }
}

/// The PR 5 regression, pinned explicitly: the `usize::MAX` sentinel must
/// never wrap negative in the JSON (the original bug serialized it through
/// `as i64` as `-1`) and must deserialize back to exactly `usize::MAX`. The
/// vendored serde's documented wire form for values beyond `i64::MAX` is a
/// float whose saturating cast restores the sentinel losslessly.
#[test]
fn usize_max_sentinel_survives_json() {
    let ds = base_dataset();
    let mut record = ds.regions[0].clone();
    record.profile.scalability_limit = usize::MAX;
    let json = serde_json::to_string(&record).expect("serializes");
    assert!(
        !json.contains("\"scalability_limit\":-"),
        "sentinel must not wrap negative"
    );
    let back: RegionRecord = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.profile.scalability_limit, usize::MAX);
    // And the restored record re-serializes byte-identically (store hashes).
    assert_eq!(serde_json::to_string(&back).expect("re-serializes"), json);
}
