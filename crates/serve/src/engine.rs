//! The serving engine: registry-driven startup and batched inference.
//!
//! At startup the engine walks the [`ModelRegistry`], loads every machine's
//! dataset once, restores **every** model grid in the store (fit-checking
//! each — an unfit or corrupt checkpoint is skipped with a log line, never
//! misapplied), and builds a pool of [`TuneService`] replicas per machine.
//! Requests are then served by [`ServeEngine::tune_batch`]: the batch is
//! partitioned by machine, each machine's requests are grouped by objective,
//! and the groups fan out over the in-tree `pnp_openmp` pool via
//! `parallel_map_with_state`, each worker checking out whichever replica is
//! free and running its whole group as one fused block-diagonal forward
//! ([`TuneService::tune_batch`], DESIGN.md §15) — one tall matmul per
//! relation per layer instead of one small matmul per request. All replicas
//! are restored from the same grids and the fused forward is bit-identical
//! to the single-graph one, so the response vector is bit-identical for
//! every worker/replica count and batch composition — and identical to the
//! offline [`TuneService::tune`] path (DESIGN.md §14).

use pnp_core::registry::{ModelDescriptor, ModelRegistry};
use pnp_core::serving::{
    restore_grid, GridPipeline, KernelInput, TuneObjective, TuneRequest, TuneResponse, TuneService,
};
use pnp_openmp::{parallel_map_with_state, Threads};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::protocol::ServeStats;

/// Startup knobs of the engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// [`TuneService`] replicas per machine; 0 means one per available
    /// core. More replicas let more batch workers predict concurrently.
    pub replicas: usize,
    /// Initial batch worker count; 0 means one per available core.
    /// Adjustable at runtime via the `SetWorkers` request.
    pub workers: usize,
}

/// What the cold start did — one line per grid, printed by the daemon and
/// asserted on by the integration tests.
#[derive(Clone, Debug, Default)]
pub struct StartupReport {
    /// Grids that restored cleanly (fit check passed).
    pub grids_loaded: usize,
    /// Grids skipped: unfit/corrupt checkpoints, unjoined datasets, or
    /// unparseable settings.
    pub grids_skipped: usize,
    /// Human-readable log, one line per grid and per machine.
    pub lines: Vec<String>,
}

impl StartupReport {
    fn log(&mut self, line: String) {
        eprintln!("[pnp-serve] {line}");
        self.lines.push(line);
    }
}

/// The daemon's shared state: one replica pool per serveable machine plus
/// the registry for `List`/`Describe`.
pub struct ServeEngine {
    registry: ModelRegistry,
    machines: BTreeMap<String, Vec<Mutex<TuneService>>>,
    workers: AtomicUsize,
    requests: AtomicU64,
    batches: AtomicU64,
    max_batch_seen: AtomicU64,
    fused_batches: AtomicU64,
    fused_graphs: AtomicU64,
    max_fused_batch: AtomicU64,
    grids_loaded: usize,
    grids_skipped: usize,
}

fn grid_pipeline(model: &ModelDescriptor) -> GridPipeline {
    match model.pipeline.as_str() {
        "scenario1" => GridPipeline::Scenario1 {
            dynamic: model.dynamic,
        },
        "scenario2" => GridPipeline::Scenario2 {
            dynamic: model.dynamic,
        },
        _ => GridPipeline::UnseenPower {
            held_out_power: model.held_out_power.unwrap_or(0),
        },
    }
}

impl ServeEngine {
    /// Cold start: restore every grid in the registry, then build the
    /// replica pools. Serving zero machines is a valid (if useless) state —
    /// the daemon binary refuses it, the tests exercise it.
    pub fn start(registry: ModelRegistry, config: &EngineConfig) -> (ServeEngine, StartupReport) {
        let mut report = StartupReport::default();
        let replicas = if config.replicas == 0 {
            Threads::Auto.resolve()
        } else {
            config.replicas
        };
        let mut machines: BTreeMap<String, Vec<Mutex<TuneService>>> = BTreeMap::new();

        for dataset in registry.datasets() {
            let Some(ds) = registry.load_dataset(dataset) else {
                report.log(format!(
                    "machine {}: dataset {} failed to load — skipping its grids",
                    dataset.machine, dataset.address
                ));
                report.grids_skipped += registry
                    .models()
                    .iter()
                    .filter(|m| m.dataset_sha256 == dataset.sha256)
                    .count();
                continue;
            };
            // Fit-check every grid trained on this dataset, serveable or not:
            // a corrupt checkpoint must surface at startup, not at request
            // time.
            let mut statics: BTreeMap<&str, &ModelDescriptor> = BTreeMap::new();
            for model in registry
                .models()
                .iter()
                .filter(|m| m.dataset_sha256 == dataset.sha256)
            {
                let outcome = model.settings().and_then(|settings| {
                    registry
                        .load_grid(model)
                        .ok_or_else(|| "grid payload failed to load".to_string())
                        .and_then(|grid| {
                            restore_grid(&ds, &settings, grid_pipeline(model), &grid)
                                .map(|models| models.len())
                        })
                });
                match outcome {
                    Ok(n) => {
                        report.grids_loaded += 1;
                        report.log(format!("loaded {} ({n} checkpoints)", model.id));
                        if !model.dynamic && model.held_out_power.is_none() {
                            statics.insert(model.pipeline.as_str(), model);
                        }
                    }
                    Err(why) => {
                        report.grids_skipped += 1;
                        report.log(format!("SKIP {}: {why}", model.id));
                    }
                }
            }

            if ds.is_empty() {
                report.log(format!(
                    "machine {}: dataset is empty — nothing to serve",
                    dataset.machine
                ));
                continue;
            }
            if machines.contains_key(&dataset.machine) {
                report.log(format!(
                    "machine {}: already served by an earlier dataset — skipping {}",
                    dataset.machine, dataset.address
                ));
                continue;
            }
            let (Some(s1), Some(s2)) = (statics.get("scenario1"), statics.get("scenario2")) else {
                report.log(format!(
                    "machine {}: no loadable static scenario1+scenario2 pair — not serving",
                    dataset.machine
                ));
                continue;
            };
            let (Ok(settings), Some(grid1), Some(grid2)) = (
                s1.settings(),
                registry.load_grid(s1),
                registry.load_grid(s2),
            ) else {
                report.log(format!(
                    "machine {}: static grids vanished between fit check and restore",
                    dataset.machine
                ));
                continue;
            };
            let mut pool = Vec::with_capacity(replicas);
            for _ in 0..replicas {
                match TuneService::restore(&ds, &settings, &grid1, &grid2, &s1.id, &s2.id) {
                    Ok(service) => pool.push(Mutex::new(service)),
                    Err(why) => {
                        report.log(format!(
                            "machine {}: replica restore failed: {why}",
                            dataset.machine
                        ));
                        break;
                    }
                }
            }
            if pool.len() == replicas {
                report.log(format!(
                    "machine {}: serving with {replicas} replica(s) (time={}, edp={})",
                    dataset.machine, s1.id, s2.id
                ));
                machines.insert(dataset.machine.clone(), pool);
            }
        }

        let engine = ServeEngine {
            registry,
            machines,
            workers: AtomicUsize::new(config.workers),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch_seen: AtomicU64::new(0),
            fused_batches: AtomicU64::new(0),
            fused_graphs: AtomicU64::new(0),
            max_fused_batch: AtomicU64::new(0),
            grids_loaded: report.grids_loaded,
            grids_skipped: report.grids_skipped,
        };
        (engine, report)
    }

    /// Machines with a ready replica pool.
    pub fn machines(&self) -> Vec<String> {
        self.machines.keys().cloned().collect()
    }

    /// The registry the engine was started from.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Sets the batch worker count (0 = one per available core).
    pub fn set_workers(&self, workers: usize) {
        self.workers.store(workers, Ordering::Relaxed);
    }

    fn batch_threads(&self) -> Threads {
        match self.workers.load(Ordering::Relaxed) {
            0 => Threads::Auto,
            n => Threads::Fixed(n),
        }
    }

    /// Serves one batch: requests are partitioned by machine, each
    /// machine's slice is grouped by objective, and the groups fan out over
    /// the worker pool with replica checkout — each group running as one
    /// fused block-diagonal forward ([`TuneService::tune_batch`],
    /// DESIGN.md §15). Responses come back in request order, bit-identical
    /// to serving each request alone. Unknown machines get error responses;
    /// nothing panics on client input.
    pub fn tune_batch(&self, requests: &[TuneRequest]) -> Vec<TuneResponse> {
        self.requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch_seen
            .fetch_max(requests.len() as u64, Ordering::Relaxed);
        let threads = self.batch_threads();

        let mut slots: Vec<Option<TuneResponse>> = vec![None; requests.len()];
        let mut by_machine: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, request) in requests.iter().enumerate() {
            match self.machines.get(&request.machine) {
                Some(_) => by_machine
                    .entry(request.machine.as_str())
                    .or_default()
                    .push(i),
                None => {
                    slots[i] = Some(TuneResponse::err(
                        request.id,
                        format!(
                            "unknown machine {:?} (serving: {:?})",
                            request.machine,
                            self.machines().join(", ")
                        ),
                    ))
                }
            }
        }
        for (machine, indices) in by_machine {
            let pool = &self.machines[machine];
            // Group by objective: requests sharing a committee fuse into one
            // block-diagonal forward. Keys are `(0, power_idx)` for time and
            // `(1, 0)` for EDP — BTreeMap order keeps dispatch deterministic.
            let mut by_objective: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
            for &i in &indices {
                let key = match requests[i].objective {
                    TuneObjective::Time { power_idx } => (0, power_idx),
                    TuneObjective::Edp => (1, 0),
                };
                by_objective.entry(key).or_default().push(i);
            }
            let groups: Vec<Vec<usize>> = by_objective.into_values().collect();
            for group in &groups {
                self.fused_batches.fetch_add(1, Ordering::Relaxed);
                self.fused_graphs
                    .fetch_add(group.len() as u64, Ordering::Relaxed);
                self.max_fused_batch
                    .fetch_max(group.len() as u64, Ordering::Relaxed);
            }
            let group_results =
                parallel_map_with_state(&groups, threads, pool, |group, service| {
                    let bodies: Vec<(&KernelInput, TuneObjective)> = group
                        .iter()
                        .map(|&i| (&requests[i].kernel, requests[i].objective))
                        .collect();
                    service.tune_batch(&bodies)
                });
            for (group, results) in groups.iter().zip(group_results) {
                for (&i, result) in group.iter().zip(results) {
                    slots[i] = Some(match result {
                        Ok(prediction) => TuneResponse::ok(requests[i].id, prediction),
                        Err(why) => TuneResponse::err(requests[i].id, why),
                    });
                }
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every request slot filled"))
            .collect()
    }

    /// The single-request path — literally a one-element batch, so it
    /// cannot diverge from the batched path.
    pub fn tune(&self, request: &TuneRequest) -> TuneResponse {
        self.tune_batch(std::slice::from_ref(request))
            .into_iter()
            .next()
            .expect("one response per request")
    }

    /// Serving counters since startup.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch_seen: self.max_batch_seen.load(Ordering::Relaxed),
            fused_batches: self.fused_batches.load(Ordering::Relaxed),
            fused_graphs: self.fused_graphs.load(Ordering::Relaxed),
            max_fused_batch: self.max_fused_batch.load(Ordering::Relaxed),
            machines: self.machines(),
            grids_loaded: self.grids_loaded,
            grids_skipped: self.grids_skipped,
            workers: self.workers.load(Ordering::Relaxed),
        }
    }
}
