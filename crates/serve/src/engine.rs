//! The serving engine: registry-driven startup, batched inference, and hot
//! model reload.
//!
//! At startup the engine walks the [`ModelRegistry`], loads every machine's
//! dataset once, restores **every** model grid in the store (fit-checking
//! each — an unfit or corrupt checkpoint is skipped with a log line, never
//! misapplied), and builds a pool of [`TuneService`] replicas per machine.
//! Requests are then served by [`ServeEngine::tune_batch`]: the batch is
//! partitioned by machine, each machine's requests are grouped by objective,
//! and the groups fan out over the in-tree `pnp_openmp` pool via
//! `parallel_map_with_state`, each worker checking out whichever replica is
//! free and running its whole group as one fused block-diagonal forward
//! ([`TuneService::tune_batch`], DESIGN.md §15) — one tall matmul per
//! relation per layer instead of one small matmul per request. All replicas
//! are restored from the same grids and the fused forward is bit-identical
//! to the single-graph one, so the response vector is bit-identical for
//! every worker/replica count and batch composition — and identical to the
//! offline [`TuneService::tune`] path (DESIGN.md §14).
//!
//! The registry and replica pools are one atomically swappable snapshot:
//! [`ServeEngine::reload`] rebuilds them *off* the serving path from a
//! fresh registry and swaps the snapshot in one write-lock critical
//! section, so in-flight batches finish on the pools they started with and
//! new batches see the new grids — no restart, no dropped request
//! (DESIGN.md §17). [`ServeEngine::spawn_reload_watcher`] automates this by
//! polling the store's index generation ([`pnp_store::StoreIndex`]).

use pnp_core::registry::{ModelDescriptor, ModelRegistry};
use pnp_core::serving::{
    restore_grid, GridPipeline, KernelInput, TuneObjective, TuneRequest, TuneResponse, TuneService,
};
use pnp_openmp::{parallel_map_with_state, Threads};
use pnp_store::{Store, StoreIndex};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread;
use std::time::Duration;

use crate::protocol::{ServeStats, PROTOCOL_VERSION};

/// Startup knobs of the engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// [`TuneService`] replicas per machine; 0 means one per available
    /// core. More replicas let more batch workers predict concurrently.
    pub replicas: usize,
    /// Initial batch worker count; 0 means one per available core.
    /// Adjustable at runtime via the `SetWorkers` request.
    pub workers: usize,
}

/// What a cold start or a reload did — one line per grid, printed by the
/// daemon and asserted on by the integration tests.
#[derive(Clone, Debug, Default)]
pub struct StartupReport {
    /// Grids that restored cleanly (fit check passed).
    pub grids_loaded: usize,
    /// Grids skipped: unfit/corrupt checkpoints, unjoined datasets, or
    /// unparseable settings.
    pub grids_skipped: usize,
    /// Human-readable log, one line per grid and per machine.
    pub lines: Vec<String>,
}

impl StartupReport {
    fn log(&mut self, line: String) {
        eprintln!("[pnp-serve] {line}");
        self.lines.push(line);
    }
}

/// One machine's checkout pool of interchangeable service replicas.
type ReplicaPools = BTreeMap<String, Vec<Mutex<TuneService>>>;

/// The swappable snapshot: everything that changes together on a reload.
/// Batches clone the `pools` Arc once at entry, so a swap mid-batch is
/// invisible to that batch (DESIGN.md §17).
struct LiveState {
    registry: Arc<ModelRegistry>,
    pools: Arc<ReplicaPools>,
    generation: String,
}

/// The daemon's shared state: the swappable registry + replica-pool
/// snapshot, plus the serving and degradation counters.
pub struct ServeEngine {
    live: RwLock<LiveState>,
    replicas: usize,
    workers: AtomicUsize,
    requests: AtomicU64,
    batches: AtomicU64,
    max_batch_seen: AtomicU64,
    fused_batches: AtomicU64,
    fused_graphs: AtomicU64,
    max_fused_batch: AtomicU64,
    shed_requests: AtomicU64,
    deadline_expired: AtomicU64,
    queue_depth: AtomicU64,
    reloads: AtomicU64,
    grids_loaded: AtomicUsize,
    grids_skipped: AtomicUsize,
}

fn grid_pipeline(model: &ModelDescriptor) -> GridPipeline {
    match model.pipeline.as_str() {
        "scenario1" => GridPipeline::Scenario1 {
            dynamic: model.dynamic,
        },
        "scenario2" => GridPipeline::Scenario2 {
            dynamic: model.dynamic,
        },
        _ => GridPipeline::UnseenPower {
            held_out_power: model.held_out_power.unwrap_or(0),
        },
    }
}

/// Restores and fit-checks every grid in `registry`, then builds the
/// per-machine replica pools — the shared body of cold start and reload.
fn build_pools(
    registry: &ModelRegistry,
    replicas: usize,
    report: &mut StartupReport,
) -> ReplicaPools {
    let mut machines: ReplicaPools = BTreeMap::new();

    for dataset in registry.datasets() {
        let Some(ds) = registry.load_dataset(dataset) else {
            report.log(format!(
                "machine {}: dataset {} failed to load — skipping its grids",
                dataset.machine, dataset.address
            ));
            report.grids_skipped += registry
                .models()
                .iter()
                .filter(|m| m.dataset_sha256 == dataset.sha256)
                .count();
            continue;
        };
        // Fit-check every grid trained on this dataset, serveable or not:
        // a corrupt checkpoint must surface at startup, not at request
        // time.
        let mut statics: BTreeMap<&str, &ModelDescriptor> = BTreeMap::new();
        for model in registry
            .models()
            .iter()
            .filter(|m| m.dataset_sha256 == dataset.sha256)
        {
            let outcome = model.settings().and_then(|settings| {
                registry
                    .load_grid(model)
                    .ok_or_else(|| "grid payload failed to load".to_string())
                    .and_then(|grid| {
                        restore_grid(&ds, &settings, grid_pipeline(model), &grid)
                            .map(|models| models.len())
                    })
            });
            match outcome {
                Ok(n) => {
                    report.grids_loaded += 1;
                    report.log(format!("loaded {} ({n} checkpoints)", model.id));
                    if !model.dynamic && model.held_out_power.is_none() {
                        statics.insert(model.pipeline.as_str(), model);
                    }
                }
                Err(why) => {
                    report.grids_skipped += 1;
                    report.log(format!("SKIP {}: {why}", model.id));
                }
            }
        }

        if ds.is_empty() {
            report.log(format!(
                "machine {}: dataset is empty — nothing to serve",
                dataset.machine
            ));
            continue;
        }
        if machines.contains_key(&dataset.machine) {
            report.log(format!(
                "machine {}: already served by an earlier dataset — skipping {}",
                dataset.machine, dataset.address
            ));
            continue;
        }
        let (Some(s1), Some(s2)) = (statics.get("scenario1"), statics.get("scenario2")) else {
            report.log(format!(
                "machine {}: no loadable static scenario1+scenario2 pair — not serving",
                dataset.machine
            ));
            continue;
        };
        let (Ok(settings), Some(grid1), Some(grid2)) = (
            s1.settings(),
            registry.load_grid(s1),
            registry.load_grid(s2),
        ) else {
            report.log(format!(
                "machine {}: static grids vanished between fit check and restore",
                dataset.machine
            ));
            continue;
        };
        let mut pool = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            match TuneService::restore(&ds, &settings, &grid1, &grid2, &s1.id, &s2.id) {
                Ok(service) => pool.push(Mutex::new(service)),
                Err(why) => {
                    report.log(format!(
                        "machine {}: replica restore failed: {why}",
                        dataset.machine
                    ));
                    break;
                }
            }
        }
        if pool.len() == replicas {
            report.log(format!(
                "machine {}: serving with {} replica(s) (time={}, edp={})",
                dataset.machine, replicas, s1.id, s2.id
            ));
            machines.insert(dataset.machine.clone(), pool);
        }
    }
    machines
}

impl ServeEngine {
    /// Cold start: restore every grid in the registry, then build the
    /// replica pools. Serving zero machines is a valid (if useless) state —
    /// the daemon binary refuses it, the tests exercise it.
    pub fn start(registry: ModelRegistry, config: &EngineConfig) -> (ServeEngine, StartupReport) {
        let mut report = StartupReport::default();
        let replicas = if config.replicas == 0 {
            Threads::Auto.resolve()
        } else {
            config.replicas
        };
        let pools = build_pools(&registry, replicas, &mut report);
        let generation = registry.generation().to_string();

        let engine = ServeEngine {
            live: RwLock::new(LiveState {
                registry: Arc::new(registry),
                pools: Arc::new(pools),
                generation,
            }),
            replicas,
            workers: AtomicUsize::new(config.workers),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch_seen: AtomicU64::new(0),
            fused_batches: AtomicU64::new(0),
            fused_graphs: AtomicU64::new(0),
            max_fused_batch: AtomicU64::new(0),
            shed_requests: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            grids_loaded: AtomicUsize::new(report.grids_loaded),
            grids_skipped: AtomicUsize::new(report.grids_skipped),
        };
        (engine, report)
    }

    fn live(&self) -> std::sync::RwLockReadGuard<'_, LiveState> {
        self.live.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Machines with a ready replica pool (in the current snapshot).
    pub fn machines(&self) -> Vec<String> {
        self.live().pools.keys().cloned().collect()
    }

    /// The registry behind the current snapshot (`List`/`Describe` answer
    /// from this; a reload swaps it together with the pools).
    pub fn registry(&self) -> Arc<ModelRegistry> {
        self.live().registry.clone()
    }

    /// Generation stamp of the store index the current snapshot was built
    /// from.
    pub fn generation(&self) -> String {
        self.live().generation.clone()
    }

    /// Sets the batch worker count (0 = one per available core).
    pub fn set_workers(&self, workers: usize) {
        self.workers.store(workers, Ordering::Relaxed);
    }

    fn batch_threads(&self) -> Threads {
        match self.workers.load(Ordering::Relaxed) {
            0 => Threads::Auto,
            n => Threads::Fixed(n),
        }
    }

    /// Admission control (DESIGN.md §17): reserves a dispatcher-queue slot
    /// for one tune request. Returns `false` — and counts a shed — when the
    /// queue already holds `max_queue` requests; the caller must then
    /// answer with a typed `Overloaded` rejection instead of enqueueing.
    /// Every admitted request must be paired with one [`ServeEngine::departed`]
    /// call when it leaves the queue.
    pub fn admit(&self, max_queue: usize) -> bool {
        let prior = self.queue_depth.fetch_add(1, Ordering::SeqCst);
        if prior >= max_queue as u64 {
            self.queue_depth.fetch_sub(1, Ordering::SeqCst);
            self.shed_requests.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Releases the queue slot taken by [`ServeEngine::admit`] — called by
    /// the dispatcher as it dequeues, whatever it then decides to do with
    /// the request.
    pub fn departed(&self) {
        self.queue_depth.fetch_sub(1, Ordering::SeqCst);
    }

    /// Counts one request whose deadline budget ran out in the queue.
    pub fn note_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Serves one batch: requests are partitioned by machine, each
    /// machine's slice is grouped by objective, and the groups fan out over
    /// the worker pool with replica checkout — each group running as one
    /// fused block-diagonal forward ([`TuneService::tune_batch`],
    /// DESIGN.md §15). Responses come back in request order, bit-identical
    /// to serving each request alone. Unknown machines get error responses;
    /// nothing panics on client input. The replica-pool snapshot is taken
    /// once at entry, so a concurrent reload never splits a batch across
    /// two model generations (DESIGN.md §17).
    pub fn tune_batch(&self, requests: &[TuneRequest]) -> Vec<TuneResponse> {
        self.requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch_seen
            .fetch_max(requests.len() as u64, Ordering::Relaxed);
        let threads = self.batch_threads();
        let pools = self.live().pools.clone();

        let mut settled: BTreeMap<usize, TuneResponse> = BTreeMap::new();
        let mut by_machine: BTreeMap<&str, Vec<(usize, &TuneRequest)>> = BTreeMap::new();
        for (i, request) in requests.iter().enumerate() {
            match pools.contains_key(&request.machine) {
                true => by_machine
                    .entry(request.machine.as_str())
                    .or_default()
                    .push((i, request)),
                false => {
                    settled.insert(
                        i,
                        TuneResponse::err(
                            request.id,
                            format!(
                                "unknown machine {:?} (serving: {:?})",
                                request.machine,
                                self.machines().join(", ")
                            ),
                        ),
                    );
                }
            }
        }
        for (machine, entries) in by_machine {
            let Some(pool) = pools.get(machine) else {
                // Unreachable (partitioned on the same snapshot above), but
                // an unsettled slot degrades to a typed error, never a
                // panic.
                continue;
            };
            // Group by objective: requests sharing a committee fuse into one
            // block-diagonal forward. Keys are `(0, power_idx)` for time and
            // `(1, 0)` for EDP — BTreeMap order keeps dispatch deterministic.
            let mut by_objective: BTreeMap<(usize, usize), Vec<(usize, &TuneRequest)>> =
                BTreeMap::new();
            for (i, request) in entries {
                let key = match request.objective {
                    TuneObjective::Time { power_idx } => (0, power_idx),
                    TuneObjective::Edp => (1, 0),
                };
                by_objective.entry(key).or_default().push((i, request));
            }
            let groups: Vec<Vec<(usize, &TuneRequest)>> = by_objective.into_values().collect();
            for group in &groups {
                self.fused_batches.fetch_add(1, Ordering::Relaxed);
                self.fused_graphs
                    .fetch_add(group.len() as u64, Ordering::Relaxed);
                self.max_fused_batch
                    .fetch_max(group.len() as u64, Ordering::Relaxed);
            }
            let group_results =
                parallel_map_with_state(&groups, threads, pool, |group, service| {
                    let bodies: Vec<(&KernelInput, TuneObjective)> = group
                        .iter()
                        .map(|(_, request)| (&request.kernel, request.objective))
                        .collect();
                    service.tune_batch(&bodies)
                });
            for (group, results) in groups.iter().zip(group_results) {
                for ((i, request), result) in group.iter().zip(results) {
                    settled.insert(
                        *i,
                        match result {
                            Ok(prediction) => TuneResponse::ok(request.id, prediction),
                            Err(why) => TuneResponse::err(request.id, why),
                        },
                    );
                }
            }
        }
        requests
            .iter()
            .enumerate()
            .map(|(i, request)| {
                settled.remove(&i).unwrap_or_else(|| {
                    TuneResponse::err(request.id, "internal: request slot left unsettled")
                })
            })
            .collect()
    }

    /// The single-request path — literally a one-element batch, so it
    /// cannot diverge from the batched path.
    pub fn tune(&self, request: &TuneRequest) -> TuneResponse {
        self.tune_batch(std::slice::from_ref(request))
            .into_iter()
            .next()
            .unwrap_or_else(|| TuneResponse::err(request.id, "internal: batch answered nothing"))
    }

    /// Hot model reload (DESIGN.md §17): restores and fit-checks every grid
    /// of `registry` *off* the serving path, then swaps the
    /// registry + pools + generation snapshot in one critical section.
    /// Batches already running keep the pool Arc they cloned at entry and
    /// finish undisturbed; the next batch serves the new grids.
    pub fn reload(&self, registry: ModelRegistry) -> StartupReport {
        let mut report = StartupReport::default();
        let pools = build_pools(&registry, self.replicas, &mut report);
        let generation = registry.generation().to_string();
        {
            let mut live = self.live.write().unwrap_or_else(PoisonError::into_inner);
            live.registry = Arc::new(registry);
            live.pools = Arc::new(pools);
            live.generation = generation;
        }
        self.grids_loaded
            .store(report.grids_loaded, Ordering::Relaxed);
        self.grids_skipped
            .store(report.grids_skipped, Ordering::Relaxed);
        self.reloads.fetch_add(1, Ordering::Relaxed);
        report.log(format!(
            "hot reload #{}: {} grid(s) loaded, {} skipped",
            self.reloads.load(Ordering::Relaxed),
            report.grids_loaded,
            report.grids_skipped
        ));
        report
    }

    /// One watcher tick: reopens the store, loads (or rebuilds) its index,
    /// and hot-reloads when the generation stamp moved. Returns whether a
    /// reload happened. Cheap when nothing changed — one small JSON read
    /// plus a file-name walk, no artifact payload is touched.
    pub fn reload_if_stale(&self) -> bool {
        let (root, force, verify) = {
            let live = self.live();
            let store = live.registry.store();
            (
                store.root().to_path_buf(),
                store.force_rebuild(),
                store.verify(),
            )
        };
        let store = Store::open(root)
            .with_force_rebuild(force)
            .with_verify(verify);
        let index = StoreIndex::load_or_rebuild(&store);
        if index.generation() == self.generation() {
            return false;
        }
        self.reload(ModelRegistry::from_index(store, &index));
        true
    }

    /// Spawns the registry watcher: every `poll`, check the store's index
    /// generation and hot-reload on change, until `stop` is set. The daemon
    /// binary runs this for the life of the process; tests drive
    /// [`ServeEngine::reload_if_stale`] directly when they want determinism.
    pub fn spawn_reload_watcher(
        self: &Arc<ServeEngine>,
        poll: Duration,
        stop: Arc<AtomicBool>,
    ) -> thread::JoinHandle<()> {
        let engine = Arc::clone(self);
        thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                thread::sleep(poll);
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                engine.reload_if_stale();
            }
        })
    }

    /// Serving counters since startup.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch_seen: self.max_batch_seen.load(Ordering::Relaxed),
            fused_batches: self.fused_batches.load(Ordering::Relaxed),
            fused_graphs: self.fused_graphs.load(Ordering::Relaxed),
            max_fused_batch: self.max_fused_batch.load(Ordering::Relaxed),
            machines: self.machines(),
            grids_loaded: self.grids_loaded.load(Ordering::Relaxed),
            grids_skipped: self.grids_skipped.load(Ordering::Relaxed),
            workers: self.workers.load(Ordering::Relaxed),
            shed_requests: self.shed_requests.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::SeqCst),
            reloads: self.reloads.load(Ordering::Relaxed),
            protocol: PROTOCOL_VERSION,
        }
    }
}
