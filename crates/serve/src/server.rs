//! The daemon's I/O layer: connection handling, the batching dispatcher,
//! and a small blocking [`Client`].
//!
//! Tune requests from every connection funnel into one dispatcher thread,
//! which drains whatever has accumulated (up to `max_batch`) and hands the
//! batch to [`ServeEngine::tune_batch`] — so concurrent clients are batched
//! together and an idle socket adds no latency (the first request of a
//! batch is served immediately, not held for a timer). Control requests
//! (`List`, `Stats`, ...) are answered inline by the connection's reader.
//! Each connection has a single writer thread; every response — tune or
//! control — goes through it, so frames never interleave.

use crate::engine::ServeEngine;
use crate::protocol::{read_message, write_message, Request, Response};
use pnp_core::serving::TuneRequest;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// Default upper bound on one dispatcher batch.
pub const DEFAULT_MAX_BATCH: usize = 64;

struct Work {
    request: TuneRequest,
    reply: mpsc::Sender<Response>,
}

fn dispatcher(engine: Arc<ServeEngine>, rx: mpsc::Receiver<Work>, max_batch: usize) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(work) => batch.push(work),
                Err(_) => break,
            }
        }
        let requests: Vec<TuneRequest> = batch.iter().map(|w| w.request.clone()).collect();
        let responses = engine.tune_batch(&requests);
        for (work, response) in batch.into_iter().zip(responses) {
            // A disconnected client cannot receive its response; drop it.
            let _ = work.reply.send(Response::Tune(response));
        }
    }
}

/// Reads requests from `reader`, answering control requests inline and
/// forwarding tune requests to the dispatcher; `writer` is owned by a
/// dedicated thread draining the reply channel. Returns when the peer
/// disconnects, sends garbage, or asks for shutdown.
fn handle_streams(
    mut reader: impl Read,
    mut writer: impl Write + Send + 'static,
    engine: &ServeEngine,
    work_tx: &mpsc::Sender<Work>,
    stop: &AtomicBool,
) {
    let (reply_tx, reply_rx) = mpsc::channel::<Response>();
    let writer_thread = thread::spawn(move || {
        for response in reply_rx {
            if write_message(&mut writer, &response).is_err() {
                break;
            }
        }
    });
    loop {
        let request = match read_message::<Request>(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => break,
            Err(why) => {
                let _ = reply_tx.send(Response::Error { message: why });
                break;
            }
        };
        let response = match request {
            Request::Tune(tune) => {
                let work = Work {
                    request: tune,
                    reply: reply_tx.clone(),
                };
                if work_tx.send(work).is_err() {
                    let _ = reply_tx.send(Response::Error {
                        message: "dispatcher stopped".into(),
                    });
                    break;
                }
                continue;
            }
            Request::List => Response::Models {
                models: engine
                    .registry()
                    .models()
                    .iter()
                    .map(|m| m.summary())
                    .collect(),
            },
            Request::Describe { id } => Response::Description {
                text: engine.registry().describe(&id),
            },
            Request::Stats => Response::Stats(engine.stats()),
            Request::SetWorkers { workers } => {
                engine.set_workers(workers);
                Response::Ok
            }
            Request::Ping => Response::Ok,
            Request::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                let _ = reply_tx.send(Response::Ok);
                break;
            }
        };
        if reply_tx.send(response).is_err() {
            break;
        }
    }
    drop(reply_tx);
    let _ = writer_thread.join();
}

/// Serves `engine` on `listener` until a client sends `Shutdown`. Each
/// connection gets reader + writer threads; tune requests are batched
/// across connections by the shared dispatcher.
pub fn serve(listener: TcpListener, engine: Arc<ServeEngine>, max_batch: usize) {
    let local = listener.local_addr().ok();
    let stop = Arc::new(AtomicBool::new(false));
    let (work_tx, work_rx) = mpsc::channel::<Work>();
    let dispatcher_thread = {
        let engine = engine.clone();
        thread::spawn(move || dispatcher(engine, work_rx, max_batch.max(1)))
    };

    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let reader = stream;
        let Ok(writer) = reader.try_clone() else {
            continue;
        };
        let engine = engine.clone();
        let work_tx = work_tx.clone();
        let stop_conn = stop.clone();
        let stop_accept = stop.clone();
        thread::spawn(move || {
            handle_streams(&reader, writer, &engine, &work_tx, &stop_conn);
            // A shutdown request must also unblock the accept loop.
            if stop_accept.load(Ordering::SeqCst) {
                if let Some(addr) = local {
                    let _ = TcpStream::connect(addr);
                }
            }
        });
    }
    drop(work_tx);
    let _ = dispatcher_thread.join();
}

/// Serves one session over stdin/stdout (the `--stdio` mode: no socket, no
/// port file — for harnesses and debugging with a driving process).
pub fn serve_stdio(engine: Arc<ServeEngine>, max_batch: usize) {
    let stop = AtomicBool::new(false);
    let (work_tx, work_rx) = mpsc::channel::<Work>();
    let dispatcher_thread = {
        let engine = engine.clone();
        thread::spawn(move || dispatcher(engine, work_rx, max_batch.max(1)))
    };
    handle_streams(
        std::io::stdin().lock(),
        std::io::stdout(),
        &engine,
        &work_tx,
        &stop,
    );
    drop(work_tx);
    let _ = dispatcher_thread.join();
}

/// A blocking client: one request, one response. For pipelined load
/// generation use [`Client::into_stream`] and drive the two directions from
/// separate threads with the `protocol` functions.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// The peer address.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Sends one request and waits for the next response frame.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        self.send(request)?;
        self.receive()
    }

    /// Sends one request without waiting — pair with [`Client::receive`] to
    /// pipeline many requests over the connection so the dispatcher can
    /// drain and fuse them into block-diagonal batches.
    pub fn send(&mut self, request: &Request) -> Result<(), String> {
        write_message(&mut self.stream, request).map_err(|e| format!("send: {e}"))
    }

    /// Reads the next response frame (tune responses are correlated by id,
    /// not arrival order).
    pub fn receive(&mut self) -> Result<Response, String> {
        read_message(&mut self.stream)?.ok_or_else(|| "server closed the connection".to_string())
    }

    /// Hands out the raw stream for pipelined use.
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }
}
