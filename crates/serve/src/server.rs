//! The daemon's I/O layer: connection handling, the batching dispatcher,
//! admission control, per-request deadlines, and a small blocking
//! [`Client`].
//!
//! Tune requests from every connection funnel into one dispatcher thread,
//! which drains whatever has accumulated (up to `max_batch`) and hands the
//! batch to [`ServeEngine::tune_batch`] — so concurrent clients are batched
//! together and an idle socket adds no latency (the first request of a
//! batch is served immediately, not held for a timer). Control requests
//! (`List`, `Stats`, ...) are answered inline by the connection's reader.
//! Each connection has a single writer thread; every response — tune or
//! control — goes through it, so frames never interleave.
//!
//! Under overload the daemon degrades by *refusing* work, never by
//! computing it differently (DESIGN.md §17): a tune request that cannot
//! take a dispatcher-queue slot is answered immediately with a typed
//! `Rejected { reason: Overloaded }`, and a queued request whose
//! `deadline_ms` budget runs out is answered with
//! `Rejected { reason: DeadlineExceeded }` instead of occupying a batch
//! slot. Successful responses stay bit-identical to an unloaded daemon's.

use crate::engine::ServeEngine;
use crate::protocol::{read_message, write_message, RejectReason, Request, Response};
use pnp_core::serving::TuneRequest;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Default upper bound on one dispatcher batch.
pub const DEFAULT_MAX_BATCH: usize = 64;

/// Time source for admission stamps and deadline checks. The binaries pass
/// `Arc::new(Instant::now)`; tests pass a fake clock so deadline expiry is
/// deterministic. The serving library itself never reads the wall clock.
pub type Clock = Arc<dyn Fn() -> Instant + Send + Sync>;

/// I/O-layer knobs: batching, admission control, and the time source.
#[derive(Clone)]
pub struct ServeConfig {
    /// Upper bound on one dispatcher batch (clamped to at least 1).
    pub max_batch: usize,
    /// Upper bound on queued-but-unserved tune requests across all
    /// connections. A request arriving when the queue is full is shed with
    /// a typed `Rejected { reason: Overloaded }` (DESIGN.md §17). `0` sheds
    /// every tune request — useful as a drain/test mode, never a sensible
    /// serving configuration.
    pub max_queue: usize,
    /// Time source (see [`Clock`]).
    pub clock: Clock,
}

impl ServeConfig {
    /// A config with the given bounds and the given time source.
    pub fn new(max_batch: usize, max_queue: usize, clock: Clock) -> ServeConfig {
        ServeConfig {
            max_batch,
            max_queue,
            clock,
        }
    }
}

struct Work {
    request: TuneRequest,
    reply: mpsc::Sender<Response>,
    /// When [`ServeEngine::admit`] accepted this request — the start of its
    /// `deadline_ms` budget.
    admitted_at: Instant,
}

/// `true` once `work`'s deadline budget is spent at time `now`. Requests
/// without a deadline never expire.
fn expired(work: &Work, now: Instant) -> bool {
    match work.request.deadline_ms {
        Some(budget) => now.duration_since(work.admitted_at).as_millis() > u128::from(budget),
        None => false,
    }
}

fn reject(work: Work, reason: RejectReason) {
    // A disconnected client cannot receive its rejection; drop it.
    let _ = work.reply.send(Response::Rejected {
        id: work.request.id,
        reason,
    });
}

fn dispatcher(engine: Arc<ServeEngine>, rx: mpsc::Receiver<Work>, max_batch: usize, clock: Clock) {
    while let Ok(first) = rx.recv() {
        // Deadline check #1 — at dequeue: a request that aged out while
        // queued is answered without ever taking a batch slot, so one slow
        // burst cannot make the daemon spend cycles on answers nobody is
        // waiting for (DESIGN.md §17).
        let mut batch = Vec::with_capacity(max_batch);
        for work in std::iter::once(first).chain(std::iter::from_fn(|| rx.try_recv().ok())) {
            engine.departed();
            if expired(&work, (clock)()) {
                engine.note_deadline_expired();
                reject(work, RejectReason::DeadlineExceeded);
            } else {
                batch.push(work);
            }
            if batch.len() >= max_batch {
                break;
            }
        }
        // Deadline check #2 — at batch formation: draining the queue takes
        // time too; re-stamp `now` once for the whole batch so a request
        // admitted with a tiny budget cannot sneak into a fused forward
        // after its deadline passed.
        let now = (clock)();
        let (batch, late): (Vec<Work>, Vec<Work>) =
            batch.into_iter().partition(|work| !expired(work, now));
        for work in late {
            engine.note_deadline_expired();
            reject(work, RejectReason::DeadlineExceeded);
        }
        if batch.is_empty() {
            continue;
        }
        let requests: Vec<TuneRequest> = batch.iter().map(|w| w.request.clone()).collect();
        let responses = engine.tune_batch(&requests);
        for (work, response) in batch.into_iter().zip(responses) {
            // A disconnected client cannot receive its response; drop it.
            let _ = work.reply.send(Response::Tune(response));
        }
    }
}

/// Reads requests from `reader`, answering control requests inline and
/// forwarding tune requests to the dispatcher; `writer` is owned by a
/// dedicated thread draining the reply channel. Returns when the peer
/// disconnects, sends garbage, or asks for shutdown.
fn handle_streams(
    mut reader: impl Read,
    mut writer: impl Write + Send + 'static,
    engine: &ServeEngine,
    work_tx: &mpsc::Sender<Work>,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    let (reply_tx, reply_rx) = mpsc::channel::<Response>();
    let writer_thread = thread::spawn(move || {
        for response in reply_rx {
            if write_message(&mut writer, &response).is_err() {
                break;
            }
        }
    });
    loop {
        let request = match read_message::<Request>(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => break,
            Err(why) => {
                let _ = reply_tx.send(Response::Error { message: why });
                break;
            }
        };
        let response = match request {
            Request::Tune(tune) => {
                // Admission control: reserve a queue slot or shed fast with
                // a typed rejection — the client learns in one round-trip
                // that it must back off (DESIGN.md §17).
                if !engine.admit(config.max_queue) {
                    if reply_tx
                        .send(Response::Rejected {
                            id: tune.id,
                            reason: RejectReason::Overloaded,
                        })
                        .is_err()
                    {
                        break;
                    }
                    continue;
                }
                let work = Work {
                    request: tune,
                    reply: reply_tx.clone(),
                    admitted_at: (config.clock)(),
                };
                if work_tx.send(work).is_err() {
                    engine.departed();
                    let _ = reply_tx.send(Response::Error {
                        message: "dispatcher stopped".into(),
                    });
                    break;
                }
                continue;
            }
            Request::List => Response::Models {
                models: engine
                    .registry()
                    .models()
                    .iter()
                    .map(|m| m.summary())
                    .collect(),
            },
            Request::Describe { id } => Response::Description {
                text: engine.registry().describe(&id),
            },
            Request::Stats => Response::Stats(engine.stats()),
            Request::SetWorkers { workers } => {
                engine.set_workers(workers);
                Response::Ok
            }
            Request::Ping => Response::Ok,
            Request::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                let _ = reply_tx.send(Response::Ok);
                break;
            }
        };
        if reply_tx.send(response).is_err() {
            break;
        }
    }
    drop(reply_tx);
    let _ = writer_thread.join();
}

/// Serves `engine` on `listener` until a client sends `Shutdown`. Each
/// connection gets reader + writer threads; tune requests are batched
/// across connections by the shared dispatcher, bounded by
/// [`ServeConfig::max_queue`].
pub fn serve(listener: TcpListener, engine: Arc<ServeEngine>, config: ServeConfig) {
    let local = listener.local_addr().ok();
    let stop = Arc::new(AtomicBool::new(false));
    let (work_tx, work_rx) = mpsc::channel::<Work>();
    let dispatcher_thread = {
        let engine = engine.clone();
        let clock = config.clock.clone();
        let max_batch = config.max_batch.max(1);
        thread::spawn(move || dispatcher(engine, work_rx, max_batch, clock))
    };

    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let reader = stream;
        let Ok(writer) = reader.try_clone() else {
            continue;
        };
        let engine = engine.clone();
        let work_tx = work_tx.clone();
        let stop_conn = stop.clone();
        let stop_accept = stop.clone();
        let config = config.clone();
        thread::spawn(move || {
            handle_streams(&reader, writer, &engine, &work_tx, &stop_conn, &config);
            // A shutdown request must also unblock the accept loop.
            if stop_accept.load(Ordering::SeqCst) {
                if let Some(addr) = local {
                    let _ = TcpStream::connect(addr);
                }
            }
        });
    }
    drop(work_tx);
    let _ = dispatcher_thread.join();
}

/// Serves one session over stdin/stdout (the `--stdio` mode: no socket, no
/// port file — for harnesses and debugging with a driving process).
pub fn serve_stdio(engine: Arc<ServeEngine>, config: ServeConfig) {
    let stop = AtomicBool::new(false);
    let (work_tx, work_rx) = mpsc::channel::<Work>();
    let dispatcher_thread = {
        let engine = engine.clone();
        let clock = config.clock.clone();
        let max_batch = config.max_batch.max(1);
        thread::spawn(move || dispatcher(engine, work_rx, max_batch, clock))
    };
    handle_streams(
        std::io::stdin().lock(),
        std::io::stdout(),
        &engine,
        &work_tx,
        &stop,
        &config,
    );
    drop(work_tx);
    let _ = dispatcher_thread.join();
}

/// A blocking client: one request, one response. For pipelined load
/// generation use [`Client::into_stream`] and drive the two directions from
/// separate threads with the `protocol` functions.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// The peer address.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Sends one request and waits for the next response frame.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        self.send(request)?;
        self.receive()
    }

    /// Sends one request without waiting — pair with [`Client::receive`] to
    /// pipeline many requests over the connection so the dispatcher can
    /// drain and fuse them into block-diagonal batches.
    pub fn send(&mut self, request: &Request) -> Result<(), String> {
        write_message(&mut self.stream, request).map_err(|e| format!("send: {e}"))
    }

    /// Reads the next response frame (tune responses are correlated by id,
    /// not arrival order).
    pub fn receive(&mut self) -> Result<Response, String> {
        read_message(&mut self.stream)?.ok_or_else(|| "server closed the connection".to_string())
    }

    /// Hands out the raw stream for pipelined use.
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }
}
