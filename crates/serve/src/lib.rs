//! # pnp-serve
//!
//! Tuning-as-a-service on top of the model registry (ISSUE 7, SERVING.md):
//!
//! * [`engine`] — registry-driven cold start (load + fit-check every cached
//!   grid, build [`pnp_core::TuneService`] replica pools per machine) and
//!   batched inference over the in-tree `pnp_openmp` thread pool.
//! * [`protocol`] — the length-prefixed JSON wire protocol: frame I/O plus
//!   the [`protocol::Request`]/[`protocol::Response`] envelopes around
//!   `pnp_core::serving`'s tune types.
//! * [`server`] — TCP (and stdio) serving with the cross-connection
//!   batching dispatcher, admission control and per-request deadlines
//!   (DESIGN.md §17), and the blocking [`server::Client`].
//!
//! Two binaries ship with the crate: `pnp_serve` (the daemon) and
//! `pnp_load` (the load generator behind `BENCH_serve.json`). The
//! prediction math itself lives in `pnp_core::serving` next to the training
//! pipelines, which is what makes served predictions bit-identical to the
//! offline predict path (DESIGN.md §14) — this crate only adds I/O,
//! batching, and operations around it.

pub mod engine;
pub mod protocol;
pub mod server;

pub use engine::{EngineConfig, ServeEngine, StartupReport};
pub use protocol::{
    read_frame, read_message, write_frame, write_message, RejectReason, Request, Response,
    ServeStats, MAX_FRAME, PROTOCOL_VERSION,
};
pub use server::{serve, serve_stdio, Client, Clock, ServeConfig, DEFAULT_MAX_BATCH};
