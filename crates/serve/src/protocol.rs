//! The wire protocol (SERVING.md "Protocol"): length-prefixed JSON frames.
//!
//! Every message is a 4-byte big-endian payload length followed by exactly
//! that many bytes of UTF-8 JSON — one [`Request`] per client frame, one
//! [`Response`] per server frame. Length prefixing keeps framing independent
//! of JSON whitespace and lets both sides pipeline: a client may have many
//! requests in flight and match tune responses back by their correlation
//! `id` (control responses carry no id and arrive in request order relative
//! to each other on one connection).
//!
//! A tune request is answered by exactly one frame — [`Response::Tune`] on
//! the happy path, or [`Response::Rejected`] when the daemon degrades under
//! load (queue full, deadline passed) rather than stall. Rejection carries
//! the request's correlation id, so pipelined clients account for shed
//! requests the same way they account for predictions (DESIGN.md §17).

use pnp_core::registry::ModelSummary;
use pnp_core::serving::{TuneRequest, TuneResponse};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Frames larger than this are rejected — a corrupt or hostile length
/// prefix must not make the daemon allocate gigabytes.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Protocol revision spoken by this build, reported in [`ServeStats`].
///
/// * **1** — the original surface: `Tune`/`List`/`Describe`/`Stats`/
///   `SetWorkers`/`Ping`/`Shutdown`.
/// * **2** — adds the optional `deadline_ms` field on tune requests and the
///   [`Response::Rejected`] variant (load shedding + deadlines,
///   DESIGN.md §17). Version-1 clients interoperate: an absent
///   `deadline_ms` parses as "no deadline", and a daemon that never sheds
///   never emits `Rejected`.
pub const PROTOCOL_VERSION: u32 = 2;

/// One client request.
///
/// A deadline-annotated tune request round-trips the envelope unchanged —
/// the `deadline_ms` budget is measured by the daemon from admission, so
/// the client only states the budget, never a wall-clock time:
///
/// ```
/// use pnp_core::serving::{KernelInput, TuneObjective, TuneRequest};
/// use pnp_serve::{read_message, write_message, Request};
///
/// let request = Request::Tune(TuneRequest {
///     id: 41,
///     machine: "haswell".into(),
///     objective: TuneObjective::Edp,
///     kernel: KernelInput::Source {
///         app: "demo".into(),
///         regions: vec![],
///         region: "r0".into(),
///     },
///     deadline_ms: Some(50), // answer within 50 ms of admission, or shed
/// });
/// let mut wire = Vec::new();
/// write_message(&mut wire, &request).unwrap();
/// match read_message::<Request>(&mut wire.as_slice()).unwrap() {
///     Some(Request::Tune(tune)) => {
///         assert_eq!(tune.id, 41);
///         assert_eq!(tune.deadline_ms, Some(50));
///     }
///     other => panic!("expected a tune request, got {other:?}"),
/// }
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Tune one kernel (the hot path; batched by the dispatcher).
    Tune(TuneRequest),
    /// List every model grid in the registry.
    List,
    /// Describe one model by registry id.
    Describe {
        /// The registry id (as returned by `List`).
        id: String,
    },
    /// Serving counters since startup.
    Stats,
    /// Set the batch worker count (0 = one worker per available core).
    SetWorkers {
        /// The new worker count.
        workers: usize,
    },
    /// Liveness probe.
    Ping,
    /// Stop the daemon after this response.
    Shutdown,
}

/// Why the daemon refused a tune request instead of answering it.
///
/// Both reasons are *degradation*, not failure: the daemon is healthy and
/// explicitly chose not to spend inference on this request. Predictions
/// that are served remain bit-identical to the offline path — shedding
/// changes which requests are answered, never what an answer contains
/// (DESIGN.md §17).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The dispatcher queue was at `--max-queue` when the request arrived;
    /// admitting it would only grow latency for everyone. Back off and
    /// retry.
    Overloaded,
    /// The request's `deadline_ms` budget ran out while it waited in the
    /// queue; a prediction now would arrive too late to act on.
    DeadlineExceeded,
}

/// One server response.
///
/// This is what a shed response looks like on the wire — same envelope,
/// same correlation id a [`Response::Tune`] would have carried:
///
/// ```
/// use pnp_serve::{read_message, write_message, RejectReason, Response};
///
/// let shed = Response::Rejected {
///     id: 41,
///     reason: RejectReason::Overloaded,
/// };
/// let mut wire = Vec::new();
/// write_message(&mut wire, &shed).unwrap();
/// match read_message::<Response>(&mut wire.as_slice()).unwrap() {
///     Some(Response::Rejected { id, reason }) => {
///         assert_eq!(id, 41);
///         assert_eq!(reason, RejectReason::Overloaded);
///     }
///     other => panic!("expected a rejection, got {other:?}"),
/// }
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Tune`], correlated by `id`.
    Tune(TuneResponse),
    /// A tune request the daemon refused under load — queue full or
    /// deadline passed — correlated by `id` like a tune answer. A typed
    /// rejection, not an `Error`: protocol and kernel errors stay
    /// distinguishable from deliberate load shedding.
    Rejected {
        /// The correlation id of the refused [`Request::Tune`].
        id: u64,
        /// Why it was refused.
        reason: RejectReason,
    },
    /// Answer to [`Request::List`].
    Models {
        /// Every registry model, serveable or not.
        models: Vec<ModelSummary>,
    },
    /// Answer to [`Request::Describe`] — `None` for an unknown id.
    Description {
        /// The human-readable description.
        text: Option<String>,
    },
    /// Answer to [`Request::Stats`].
    Stats(ServeStats),
    /// Acknowledgement of `SetWorkers`/`Ping`/`Shutdown`.
    Ok,
    /// A malformed frame or unhandled request.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// Serving counters, reported by [`Request::Stats`] and printed at shutdown.
///
/// The degradation counters (DESIGN.md §17) are the operator's overload
/// dashboard: `shed_requests`/`deadline_expired` say how much traffic was
/// refused and why, `queue_depth` is the live backlog watermark, and
/// `reloads` counts hot model swaps picked up from the store without a
/// restart. SERVING.md "Overload behavior" tabulates what to watch.
///
/// ```
/// use pnp_serve::{ServeStats, PROTOCOL_VERSION};
///
/// let stats = ServeStats {
///     requests: 872,
///     shed_requests: 120,
///     deadline_expired: 8,
///     queue_depth: 3,
///     reloads: 1,
///     protocol: PROTOCOL_VERSION,
///     ..ServeStats::default()
/// };
/// // Every tune request was either answered (`requests`) or refused with
/// // a typed rejection — the three counters partition offered traffic.
/// let offered = stats.requests + stats.shed_requests + stats.deadline_expired;
/// assert_eq!(offered, 1000);
/// assert!(stats.reloads > 0, "the daemon picked up a store update live");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Tune requests answered (success or error) since startup.
    pub requests: u64,
    /// Dispatcher batches executed.
    pub batches: u64,
    /// Largest batch executed.
    pub max_batch_seen: u64,
    /// Fused objective groups dispatched: within a dispatcher batch,
    /// requests for the same machine and objective run as one
    /// block-diagonal forward per fold model (DESIGN.md §15).
    pub fused_batches: u64,
    /// Tune requests carried by fused groups (every request that reached a
    /// replica, including ones that failed kernel resolution in-slot).
    pub fused_graphs: u64,
    /// Largest fused group — the most graphs one block-diagonal forward
    /// has carried.
    pub max_fused_batch: u64,
    /// Machines with a ready service.
    pub machines: Vec<String>,
    /// Grids that restored cleanly at startup.
    pub grids_loaded: usize,
    /// Grids skipped at startup (unfit / corrupt / unjoined).
    pub grids_skipped: usize,
    /// Current batch worker count (0 = auto).
    pub workers: usize,
    /// Tune requests refused at admission because the dispatcher queue was
    /// at `--max-queue` ([`RejectReason::Overloaded`]).
    pub shed_requests: u64,
    /// Tune requests whose `deadline_ms` budget ran out in the queue
    /// ([`RejectReason::DeadlineExceeded`]).
    pub deadline_expired: u64,
    /// Tune requests admitted but not yet dispatched — the live backlog
    /// gauge. Admission sheds once this reaches `--max-queue`.
    pub queue_depth: u64,
    /// Completed hot model reloads: store-generation changes picked up by
    /// the registry watcher and swapped in without a restart.
    pub reloads: u64,
    /// Protocol revision of the daemon ([`PROTOCOL_VERSION`]).
    pub protocol: u32,
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    assert!(
        payload.len() <= MAX_FRAME,
        "outgoing frame exceeds MAX_FRAME"
    );
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean end-of-stream
/// (EOF before any length byte); anything else incomplete is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, String> {
    let mut len_bytes = [0u8; 4];
    let (first, rest) = len_bytes.split_at_mut(1);
    match r.read(first) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(format!("read length: {e}")),
    }
    r.read_exact(rest)
        .map_err(|e| format!("read length: {e}"))?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(format!("frame length {len} exceeds MAX_FRAME {MAX_FRAME}"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| format!("read payload: {e}"))?;
    Ok(Some(payload))
}

/// Serializes and writes one message.
pub fn write_message<T: Serialize>(w: &mut impl Write, message: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(message)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    write_frame(w, json.as_bytes())
}

/// Reads and parses one message; `Ok(None)` on clean end-of-stream.
pub fn read_message<T: Deserialize>(r: &mut impl Read) -> Result<Option<T>, String> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    serde_json::from_str(text)
        .map(Some)
        .map_err(|e| format!("malformed message: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some(&b"world"[..])
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors_not_hangs() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&((MAX_FRAME as u32) + 1).to_be_bytes());
        assert!(read_frame(&mut Cursor::new(oversized)).is_err());
        let mut truncated = Vec::new();
        truncated.extend_from_slice(&8u32.to_be_bytes());
        truncated.extend_from_slice(b"abc");
        assert!(read_frame(&mut Cursor::new(truncated)).is_err());
    }

    #[test]
    fn messages_round_trip_through_the_envelope() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Request::Ping).unwrap();
        write_message(&mut buf, &Request::Describe { id: "x".into() }).unwrap();
        write_message(&mut buf, &Response::Ok).unwrap();
        let mut cursor = Cursor::new(buf);
        assert!(matches!(
            read_message::<Request>(&mut cursor).unwrap(),
            Some(Request::Ping)
        ));
        match read_message::<Request>(&mut cursor).unwrap() {
            Some(Request::Describe { id }) => assert_eq!(id, "x"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            read_message::<Response>(&mut cursor).unwrap(),
            Some(Response::Ok)
        ));
        assert!(read_message::<Response>(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn garbage_payloads_are_parse_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"not json").unwrap();
        assert!(read_message::<Request>(&mut Cursor::new(buf)).is_err());
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0xFF, 0xFE]).unwrap();
        assert!(read_message::<Request>(&mut Cursor::new(buf)).is_err());
    }
}
