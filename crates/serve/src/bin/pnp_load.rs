//! The serve-path load generator behind `BENCH_serve.json` (SERVING.md
//! "Measuring"): replays paper-suite regions plus `pnp_ir::gen` synthetic
//! kernels against a running `pnp_serve` daemon, sweeping the daemon's
//! batch worker count and reporting sustained throughput and p50/p99
//! latency per phase — the same trajectory idiom as the other two perf
//! harnesses (`BENCH_dataset_build.json`, `BENCH_loocv_train.json`).
//!
//! ```text
//! pnp_load (--addr HOST:PORT | --port-file PATH) [--machine haswell]
//!          [--workers 1,2,4,8] [--requests N] [--inflight N] [--rate R]
//!          [--deadline-ms MS] [--gen-kernels N] [--out BENCH_serve.json]
//!          [--min-speedup S:T] [--min-throughput R] [--max-p99-ms MS]
//!          [--require-sheds] [--wait-machine NAME] [--wait-secs N]
//!          [--shutdown]
//! ```
//!
//! By default the loop is closed with `--inflight` requests outstanding;
//! `--rate R` switches to an open loop offering `R` requests/s (still
//! capped at `--inflight` outstanding so an overloaded daemon applies
//! backpressure instead of unbounded queueing). The `--min-speedup S:T`
//! gate requires batched throughput at `T` workers to reach `S×` the
//! 1-worker anchor, with the usual fewer-cores auto-skip; `--min-throughput`
//! is an absolute floor on the best phase.
//!
//! Degradation-aware gates (SERVING.md "Overload behavior"): typed
//! `Rejected` responses are counted as sheds or deadline rejections — never
//! as protocol errors, which must stay zero. Latency percentiles cover
//! *accepted* requests only. `--require-sheds` fails the run when the
//! daemon shed nothing (the overload smoke asserts backpressure actually
//! engaged); `--max-p99-ms` bounds every phase's accepted-p99 — together
//! they demonstrate that under saturation the daemon refuses load fast
//! instead of serving everything slowly. `--wait-machine NAME` polls the
//! daemon until NAME appears in its serving list (up to `--wait-secs`,
//! default 30) — how the reload smoke synchronizes with the registry
//! watcher.

use pnp_bench::{
    banner, bool_flag_from, enforce_min_speedup, percentile, string_flag_from, Provenance,
};
use pnp_core::serving::{KernelInput, TuneObjective, TuneRequest};
use pnp_serve::{read_message, write_message, Client, RejectReason, Request, Response};
use serde::Serialize;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Run {
    workers: usize,
    requests: usize,
    accepted: usize,
    shed: usize,
    deadline_rejected: usize,
    errors: usize,
    wall_s: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    speedup_vs_1w: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    machine: String,
    suite_kernels: usize,
    generated_kernels: usize,
    requests_per_phase: usize,
    inflight: usize,
    rate_rps: f64,
    deadline_ms: u64,
    grids_loaded: usize,
    grids_skipped: usize,
    max_batch_seen: u64,
    fused_batches: u64,
    fused_graphs: u64,
    max_fused_batch: u64,
    shed_requests: u64,
    deadline_expired: u64,
    reloads: u64,
    context: Provenance,
    runs: Vec<Run>,
}

/// What one measured phase observed on the wire.
struct PhaseOutcome {
    wall_s: f64,
    /// Latencies of accepted (answered) requests only, in milliseconds.
    latencies: Vec<f64>,
    shed: usize,
    deadline_rejected: usize,
    errors: usize,
}

/// The request mix: every region of the paper suite as a `Source` input
/// plus `gen_kernels` generated kernels, round-robined. Returns
/// `(templates, suite count, generated count)`.
fn workload(
    machine: &str,
    gen_kernels: usize,
    deadline_ms: u64,
) -> (Vec<TuneRequest>, usize, usize) {
    let mut kernels: Vec<KernelInput> = Vec::new();
    let mut suite_kernels = 0;
    for app in pnp_benchmarks::full_suite() {
        let regions: Vec<_> = app.regions.iter().map(|r| r.source.clone()).collect();
        for region in &app.regions {
            kernels.push(KernelInput::Source {
                app: app.name.clone(),
                regions: regions.clone(),
                region: region.name().to_string(),
            });
            suite_kernels += 1;
        }
    }
    for (i, kernel) in pnp_ir::gen::corpus(pnp_core::validate::DEFAULT_OOD_SEED, gen_kernels)
        .into_iter()
        .enumerate()
    {
        kernels.push(KernelInput::Source {
            app: format!("gen{i}"),
            region: kernel.source.name.clone(),
            regions: vec![kernel.source],
        });
    }
    let templates = kernels
        .into_iter()
        .enumerate()
        .map(|(i, kernel)| TuneRequest {
            id: i as u64,
            machine: machine.to_string(),
            objective: if i % 2 == 0 {
                TuneObjective::Time { power_idx: 0 }
            } else {
                TuneObjective::Edp
            },
            deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
            kernel,
        })
        .collect();
    (templates, suite_kernels, gen_kernels)
}

/// One measured phase: `requests` tune requests pipelined over the
/// connection, `inflight` outstanding (closed loop), or paced at `rate`/s
/// (open loop) when `rate > 0`. Typed rejections are tallied, not treated
/// as errors — a shed request still consumes one offered slot and one
/// response frame.
fn run_phase(
    stream: &TcpStream,
    templates: &[TuneRequest],
    requests: usize,
    inflight: usize,
    rate: f64,
) -> PhaseOutcome {
    let sent_at: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let (credit_tx, credit_rx) = mpsc::channel::<()>();
    let started = Instant::now();

    let reader_sent_at = sent_at.clone();
    let mut read_stream = stream.try_clone().expect("clone stream for reading");
    let reader = std::thread::spawn(move || {
        let mut latencies = Vec::with_capacity(requests);
        let mut shed = 0usize;
        let mut deadline_rejected = 0usize;
        let mut errors = 0usize;
        for _ in 0..requests {
            let response = read_message::<Response>(&mut read_stream)
                .expect("read response")
                .expect("server closed mid-phase");
            let done = Instant::now();
            match response {
                Response::Tune(tune) => {
                    let sent = reader_sent_at
                        .lock()
                        .unwrap()
                        .remove(&tune.id)
                        .expect("response correlates to a sent request");
                    latencies.push(done.duration_since(sent).as_secs_f64() * 1e3);
                    if tune.error.is_some() {
                        errors += 1;
                    }
                }
                Response::Rejected { id, reason } => {
                    reader_sent_at
                        .lock()
                        .unwrap()
                        .remove(&id)
                        .expect("rejection correlates to a sent request");
                    match reason {
                        RejectReason::Overloaded => shed += 1,
                        RejectReason::DeadlineExceeded => deadline_rejected += 1,
                    }
                }
                other => panic!("unexpected response in tune phase: {other:?}"),
            }
            let _ = credit_tx.send(());
        }
        (latencies, shed, deadline_rejected, errors)
    });

    let mut write_stream = stream.try_clone().expect("clone stream for writing");
    for i in 0..requests {
        if i >= inflight {
            credit_rx.recv().expect("reader alive");
        }
        if rate > 0.0 {
            let due = started + Duration::from_secs_f64(i as f64 / rate);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        let mut request = templates[i % templates.len()].clone();
        request.id = i as u64;
        sent_at.lock().unwrap().insert(request.id, Instant::now());
        write_message(&mut write_stream, &Request::Tune(request)).expect("send request");
    }
    let (latencies, shed, deadline_rejected, errors) = reader.join().expect("reader thread");
    PhaseOutcome {
        wall_s: started.elapsed().as_secs_f64(),
        latencies,
        shed,
        deadline_rejected,
        errors,
    }
}

fn main() {
    banner(
        "pnp_load",
        "serve-path load generator: throughput + latency vs daemon batch workers",
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| string_flag_from(&args, name);
    let addr = match (flag("--addr"), flag("--port-file")) {
        (Some(addr), _) => addr,
        (None, Some(path)) => {
            let port = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read port file {path}: {e}"));
            format!("127.0.0.1:{}", port.trim())
        }
        (None, None) => panic!("pass --addr HOST:PORT or --port-file PATH"),
    };
    let machine = flag("--machine").unwrap_or_else(|| "haswell".into());
    let workers: Vec<usize> = flag("--workers")
        .unwrap_or_else(|| "1,2,4,8".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--workers takes e.g. 1,2,4"))
        .collect();
    assert!(!workers.is_empty(), "--workers list must be non-empty");
    let requests: usize = flag("--requests").map_or(300, |v| v.parse().expect("--requests N"));
    let inflight: usize = flag("--inflight").map_or(32, |v| v.parse().expect("--inflight N"));
    let rate: f64 = flag("--rate").map_or(0.0, |v| v.parse().expect("--rate R"));
    let deadline_ms: u64 =
        flag("--deadline-ms").map_or(0, |v| v.parse().expect("--deadline-ms MS"));
    let gen_kernels: usize =
        flag("--gen-kernels").map_or(24, |v| v.parse().expect("--gen-kernels N"));
    let out = flag("--out").unwrap_or_else(|| "BENCH_serve.json".into());
    let min_speedup = flag("--min-speedup").map(|v| {
        let (s, t) = v.split_once(':').expect("--min-speedup S:T, e.g. 1.2:4");
        (
            s.parse::<f64>().expect("--min-speedup: S must be a float"),
            t.parse::<usize>()
                .expect("--min-speedup: T must be a worker count"),
        )
    });
    let min_throughput: Option<f64> =
        flag("--min-throughput").map(|v| v.parse().expect("--min-throughput R"));
    let max_p99_ms: Option<f64> = flag("--max-p99-ms").map(|v| v.parse().expect("--max-p99-ms MS"));
    let require_sheds = bool_flag_from(&args, "--require-sheds");
    let wait_secs: u64 = flag("--wait-secs").map_or(30, |v| v.parse().expect("--wait-secs N"));

    let (templates, suite_kernels, generated_kernels) =
        workload(&machine, gen_kernels, deadline_ms);
    eprintln!(
        "[pnp_load] workload: {suite_kernels} suite kernel(s) + {generated_kernels} generated, \
         {requests} request(s)/phase, inflight {inflight}, machine {machine}"
    );

    let mut control = Client::connect(&addr).unwrap_or_else(|e| panic!("connect {addr}: {e}"));
    match control.request(&Request::Ping) {
        Ok(Response::Ok) => eprintln!("[pnp_load] daemon at {addr} is live"),
        other => panic!("daemon ping failed: {other:?}"),
    }

    if let Some(wanted) = flag("--wait-machine") {
        // The registry watcher reloads asynchronously; poll until the
        // machine shows up in the serving list or the budget runs out.
        let waiting_since = Instant::now();
        loop {
            let machines = match control.request(&Request::Stats) {
                Ok(Response::Stats(stats)) => stats.machines,
                other => panic!("Stats failed while waiting for machine: {other:?}"),
            };
            if machines.iter().any(|m| m == &wanted) {
                eprintln!(
                    "[pnp_load] machine {wanted} is now served ({:.1}s wait)",
                    waiting_since.elapsed().as_secs_f64()
                );
                break;
            }
            assert!(
                waiting_since.elapsed().as_secs() < wait_secs,
                "machine {wanted} did not appear within --wait-secs {wait_secs} \
                 (serving: {machines:?})"
            );
            std::thread::sleep(Duration::from_millis(200));
        }
    }

    let mut runs: Vec<Run> = Vec::new();
    for &w in &workers {
        match control.request(&Request::SetWorkers { workers: w }) {
            Ok(Response::Ok) => {}
            other => panic!("SetWorkers({w}) failed: {other:?}"),
        }
        let stream = Client::connect(&addr)
            .unwrap_or_else(|e| panic!("connect {addr}: {e}"))
            .into_stream();
        let outcome = run_phase(&stream, &templates, requests, inflight, rate);
        let accepted = outcome.latencies.len();
        let throughput = accepted as f64 / outcome.wall_s;
        let anchor = runs.first().map_or(throughput, |r| r.throughput_rps);
        let run = Run {
            workers: w,
            requests,
            accepted,
            shed: outcome.shed,
            deadline_rejected: outcome.deadline_rejected,
            errors: outcome.errors,
            wall_s: outcome.wall_s,
            throughput_rps: throughput,
            p50_ms: percentile(&outcome.latencies, 50.0),
            p99_ms: percentile(&outcome.latencies, 99.0),
            speedup_vs_1w: if anchor > 0.0 {
                throughput / anchor
            } else {
                0.0
            },
        };
        eprintln!(
            "[pnp_load] workers {w}: {:.1} req/s accepted, p50 {:.2} ms, p99 {:.2} ms, \
             {} shed, {} deadline-rejected, {} error(s), speedup {:.2}x",
            run.throughput_rps,
            run.p50_ms,
            run.p99_ms,
            run.shed,
            run.deadline_rejected,
            run.errors,
            run.speedup_vs_1w
        );
        assert_eq!(
            run.errors, 0,
            "served workload must not produce error responses (typed rejections are not errors)"
        );
        runs.push(run);
    }

    let stats = match control.request(&Request::Stats) {
        Ok(Response::Stats(stats)) => stats,
        other => panic!("Stats failed: {other:?}"),
    };
    if bool_flag_from(&args, "--shutdown") {
        match control.request(&Request::Shutdown) {
            Ok(Response::Ok) => eprintln!("[pnp_load] daemon asked to shut down"),
            other => eprintln!("[pnp_load] shutdown request failed: {other:?}"),
        }
    }

    let context = Provenance::capture();
    let available = context.available_parallelism;
    let report = Report {
        bench: "serve".into(),
        machine,
        suite_kernels,
        generated_kernels,
        requests_per_phase: requests,
        inflight,
        rate_rps: rate,
        deadline_ms,
        grids_loaded: stats.grids_loaded,
        grids_skipped: stats.grids_skipped,
        max_batch_seen: stats.max_batch_seen,
        fused_batches: stats.fused_batches,
        fused_graphs: stats.fused_graphs,
        max_fused_batch: stats.max_fused_batch,
        shed_requests: stats.shed_requests,
        deadline_expired: stats.deadline_expired,
        reloads: stats.reloads,
        context,
        runs,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write timing JSON");
    eprintln!("[pnp_load] wrote {out}");
    eprintln!(
        "[pnp_load] daemon counters: {} shed, {} deadline-expired, {} hot reload(s)",
        stats.shed_requests, stats.deadline_expired, stats.reloads
    );

    if require_sheds {
        let total_rejected: usize = report
            .runs
            .iter()
            .map(|r| r.shed + r.deadline_rejected)
            .sum();
        if total_rejected == 0 {
            eprintln!(
                "[pnp_load] FAIL: --require-sheds was set but the daemon rejected nothing — \
                 backpressure never engaged"
            );
            std::process::exit(1);
        }
        eprintln!("[pnp_load] shed gate passed: {total_rejected} typed rejection(s) observed");
    }
    if let Some(bound) = max_p99_ms {
        for run in &report.runs {
            if run.accepted == 0 {
                continue;
            }
            if run.p99_ms > bound {
                eprintln!(
                    "[pnp_load] FAIL: workers {} accepted-p99 {:.2} ms exceeds --max-p99-ms {:.2}",
                    run.workers, run.p99_ms, bound
                );
                std::process::exit(1);
            }
        }
        eprintln!("[pnp_load] p99 gate passed: every phase's accepted-p99 <= {bound:.2} ms");
    }
    if let Some(floor) = min_throughput {
        let best = report
            .runs
            .iter()
            .map(|r| r.throughput_rps)
            .fold(0.0f64, f64::max);
        if best < floor {
            eprintln!(
                "[pnp_load] FAIL: best throughput {best:.1} req/s is below the \
                 --min-throughput floor {floor:.1}"
            );
            std::process::exit(1);
        }
        eprintln!("[pnp_load] throughput floor passed: {best:.1} >= {floor:.1} req/s");
    }
    let speedups: Vec<(usize, f64)> = report
        .runs
        .iter()
        .map(|r| (r.workers, r.speedup_vs_1w))
        .collect();
    enforce_min_speedup("pnp_load", min_speedup, &speedups, available);
}
