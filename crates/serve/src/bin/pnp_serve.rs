//! The tuning daemon (SERVING.md): loads every model grid from the artifact
//! store once at startup, then serves tune requests over the
//! length-prefixed socket protocol with cross-connection batching,
//! admission control, per-request deadlines, and hot model reload.
//!
//! ```text
//! pnp_serve --store DIR [--addr 127.0.0.1:0] [--port-file PATH]
//!           [--replicas N] [--workers N] [--max-batch N] [--max-queue N]
//!           [--reload-poll-ms MS] [--stdio]
//! ```
//!
//! `--store` falls back to the `PNP_STORE` environment variable. With
//! `--addr` port 0 (the default) the OS picks a free port; `--port-file`
//! writes the bound port as decimal text once the listener is ready, which
//! is how CI and `pnp_load --port-file` synchronize startup. `--stdio`
//! serves a single session over stdin/stdout instead of a socket.
//!
//! `--max-queue` bounds queued-but-unserved tune requests across all
//! connections; beyond it the daemon sheds with typed `Rejected` responses
//! (DESIGN.md §17). The default `0` means auto: `max_batch ×` the resolved
//! worker count — enough headroom to keep every worker fed with a full
//! batch, small enough that queueing delay stays bounded. `--reload-poll-ms`
//! sets how often the registry watcher checks the store's index generation
//! for hot reload (default 1000; `0` disables the watcher).

use pnp_bench::{banner, bool_flag_from, string_flag_from};
use pnp_core::registry::ModelRegistry;
use pnp_openmp::Threads;
use pnp_serve::{serve, serve_stdio, EngineConfig, ServeConfig, ServeEngine, DEFAULT_MAX_BATCH};
use pnp_store::Store;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usize_flag(args: &[String], flag: &str, default: usize) -> usize {
    string_flag_from(args, flag)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} takes an integer"))
        })
        .unwrap_or(default)
}

fn main() {
    banner(
        "pnp_serve",
        "tuning-as-a-service daemon on the model registry",
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    let store = match string_flag_from(&args, "--store") {
        Some(dir) => Store::open(dir).with_env_modes(),
        None => Store::from_env().unwrap_or_else(|| {
            eprintln!("[pnp-serve] no store configured — pass --store DIR or set PNP_STORE");
            std::process::exit(2);
        }),
    };
    eprintln!("[pnp-serve] store: {}", store.root().display());

    let config = EngineConfig {
        replicas: usize_flag(&args, "--replicas", 0),
        workers: usize_flag(&args, "--workers", 0),
    };
    let max_batch = usize_flag(&args, "--max-batch", DEFAULT_MAX_BATCH).max(1);
    let max_queue = match usize_flag(&args, "--max-queue", 0) {
        // Auto: a full batch per worker may be in flight, and as much again
        // may wait — beyond that, shedding beats queueing.
        0 => {
            let workers = match config.workers {
                0 => Threads::Auto.resolve(),
                n => n,
            };
            max_batch * workers.max(1)
        }
        n => n,
    };
    let reload_poll_ms = usize_flag(&args, "--reload-poll-ms", 1000);

    let registry = ModelRegistry::open(store);
    eprintln!(
        "[pnp-serve] registry: {} dataset(s), {} model grid(s)",
        registry.datasets().len(),
        registry.models().len()
    );
    let (engine, report) = ServeEngine::start(registry, &config);
    eprintln!(
        "[pnp-serve] cold start: {} grid(s) loaded, {} skipped",
        report.grids_loaded, report.grids_skipped
    );
    let machines = engine.machines();
    if machines.is_empty() {
        eprintln!("[pnp-serve] no machine has a serveable scenario1+scenario2 pair — exiting");
        std::process::exit(2);
    }
    eprintln!("[pnp-serve] serving machines: {}", machines.join(", "));
    eprintln!("[pnp-serve] admission: max {max_queue} queued request(s), batches of {max_batch}");
    let engine = Arc::new(engine);
    let serve_config = ServeConfig::new(max_batch, max_queue, Arc::new(Instant::now));

    let watcher_stop = Arc::new(AtomicBool::new(false));
    let watcher = match reload_poll_ms {
        0 => {
            eprintln!("[pnp-serve] registry watcher disabled (--reload-poll-ms 0)");
            None
        }
        ms => {
            eprintln!("[pnp-serve] registry watcher: polling store generation every {ms} ms");
            Some(
                engine.spawn_reload_watcher(Duration::from_millis(ms as u64), watcher_stop.clone()),
            )
        }
    };

    if bool_flag_from(&args, "--stdio") {
        serve_stdio(engine.clone(), serve_config);
    } else {
        let addr = string_flag_from(&args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into());
        let listener =
            TcpListener::bind(&addr).unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
        let local = listener
            .local_addr()
            .expect("bound listener has an address");
        eprintln!("[pnp-serve] listening on {local}");
        if let Some(path) = string_flag_from(&args, "--port-file") {
            // Write-then-rename so a watcher never reads a half-written port.
            let tmp = format!("{path}.tmp");
            std::fs::write(&tmp, format!("{}\n", local.port()))
                .and_then(|()| std::fs::rename(&tmp, &path))
                .unwrap_or_else(|e| panic!("cannot write port file {path}: {e}"));
            eprintln!("[pnp-serve] port file: {path}");
        }
        serve(listener, engine.clone(), serve_config);
    }

    watcher_stop.store(true, Ordering::SeqCst);
    if let Some(handle) = watcher {
        let _ = handle.join();
    }
    let stats = engine.stats();
    eprintln!(
        "[pnp-serve] shutdown after {} request(s) in {} batch(es) (max batch {})",
        stats.requests, stats.batches, stats.max_batch_seen
    );
    eprintln!(
        "[pnp-serve] fused inference: {} graph(s) in {} fused group(s) (max fused {})",
        stats.fused_graphs, stats.fused_batches, stats.max_fused_batch
    );
    eprintln!(
        "[pnp-serve] degradation: {} shed, {} deadline-expired, {} hot reload(s)",
        stats.shed_requests, stats.deadline_expired, stats.reloads
    );
}
