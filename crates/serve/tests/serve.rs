//! End-to-end tests of the serve path (ISSUE 7): the daemon must serve
//! predictions **bit-identical** to the offline `TuneService` for the same
//! kernels — through the registry cold start, the batching dispatcher, and
//! a real socket — and the registry/control surface must answer over the
//! wire. One tiny trained fixture (built once per process) backs all tests.

use pnp_benchmarks::builders::{matmul_kernel, small_boundary_kernel, streaming_kernel};
use pnp_benchmarks::Application;
use pnp_core::artifact::ArtifactStore;
use pnp_core::registry::ModelRegistry;
use pnp_core::serving::{KernelInput, TuneObjective, TunePrediction, TuneRequest, TuneService};
use pnp_core::training::{
    train_scenario1_models_cached, train_scenario2_model_cached, TrainSettings, TrainedGrid,
};
use pnp_core::Dataset;
use pnp_graph::Vocabulary;
use pnp_machine::haswell;
use pnp_openmp::Threads;
use pnp_serve::{serve, Client, EngineConfig, Request, Response, ServeEngine};
use pnp_store::Store;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

fn tiny_apps() -> Vec<Application> {
    vec![
        Application::new("a1", vec![matmul_kernel("a1_r0", 120, 120, 120)]),
        Application::new("a2", vec![streaming_kernel("a2_r0", 80_000, 2, 1.0)]),
        Application::new("a3", vec![small_boundary_kernel("a3_r0", 700, 2)]),
    ]
}

fn tiny_settings() -> TrainSettings {
    TrainSettings {
        epochs: 4,
        hidden_dim: 8,
        rgcn_layers: 1,
        fc_hidden: 16,
        folds: 3,
        train_threads: Threads::Fixed(1),
        ..TrainSettings::quick()
    }
}

struct Fixture {
    dir: PathBuf,
    ds: Dataset,
    settings: TrainSettings,
    s1: TrainedGrid,
    s2: TrainedGrid,
}

/// Trains the tiny fixture once per test process, into a store directory
/// the registry/daemon tests then cold-start from.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("pnp_serve_it_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir);
        let settings = tiny_settings();
        let ds = store.load_or_build_dataset(
            &haswell(),
            &tiny_apps(),
            &Vocabulary::standard(),
            Threads::Fixed(1),
        );
        let cache = store.for_dataset(&ds);
        train_scenario1_models_cached(&ds, &settings, false, Some(&cache));
        train_scenario2_model_cached(&ds, &settings, false, Some(&cache));
        let s1 = cache
            .store()
            .load(&cache.scenario1_key(&settings, false))
            .expect("scenario1 grid cached");
        let s2 = cache
            .store()
            .load(&cache.scenario2_key(&settings, false))
            .expect("scenario2 grid cached");
        Fixture {
            dir,
            ds,
            settings,
            s1,
            s2,
        }
    })
}

/// The workload both paths replay: every fixture region as source input and
/// as a pre-encoded graph, plus generated kernels, across both objectives.
fn workload(ds: &Dataset) -> Vec<TuneRequest> {
    let apps = tiny_apps();
    let mut kernels = Vec::new();
    for app in &apps {
        let regions: Vec<_> = app.regions.iter().map(|r| r.source.clone()).collect();
        for region in &app.regions {
            kernels.push(KernelInput::Source {
                app: app.name.clone(),
                regions: regions.clone(),
                region: region.name().to_string(),
            });
        }
    }
    for record in &ds.regions {
        kernels.push(KernelInput::Graph(record.graph.clone()));
    }
    for (i, kernel) in pnp_ir::gen::corpus(0xD17A, 8).into_iter().enumerate() {
        kernels.push(KernelInput::Source {
            app: format!("gen{i}"),
            region: kernel.source.name.clone(),
            regions: vec![kernel.source],
        });
    }
    let num_powers = ds.space.power_levels.len();
    kernels
        .into_iter()
        .enumerate()
        .map(|(i, kernel)| TuneRequest {
            id: i as u64,
            machine: "haswell".into(),
            objective: if i % 2 == 0 {
                TuneObjective::Time {
                    power_idx: i % num_powers,
                }
            } else {
                TuneObjective::Edp
            },
            kernel,
        })
        .collect()
}

/// The offline reference: predictions straight from `TuneService`, no
/// registry, no socket, no batching.
fn offline_predictions(fx: &Fixture, requests: &[TuneRequest]) -> Vec<TunePrediction> {
    let mut service = TuneService::restore(
        &fx.ds,
        &fx.settings,
        &fx.s1,
        &fx.s2,
        "time-model",
        "edp-model",
    )
    .expect("offline service restores");
    requests
        .iter()
        .map(|r| service.tune(&r.kernel, r.objective).expect("offline tune"))
        .collect()
}

fn start_engine(replicas: usize, workers: usize) -> Arc<ServeEngine> {
    let fx = fixture();
    let registry = ModelRegistry::open(Store::open(&fx.dir));
    let (engine, report) = ServeEngine::start(registry, &EngineConfig { replicas, workers });
    // The cold start must have restored every grid in the store.
    assert_eq!(report.grids_loaded, 2, "{:?}", report.lines);
    assert_eq!(report.grids_skipped, 0, "{:?}", report.lines);
    assert_eq!(engine.machines(), vec!["haswell".to_string()]);
    Arc::new(engine)
}

fn spawn_server(engine: Arc<ServeEngine>, max_batch: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || serve(listener, engine, max_batch));
    addr
}

#[test]
fn served_predictions_are_bit_identical_to_the_offline_path() {
    let fx = fixture();
    let requests = workload(&fx.ds);
    let offline = offline_predictions(fx, &requests);

    let engine = start_engine(2, 2);
    let addr = spawn_server(engine, 16);
    let mut client = Client::connect(addr).expect("connect");
    for (request, expected) in requests.iter().zip(&offline) {
        let response = client
            .request(&Request::Tune(request.clone()))
            .expect("tune request");
        let Response::Tune(tune) = response else {
            panic!("unexpected response {response:?}");
        };
        assert_eq!(tune.id, request.id);
        let got = tune
            .prediction
            .unwrap_or_else(|| panic!("request {} failed: {:?}", request.id, tune.error));
        // Registry model ids differ from the offline labels; the predicted
        // class, configuration point, and expected gain must be identical
        // to the bit.
        assert_eq!(got.class, expected.class, "request {}", request.id);
        assert_eq!(got.point, expected.point, "request {}", request.id);
        assert_eq!(
            got.expected_gain.to_bits(),
            expected.expected_gain.to_bits(),
            "request {}",
            request.id
        );
    }
    let _ = client.request(&Request::Shutdown);
}

#[test]
fn batched_and_single_paths_agree_for_every_worker_count() {
    let fx = fixture();
    let requests = workload(&fx.ds);
    let engine = start_engine(3, 1);
    let singles: Vec<_> = requests.iter().map(|r| engine.tune(r)).collect();
    for workers in [1usize, 2, 4] {
        engine.set_workers(workers);
        let batched = engine.tune_batch(&requests);
        assert_eq!(batched.len(), singles.len());
        for (single, batch) in singles.iter().zip(&batched) {
            assert_eq!(single.id, batch.id);
            assert_eq!(
                single.prediction, batch.prediction,
                "workers={workers} id={}",
                single.id
            );
            assert_eq!(single.error, batch.error);
        }
    }
}

/// ISSUE 8: the whole workload pipelined over one connection so the
/// dispatcher drains it into fused objective groups — every daemon response
/// must still match the offline single-graph path to the bit, and the fused
/// counters must show block-diagonal batching actually happened.
#[test]
fn fused_daemon_batches_are_bit_identical_to_offline_predictions() {
    let fx = fixture();
    let requests = workload(&fx.ds);
    let offline = offline_predictions(fx, &requests);

    let engine = start_engine(2, 2);
    let addr = spawn_server(engine, requests.len().max(16));
    let mut client = Client::connect(addr).expect("connect");
    // Pipeline every request before reading a single response: the
    // dispatcher sees them all queued and fuses per (machine, objective).
    for request in &requests {
        client
            .send(&Request::Tune(request.clone()))
            .expect("send tune");
    }
    let mut responses = Vec::with_capacity(requests.len());
    for _ in &requests {
        let Response::Tune(tune) = client.receive().expect("receive tune") else {
            panic!("Tune must answer Tune");
        };
        responses.push(tune);
    }
    responses.sort_by_key(|t| t.id);
    for (tune, (request, expected)) in responses.iter().zip(requests.iter().zip(&offline)) {
        assert_eq!(tune.id, request.id);
        let got = tune
            .prediction
            .as_ref()
            .unwrap_or_else(|| panic!("request {} failed: {:?}", request.id, tune.error));
        assert_eq!(got.class, expected.class, "request {}", request.id);
        assert_eq!(got.point, expected.point, "request {}", request.id);
        assert_eq!(
            got.expected_gain.to_bits(),
            expected.expected_gain.to_bits(),
            "request {}",
            request.id
        );
    }

    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("Stats must answer Stats");
    };
    assert_eq!(stats.requests, requests.len() as u64);
    // Every tune request reached a replica through a fused group...
    assert_eq!(stats.fused_graphs, requests.len() as u64);
    // ...and grouping actually fused: fewer groups than requests, with at
    // least one group carrying several graphs.
    assert!(
        stats.fused_batches < stats.fused_graphs,
        "fused_batches={} fused_graphs={}",
        stats.fused_batches,
        stats.fused_graphs
    );
    assert!(stats.max_fused_batch > 1, "{stats:?}");
    let _ = client.request(&Request::Shutdown);
}

#[test]
fn registry_and_control_surface_answer_over_the_wire() {
    let engine = start_engine(1, 1);
    let addr = spawn_server(engine, 8);
    let mut client = Client::connect(addr).expect("connect");

    assert!(matches!(
        client.request(&Request::Ping).expect("ping"),
        Response::Ok
    ));

    let Response::Models { models } = client.request(&Request::List).expect("list") else {
        panic!("List must answer Models");
    };
    assert_eq!(models.len(), 2);
    assert!(models.iter().all(|m| m.machine == "haswell"));
    let id = models[0].id.clone();

    let Response::Description { text } = client
        .request(&Request::Describe { id: id.clone() })
        .expect("describe")
    else {
        panic!("Describe must answer Description");
    };
    let text = text.expect("known id describes");
    assert!(text.contains(&id) && text.contains("dataset:"), "{text}");
    let Response::Description { text } = client
        .request(&Request::Describe { id: "nope".into() })
        .expect("describe unknown")
    else {
        panic!("Describe must answer Description");
    };
    assert!(text.is_none());

    assert!(matches!(
        client
            .request(&Request::SetWorkers { workers: 2 })
            .expect("set workers"),
        Response::Ok
    ));
    let fx = fixture();
    let request = TuneRequest {
        id: 9,
        machine: "haswell".into(),
        objective: TuneObjective::Edp,
        kernel: KernelInput::Graph(fx.ds.regions[0].graph.clone()),
    };
    let Response::Tune(tune) = client.request(&Request::Tune(request)).expect("tune") else {
        panic!("Tune must answer Tune");
    };
    assert!(tune.prediction.is_some(), "{:?}", tune.error);

    // An unknown machine is an error response, not a dropped connection.
    let request = TuneRequest {
        id: 10,
        machine: "riscv".into(),
        objective: TuneObjective::Edp,
        kernel: KernelInput::Graph(fx.ds.regions[0].graph.clone()),
    };
    let Response::Tune(tune) = client.request(&Request::Tune(request)).expect("tune") else {
        panic!("Tune must answer Tune");
    };
    assert!(tune.error.as_deref().unwrap_or_default().contains("riscv"));

    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("Stats must answer Stats");
    };
    assert_eq!(stats.grids_loaded, 2);
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.machines, vec!["haswell".to_string()]);

    assert!(matches!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::Ok
    ));
}
