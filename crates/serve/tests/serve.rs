//! End-to-end tests of the serve path (ISSUE 7): the daemon must serve
//! predictions **bit-identical** to the offline `TuneService` for the same
//! kernels — through the registry cold start, the batching dispatcher, and
//! a real socket — and the registry/control surface must answer over the
//! wire. One tiny trained fixture (built once per process) backs all tests.
//!
//! ISSUE 10 adds the degradation paths (DESIGN.md §17): per-request
//! deadlines expire into typed rejections (driven by a fake clock, so
//! expiry is deterministic), a full admission queue sheds with typed
//! `Overloaded` rejections while every *accepted* request stays
//! bit-identical to the offline path, and a store update mid-traffic
//! hot-reloads new grids without dropping a single in-flight request.

use pnp_benchmarks::builders::{matmul_kernel, small_boundary_kernel, streaming_kernel};
use pnp_benchmarks::Application;
use pnp_core::artifact::ArtifactStore;
use pnp_core::registry::ModelRegistry;
use pnp_core::serving::{KernelInput, TuneObjective, TunePrediction, TuneRequest, TuneService};
use pnp_core::training::{
    train_scenario1_models_cached, train_scenario2_model_cached, TrainSettings, TrainedGrid,
};
use pnp_core::Dataset;
use pnp_graph::Vocabulary;
use pnp_machine::{haswell, skylake};
use pnp_openmp::Threads;
use pnp_serve::{
    serve, Client, Clock, EngineConfig, RejectReason, Request, Response, ServeConfig, ServeEngine,
};
use pnp_store::Store;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn tiny_apps() -> Vec<Application> {
    vec![
        Application::new("a1", vec![matmul_kernel("a1_r0", 120, 120, 120)]),
        Application::new("a2", vec![streaming_kernel("a2_r0", 80_000, 2, 1.0)]),
        Application::new("a3", vec![small_boundary_kernel("a3_r0", 700, 2)]),
    ]
}

fn tiny_settings() -> TrainSettings {
    TrainSettings {
        epochs: 4,
        hidden_dim: 8,
        rgcn_layers: 1,
        fc_hidden: 16,
        folds: 3,
        train_threads: Threads::Fixed(1),
        ..TrainSettings::quick()
    }
}

struct Fixture {
    dir: PathBuf,
    ds: Dataset,
    settings: TrainSettings,
    s1: TrainedGrid,
    s2: TrainedGrid,
}

/// Trains the tiny fixture once per test process, into a store directory
/// the registry/daemon tests then cold-start from.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("pnp_serve_it_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir);
        let settings = tiny_settings();
        let ds = store.load_or_build_dataset(
            &haswell(),
            &tiny_apps(),
            &Vocabulary::standard(),
            Threads::Fixed(1),
        );
        let cache = store.for_dataset(&ds);
        train_scenario1_models_cached(&ds, &settings, false, Some(&cache));
        train_scenario2_model_cached(&ds, &settings, false, Some(&cache));
        let s1 = cache
            .store()
            .load(&cache.scenario1_key(&settings, false))
            .expect("scenario1 grid cached");
        let s2 = cache
            .store()
            .load(&cache.scenario2_key(&settings, false))
            .expect("scenario2 grid cached");
        Fixture {
            dir,
            ds,
            settings,
            s1,
            s2,
        }
    })
}

/// The workload both paths replay: every fixture region as source input and
/// as a pre-encoded graph, plus generated kernels, across both objectives.
fn workload(ds: &Dataset) -> Vec<TuneRequest> {
    let apps = tiny_apps();
    let mut kernels = Vec::new();
    for app in &apps {
        let regions: Vec<_> = app.regions.iter().map(|r| r.source.clone()).collect();
        for region in &app.regions {
            kernels.push(KernelInput::Source {
                app: app.name.clone(),
                regions: regions.clone(),
                region: region.name().to_string(),
            });
        }
    }
    for record in &ds.regions {
        kernels.push(KernelInput::Graph(record.graph.clone()));
    }
    for (i, kernel) in pnp_ir::gen::corpus(0xD17A, 8).into_iter().enumerate() {
        kernels.push(KernelInput::Source {
            app: format!("gen{i}"),
            region: kernel.source.name.clone(),
            regions: vec![kernel.source],
        });
    }
    let num_powers = ds.space.power_levels.len();
    kernels
        .into_iter()
        .enumerate()
        .map(|(i, kernel)| TuneRequest {
            id: i as u64,
            machine: "haswell".into(),
            objective: if i % 2 == 0 {
                TuneObjective::Time {
                    power_idx: i % num_powers,
                }
            } else {
                TuneObjective::Edp
            },
            deadline_ms: None,
            kernel,
        })
        .collect()
}

/// The offline reference: predictions straight from `TuneService`, no
/// registry, no socket, no batching.
fn offline_predictions(fx: &Fixture, requests: &[TuneRequest]) -> Vec<TunePrediction> {
    let mut service = TuneService::restore(
        &fx.ds,
        &fx.settings,
        &fx.s1,
        &fx.s2,
        "time-model",
        "edp-model",
    )
    .expect("offline service restores");
    requests
        .iter()
        .map(|r| service.tune(&r.kernel, r.objective).expect("offline tune"))
        .collect()
}

fn start_engine(replicas: usize, workers: usize) -> Arc<ServeEngine> {
    let fx = fixture();
    let registry = ModelRegistry::open(Store::open(&fx.dir));
    let (engine, report) = ServeEngine::start(registry, &EngineConfig { replicas, workers });
    // The cold start must have restored every grid in the store.
    assert_eq!(report.grids_loaded, 2, "{:?}", report.lines);
    assert_eq!(report.grids_skipped, 0, "{:?}", report.lines);
    assert_eq!(engine.machines(), vec!["haswell".to_string()]);
    Arc::new(engine)
}

/// A ServeConfig on the real clock with an effectively unbounded queue —
/// the pre-ISSUE-10 behavior, for tests not about degradation.
fn roomy_config(max_batch: usize) -> ServeConfig {
    ServeConfig::new(max_batch, usize::MAX, Arc::new(Instant::now))
}

fn spawn_server(engine: Arc<ServeEngine>, config: ServeConfig) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || serve(listener, engine, config));
    addr
}

#[test]
fn served_predictions_are_bit_identical_to_the_offline_path() {
    let fx = fixture();
    let requests = workload(&fx.ds);
    let offline = offline_predictions(fx, &requests);

    let engine = start_engine(2, 2);
    let addr = spawn_server(engine, roomy_config(16));
    let mut client = Client::connect(addr).expect("connect");
    for (request, expected) in requests.iter().zip(&offline) {
        let response = client
            .request(&Request::Tune(request.clone()))
            .expect("tune request");
        let Response::Tune(tune) = response else {
            panic!("unexpected response {response:?}");
        };
        assert_eq!(tune.id, request.id);
        let got = tune
            .prediction
            .unwrap_or_else(|| panic!("request {} failed: {:?}", request.id, tune.error));
        // Registry model ids differ from the offline labels; the predicted
        // class, configuration point, and expected gain must be identical
        // to the bit.
        assert_eq!(got.class, expected.class, "request {}", request.id);
        assert_eq!(got.point, expected.point, "request {}", request.id);
        assert_eq!(
            got.expected_gain.to_bits(),
            expected.expected_gain.to_bits(),
            "request {}",
            request.id
        );
    }
    let _ = client.request(&Request::Shutdown);
}

#[test]
fn batched_and_single_paths_agree_for_every_worker_count() {
    let fx = fixture();
    let requests = workload(&fx.ds);
    let engine = start_engine(3, 1);
    let singles: Vec<_> = requests.iter().map(|r| engine.tune(r)).collect();
    for workers in [1usize, 2, 4] {
        engine.set_workers(workers);
        let batched = engine.tune_batch(&requests);
        assert_eq!(batched.len(), singles.len());
        for (single, batch) in singles.iter().zip(&batched) {
            assert_eq!(single.id, batch.id);
            assert_eq!(
                single.prediction, batch.prediction,
                "workers={workers} id={}",
                single.id
            );
            assert_eq!(single.error, batch.error);
        }
    }
}

/// ISSUE 8: the whole workload pipelined over one connection so the
/// dispatcher drains it into fused objective groups — every daemon response
/// must still match the offline single-graph path to the bit, and the fused
/// counters must show block-diagonal batching actually happened.
#[test]
fn fused_daemon_batches_are_bit_identical_to_offline_predictions() {
    let fx = fixture();
    let requests = workload(&fx.ds);
    let offline = offline_predictions(fx, &requests);

    let engine = start_engine(2, 2);
    let addr = spawn_server(engine, roomy_config(requests.len().max(16)));
    let mut client = Client::connect(addr).expect("connect");
    // Pipeline every request before reading a single response: the
    // dispatcher sees them all queued and fuses per (machine, objective).
    for request in &requests {
        client
            .send(&Request::Tune(request.clone()))
            .expect("send tune");
    }
    let mut responses = Vec::with_capacity(requests.len());
    for _ in &requests {
        let Response::Tune(tune) = client.receive().expect("receive tune") else {
            panic!("Tune must answer Tune");
        };
        responses.push(tune);
    }
    responses.sort_by_key(|t| t.id);
    for (tune, (request, expected)) in responses.iter().zip(requests.iter().zip(&offline)) {
        assert_eq!(tune.id, request.id);
        let got = tune
            .prediction
            .as_ref()
            .unwrap_or_else(|| panic!("request {} failed: {:?}", request.id, tune.error));
        assert_eq!(got.class, expected.class, "request {}", request.id);
        assert_eq!(got.point, expected.point, "request {}", request.id);
        assert_eq!(
            got.expected_gain.to_bits(),
            expected.expected_gain.to_bits(),
            "request {}",
            request.id
        );
    }

    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("Stats must answer Stats");
    };
    assert_eq!(stats.requests, requests.len() as u64);
    // Every tune request reached a replica through a fused group...
    assert_eq!(stats.fused_graphs, requests.len() as u64);
    // ...and grouping actually fused: fewer groups than requests, with at
    // least one group carrying several graphs.
    assert!(
        stats.fused_batches < stats.fused_graphs,
        "fused_batches={} fused_graphs={}",
        stats.fused_batches,
        stats.fused_graphs
    );
    assert!(stats.max_fused_batch > 1, "{stats:?}");
    let _ = client.request(&Request::Shutdown);
}

#[test]
fn registry_and_control_surface_answer_over_the_wire() {
    let engine = start_engine(1, 1);
    let addr = spawn_server(engine, roomy_config(8));
    let mut client = Client::connect(addr).expect("connect");

    assert!(matches!(
        client.request(&Request::Ping).expect("ping"),
        Response::Ok
    ));

    let Response::Models { models } = client.request(&Request::List).expect("list") else {
        panic!("List must answer Models");
    };
    assert_eq!(models.len(), 2);
    assert!(models.iter().all(|m| m.machine == "haswell"));
    let id = models[0].id.clone();

    let Response::Description { text } = client
        .request(&Request::Describe { id: id.clone() })
        .expect("describe")
    else {
        panic!("Describe must answer Description");
    };
    let text = text.expect("known id describes");
    assert!(text.contains(&id) && text.contains("dataset:"), "{text}");
    let Response::Description { text } = client
        .request(&Request::Describe { id: "nope".into() })
        .expect("describe unknown")
    else {
        panic!("Describe must answer Description");
    };
    assert!(text.is_none());

    assert!(matches!(
        client
            .request(&Request::SetWorkers { workers: 2 })
            .expect("set workers"),
        Response::Ok
    ));
    let fx = fixture();
    let request = TuneRequest {
        id: 9,
        machine: "haswell".into(),
        objective: TuneObjective::Edp,
        deadline_ms: None,
        kernel: KernelInput::Graph(fx.ds.regions[0].graph.clone()),
    };
    let Response::Tune(tune) = client.request(&Request::Tune(request)).expect("tune") else {
        panic!("Tune must answer Tune");
    };
    assert!(tune.prediction.is_some(), "{:?}", tune.error);

    // An unknown machine is an error response, not a dropped connection.
    let request = TuneRequest {
        id: 10,
        machine: "riscv".into(),
        objective: TuneObjective::Edp,
        deadline_ms: None,
        kernel: KernelInput::Graph(fx.ds.regions[0].graph.clone()),
    };
    let Response::Tune(tune) = client.request(&Request::Tune(request)).expect("tune") else {
        panic!("Tune must answer Tune");
    };
    assert!(tune.error.as_deref().unwrap_or_default().contains("riscv"));

    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("Stats must answer Stats");
    };
    assert_eq!(stats.grids_loaded, 2);
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.machines, vec!["haswell".to_string()]);

    assert!(matches!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::Ok
    ));
}

/// A clock that jumps 100 fake milliseconds on every reading, making
/// queue-wait "time" deterministic: any request observed by the dispatcher
/// after admission has aged at least 100 ms, while the whole test spans
/// well under an hour of fake time.
fn fast_fake_clock() -> Clock {
    let base = Instant::now();
    let ticks = Arc::new(AtomicU64::new(0));
    Arc::new(move || base + Duration::from_millis(100 * ticks.fetch_add(1, Ordering::SeqCst)))
}

/// ISSUE 10: a queued request whose `deadline_ms` budget runs out must be
/// answered with a typed `DeadlineExceeded` rejection — and requests with
/// no (or a generous) deadline must be wholly unaffected.
#[test]
fn expired_deadlines_are_typed_rejections_not_errors() {
    let fx = fixture();
    let engine = start_engine(1, 1);
    let addr = spawn_server(
        engine.clone(),
        ServeConfig::new(4, usize::MAX, fast_fake_clock()),
    );
    let mut client = Client::connect(addr).expect("connect");

    let tune = |deadline_ms: Option<u64>, id: u64| {
        Request::Tune(TuneRequest {
            id,
            machine: "haswell".into(),
            objective: TuneObjective::Edp,
            deadline_ms,
            kernel: KernelInput::Graph(fx.ds.regions[0].graph.clone()),
        })
    };
    // 10 fake-ms of budget always expires before dequeue (the clock moved
    // ≥100 fake ms in between)...
    let response = client.request(&tune(Some(10), 1)).expect("tight deadline");
    assert!(
        matches!(
            response,
            Response::Rejected {
                id: 1,
                reason: RejectReason::DeadlineExceeded
            }
        ),
        "a spent deadline budget must be a typed rejection, got {response:?}"
    );
    // ...while no deadline and an hour of budget are served normally.
    for (deadline_ms, id) in [(None, 2u64), (Some(3_600_000), 3)] {
        let Response::Tune(tune) = client.request(&tune(deadline_ms, id)).expect("tune") else {
            panic!("Tune must answer Tune");
        };
        assert_eq!(tune.id, id);
        assert!(tune.prediction.is_some(), "{:?}", tune.error);
    }

    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("Stats must answer Stats");
    };
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.shed_requests, 0);
    assert_eq!(
        stats.requests, 2,
        "the expired request never took a batch slot"
    );
    assert_eq!(stats.queue_depth, 0, "every queue slot was released");
    let _ = client.request(&Request::Shutdown);
}

/// ISSUE 10: `max_queue = 0` is the deterministic shed case — every tune
/// request is refused with a typed `Overloaded` rejection while the control
/// surface keeps answering.
#[test]
fn zero_queue_sheds_every_tune_request_with_typed_rejections() {
    let fx = fixture();
    let engine = start_engine(1, 1);
    let addr = spawn_server(
        engine.clone(),
        ServeConfig::new(4, 0, Arc::new(Instant::now)),
    );
    let mut client = Client::connect(addr).expect("connect");

    for id in 0..5u64 {
        let request = Request::Tune(TuneRequest {
            id,
            machine: "haswell".into(),
            objective: TuneObjective::Edp,
            deadline_ms: None,
            kernel: KernelInput::Graph(fx.ds.regions[0].graph.clone()),
        });
        let response = client.request(&request).expect("shed response");
        assert!(
            matches!(
                response,
                Response::Rejected {
                    id: got,
                    reason: RejectReason::Overloaded
                } if got == id
            ),
            "expected an Overloaded rejection for {id}, got {response:?}"
        );
    }
    assert!(matches!(
        client.request(&Request::Ping).expect("ping"),
        Response::Ok
    ));
    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("Stats must answer Stats");
    };
    assert_eq!(stats.shed_requests, 5);
    assert_eq!(stats.requests, 0, "a shed request never reaches the engine");
    assert_eq!(stats.queue_depth, 0);
    let _ = client.request(&Request::Shutdown);
}

/// ISSUE 10: a saturating pipelined client against a one-slot queue gets a
/// mix of accepted and shed responses — and the accepted ones must be
/// bit-identical to the offline path, because shedding changes *whether* a
/// request is served, never *how* (DESIGN.md §17).
#[test]
fn accepted_requests_stay_bit_identical_under_saturating_load() {
    let fx = fixture();
    let requests = workload(&fx.ds);
    let offline = offline_predictions(fx, &requests);

    let engine = start_engine(2, 2);
    let addr = spawn_server(
        engine.clone(),
        ServeConfig::new(1, 1, Arc::new(Instant::now)),
    );
    let mut client = Client::connect(addr).expect("connect");
    for request in &requests {
        client
            .send(&Request::Tune(request.clone()))
            .expect("send tune");
    }
    let mut accepted = 0usize;
    let mut shed = 0usize;
    for _ in &requests {
        match client.receive().expect("receive") {
            Response::Tune(tune) => {
                accepted += 1;
                let i = tune.id as usize;
                let got = tune
                    .prediction
                    .unwrap_or_else(|| panic!("request {i} failed: {:?}", tune.error));
                assert_eq!(got.class, offline[i].class, "request {i}");
                assert_eq!(got.point, offline[i].point, "request {i}");
                assert_eq!(
                    got.expected_gain.to_bits(),
                    offline[i].expected_gain.to_bits(),
                    "request {i}"
                );
            }
            Response::Rejected {
                reason: RejectReason::Overloaded,
                ..
            } => shed += 1,
            other => panic!("unexpected response under saturation: {other:?}"),
        }
    }
    assert_eq!(
        accepted + shed,
        requests.len(),
        "every request was answered"
    );
    assert!(accepted >= 1, "an empty queue always admits");

    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("Stats must answer Stats");
    };
    assert_eq!(stats.requests, accepted as u64);
    assert_eq!(stats.shed_requests, shed as u64);
    assert_eq!(stats.queue_depth, 0);
    let _ = client.request(&Request::Shutdown);
}

fn copy_artifacts(from: &Path, to: &Path) {
    for entry in std::fs::read_dir(from).expect("read_dir").flatten() {
        let path = entry.path();
        let dest = to.join(entry.file_name());
        if path.is_dir() {
            std::fs::create_dir_all(&dest).expect("mkdir");
            copy_artifacts(&path, &dest);
        } else if entry.file_name() != "index.json" {
            std::fs::copy(&path, &dest).expect("copy artifact");
        }
    }
}

/// ISSUE 10 tentpole: grids landing in the store mid-traffic are picked up
/// by the reload watcher and served without a restart — while in-flight
/// haswell traffic keeps flowing, every response bit-identical to the
/// offline path, with zero drops across the swap.
#[test]
fn store_update_hot_reloads_without_dropping_inflight_requests() {
    let fx = fixture();
    // The serving store starts as a copy of the haswell fixture; a separate
    // store gets skylake grids trained with the same tiny settings.
    let serve_dir = std::env::temp_dir().join(format!("pnp_serve_reload_{}", std::process::id()));
    let sky_dir = std::env::temp_dir().join(format!("pnp_serve_sky_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&serve_dir);
    let _ = std::fs::remove_dir_all(&sky_dir);
    std::fs::create_dir_all(&serve_dir).expect("mkdir serve store");
    copy_artifacts(&fx.dir, &serve_dir);
    let sky_store = ArtifactStore::open(&sky_dir);
    let sky_ds = sky_store.load_or_build_dataset(
        &skylake(),
        &tiny_apps(),
        &Vocabulary::standard(),
        Threads::Fixed(1),
    );
    let sky_cache = sky_store.for_dataset(&sky_ds);
    train_scenario1_models_cached(&sky_ds, &fx.settings, false, Some(&sky_cache));
    train_scenario2_model_cached(&sky_ds, &fx.settings, false, Some(&sky_cache));

    let registry = ModelRegistry::open(Store::open(&serve_dir));
    let (engine, report) = ServeEngine::start(
        registry,
        &EngineConfig {
            replicas: 2,
            workers: 2,
        },
    );
    assert_eq!(report.grids_loaded, 2, "{:?}", report.lines);
    assert_eq!(engine.machines(), vec!["haswell".to_string()]);
    let engine = Arc::new(engine);
    let stop_watcher = Arc::new(AtomicBool::new(false));
    let watcher = engine.spawn_reload_watcher(Duration::from_millis(10), stop_watcher.clone());
    let addr = spawn_server(engine.clone(), roomy_config(8));

    // Continuous haswell traffic across the swap: every response must keep
    // matching the offline reference, before and after the reload.
    let requests = workload(&fx.ds);
    let offline = offline_predictions(fx, &requests);
    let stop_traffic = Arc::new(AtomicBool::new(false));
    let traffic = {
        let stop = stop_traffic.clone();
        let requests = requests.clone();
        let offline = offline.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect traffic");
            let mut answered = 0usize;
            while !stop.load(Ordering::SeqCst) {
                for (request, expected) in requests.iter().zip(&offline) {
                    let Response::Tune(tune) = client
                        .request(&Request::Tune(request.clone()))
                        .expect("in-flight tune answered")
                    else {
                        panic!("Tune must answer Tune");
                    };
                    let got = tune.prediction.unwrap_or_else(|| {
                        panic!("request {} failed: {:?}", request.id, tune.error)
                    });
                    assert_eq!(got.point, expected.point, "request {}", request.id);
                    assert_eq!(
                        got.expected_gain.to_bits(),
                        expected.expected_gain.to_bits(),
                        "request {}",
                        request.id
                    );
                    answered += 1;
                }
            }
            answered
        })
    };

    // The store update: skylake's dataset + grids land as plain files (as a
    // trainer on another host would deliver them). The watcher must notice
    // the index generation change and swap the new pools in.
    copy_artifacts(&sky_dir, &serve_dir);
    let reloaded_by = Instant::now() + Duration::from_secs(30);
    while !engine.machines().contains(&"skylake".to_string()) {
        assert!(
            Instant::now() < reloaded_by,
            "watcher never picked up the store update (machines: {:?})",
            engine.machines()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The new machine serves — bit-identical to an offline service restored
    // from the same skylake grids.
    let s1 = sky_cache
        .store()
        .load(&sky_cache.scenario1_key(&fx.settings, false))
        .expect("skylake scenario1 grid");
    let s2 = sky_cache
        .store()
        .load(&sky_cache.scenario2_key(&fx.settings, false))
        .expect("skylake scenario2 grid");
    let mut sky_service = TuneService::restore(&sky_ds, &fx.settings, &s1, &s2, "t", "e")
        .expect("offline skylake service restores");
    let kernel = KernelInput::Graph(sky_ds.regions[0].graph.clone());
    let expected = sky_service
        .tune(&kernel, TuneObjective::Edp)
        .expect("offline skylake tune");
    let mut client = Client::connect(addr).expect("connect");
    let Response::Tune(tune) = client
        .request(&Request::Tune(TuneRequest {
            id: 77,
            machine: "skylake".into(),
            objective: TuneObjective::Edp,
            deadline_ms: None,
            kernel,
        }))
        .expect("skylake tune")
    else {
        panic!("Tune must answer Tune");
    };
    let got = tune.prediction.expect("skylake request served");
    assert_eq!(got.point, expected.point);
    assert_eq!(
        got.expected_gain.to_bits(),
        expected.expected_gain.to_bits()
    );

    // Wind down: the traffic thread must have crossed the swap with zero
    // dropped or diverging responses (its asserts propagate through join).
    stop_traffic.store(true, Ordering::SeqCst);
    let answered = traffic.join().expect("traffic thread clean");
    assert!(answered > 0, "traffic actually flowed during the reload");
    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("Stats must answer Stats");
    };
    assert!(stats.reloads >= 1, "{stats:?}");
    assert_eq!(stats.grids_loaded, 4, "both machines' grids are live");
    assert_eq!(stats.shed_requests, 0);
    assert_eq!(stats.deadline_expired, 0);
    stop_watcher.store(true, Ordering::SeqCst);
    let _ = client.request(&Request::Shutdown);
    let _ = watcher.join();
    let _ = std::fs::remove_dir_all(&serve_dir);
    let _ = std::fs::remove_dir_all(&sky_dir);
}
