//! Iteration scheduling: how `static`, `dynamic`, and `guided` split an
//! iteration space into chunks and assign them to threads.
//!
//! Two views are provided:
//!
//! * [`chunks_for`] — the chunk decomposition of an iteration space,
//!   independent of execution cost (used by the real executor in
//!   [`crate::pool`]).
//! * [`simulate_schedule`] — a cost-aware list-scheduling simulation that
//!   returns per-thread busy times given a per-chunk cost function (used by
//!   the analytic model in [`crate::sim`]). Static chunks are bound
//!   round-robin; dynamic and guided chunks go to the earliest-available
//!   thread, which is how the real OpenMP runtimes behave.

use crate::config::{OmpConfig, Schedule};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A contiguous range of iterations `[start, start + len)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// First iteration index.
    pub start: usize,
    /// Number of iterations.
    pub len: usize,
}

/// Decomposes `iterations` into chunks according to the configuration, in the
/// order the runtime would hand them out.
///
/// Degenerate configurations follow the clamping rules of
/// [`OmpConfig::effective_chunk`]: a chunk size beyond the iteration space
/// yields a single chunk covering the whole loop, and `threads == 0` is
/// treated as one thread. The produced chunks always partition
/// `0..iterations` exactly.
pub fn chunks_for(iterations: usize, config: &OmpConfig) -> Vec<Chunk> {
    let mut chunks = Vec::new();
    if iterations == 0 {
        return chunks;
    }
    match config.schedule {
        Schedule::Static | Schedule::Dynamic => {
            let chunk = config.effective_chunk(iterations);
            let mut start = 0;
            while start < iterations {
                let len = chunk.min(iterations - start);
                chunks.push(Chunk { start, len });
                start += len;
            }
        }
        Schedule::Guided => {
            // OpenMP guided: each grab is ~remaining / threads, floored at the
            // configured minimum chunk size.
            let min_chunk = config.effective_chunk(iterations).max(1);
            let threads = config.threads.max(1);
            let mut start = 0;
            while start < iterations {
                let remaining = iterations - start;
                let len = (remaining.div_ceil(threads)).max(min_chunk).min(remaining);
                chunks.push(Chunk { start, len });
                start += len;
            }
        }
    }
    chunks
}

/// Static round-robin binding of chunks to threads: chunk `k` goes to thread
/// `k mod threads` (this is what `schedule(static, chunk)` specifies).
/// `threads == 0` is clamped to a single-thread team.
pub fn static_assignment(chunks: &[Chunk], threads: usize) -> Vec<Vec<Chunk>> {
    let mut per_thread = vec![Vec::new(); threads.max(1)];
    for (k, c) in chunks.iter().enumerate() {
        per_thread[k % threads.max(1)].push(*c);
    }
    per_thread
}

/// Result of a cost-aware scheduling simulation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScheduleOutcome {
    /// Busy time (in cost units) of each thread, excluding dispatch overhead.
    pub per_thread_cost: Vec<f64>,
    /// The makespan: time at which the last thread finishes (including
    /// per-chunk dispatch overhead).
    pub makespan: f64,
    /// Number of chunks dispatched.
    pub num_chunks: usize,
}

impl ScheduleOutcome {
    /// Load-balance efficiency: mean busy time / max busy time (1.0 = perfect).
    pub fn balance_efficiency(&self) -> f64 {
        let max = self
            .per_thread_cost
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        if max <= 0.0 {
            return 1.0;
        }
        let mean: f64 =
            self.per_thread_cost.iter().sum::<f64>() / self.per_thread_cost.len() as f64;
        mean / max
    }
}

/// Simulates executing the chunked iteration space on `threads` threads where
/// chunk `c` costs `chunk_cost(c)` time units and every dispatch (grab of a
/// chunk by a thread) costs `dispatch_overhead` time units for dynamic/guided
/// schedules (static binding has no per-chunk dispatch cost).
pub fn simulate_schedule<F>(
    iterations: usize,
    config: &OmpConfig,
    dispatch_overhead: f64,
    chunk_cost: F,
) -> ScheduleOutcome
where
    F: Fn(&Chunk) -> f64,
{
    let threads = config.threads.max(1);
    let chunks = chunks_for(iterations, config);
    let num_chunks = chunks.len();

    match config.schedule {
        Schedule::Static => {
            let assignment = static_assignment(&chunks, threads);
            let per_thread_cost: Vec<f64> = assignment
                .iter()
                .map(|cs| cs.iter().map(&chunk_cost).sum())
                .collect();
            let makespan = per_thread_cost.iter().cloned().fold(0.0f64, f64::max);
            ScheduleOutcome {
                per_thread_cost,
                makespan,
                num_chunks,
            }
        }
        Schedule::Dynamic | Schedule::Guided => {
            // Greedy list scheduling: each chunk (in order) is taken by the
            // thread that becomes available first.
            let mut busy = vec![0.0f64; threads];
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
                (0..threads).map(|t| Reverse((0u64, t))).collect();
            // Times are kept as integer nanoscale keys in the heap to avoid
            // float ordering issues; busy[] keeps the true float value.
            const SCALE: f64 = 1e9;
            for c in &chunks {
                let Reverse((_, t)) = heap.pop().expect("heap never empty");
                let cost = chunk_cost(c) + dispatch_overhead;
                busy[t] += cost;
                heap.push(Reverse(((busy[t] * SCALE) as u64, t)));
            }
            let makespan = busy.iter().cloned().fold(0.0f64, f64::max);
            ScheduleOutcome {
                per_thread_cost: busy,
                makespan,
                num_chunks,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threads: usize, schedule: Schedule, chunk: Option<usize>) -> OmpConfig {
        OmpConfig::new(threads, schedule, chunk)
    }

    #[test]
    fn chunks_cover_the_iteration_space_exactly() {
        for schedule in Schedule::all() {
            for chunk in [None, Some(1), Some(7), Some(64)] {
                let config = cfg(4, schedule, chunk);
                let chunks = chunks_for(1000, &config);
                let total: usize = chunks.iter().map(|c| c.len).sum();
                assert_eq!(total, 1000, "{schedule:?} {chunk:?}");
                // Chunks are contiguous and ordered.
                let mut expect = 0;
                for c in &chunks {
                    assert_eq!(c.start, expect);
                    expect += c.len;
                }
            }
        }
    }

    #[test]
    fn guided_chunks_shrink() {
        let config = cfg(4, Schedule::Guided, Some(1));
        let chunks = chunks_for(1024, &config);
        assert!(chunks.len() > 4);
        assert!(chunks[0].len > chunks[chunks.len() - 2].len);
    }

    #[test]
    fn static_default_chunk_gives_one_chunk_per_thread() {
        let config = cfg(8, Schedule::Static, None);
        let chunks = chunks_for(800, &config);
        assert_eq!(chunks.len(), 8);
        let assignment = static_assignment(&chunks, 8);
        assert!(assignment.iter().all(|cs| cs.len() == 1));
    }

    #[test]
    fn oversized_chunk_degenerates_to_a_single_chunk() {
        for schedule in Schedule::all() {
            let config = cfg(4, schedule, Some(10_000));
            let chunks = chunks_for(100, &config);
            assert_eq!(chunks, vec![Chunk { start: 0, len: 100 }], "{schedule:?}");
        }
    }

    #[test]
    fn zero_threads_assignment_clamps_to_one_bucket() {
        let chunks = chunks_for(100, &cfg(4, Schedule::Static, Some(10)));
        let assignment = static_assignment(&chunks, 0);
        assert_eq!(assignment.len(), 1);
        let total: usize = assignment[0].iter().map(|c| c.len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn empty_iteration_space_has_no_chunks() {
        let config = cfg(4, Schedule::Dynamic, Some(8));
        assert!(chunks_for(0, &config).is_empty());
        let out = simulate_schedule(0, &config, 0.1, |c| c.len as f64);
        assert_eq!(out.makespan, 0.0);
    }

    #[test]
    fn uniform_cost_static_is_perfectly_balanced() {
        let config = cfg(4, Schedule::Static, None);
        let out = simulate_schedule(1000, &config, 0.0, |c| c.len as f64);
        assert!(out.balance_efficiency() > 0.99);
        assert!((out.makespan - 250.0).abs() < 1.0);
    }

    #[test]
    fn dynamic_beats_static_under_ramp_imbalance() {
        // Iterations get linearly more expensive; static contiguous blocks
        // put all the expensive ones on the last thread.
        let cost = |c: &Chunk| {
            (c.start..c.start + c.len)
                .map(|i| 1.0 + 3.0 * i as f64 / 1000.0)
                .sum::<f64>()
        };
        let stat = simulate_schedule(1000, &cfg(4, Schedule::Static, None), 0.0, cost);
        let dyna = simulate_schedule(1000, &cfg(4, Schedule::Dynamic, Some(8)), 0.0, cost);
        assert!(
            dyna.makespan < stat.makespan * 0.85,
            "dynamic {} vs static {}",
            dyna.makespan,
            stat.makespan
        );
    }

    #[test]
    fn dispatch_overhead_penalizes_tiny_dynamic_chunks() {
        let cost = |c: &Chunk| c.len as f64;
        let small = simulate_schedule(10_000, &cfg(8, Schedule::Dynamic, Some(1)), 0.5, cost);
        let large = simulate_schedule(10_000, &cfg(8, Schedule::Dynamic, Some(256)), 0.5, cost);
        assert!(small.makespan > large.makespan);
    }

    #[test]
    fn guided_overhead_is_between_static_and_tiny_dynamic() {
        let cost = |c: &Chunk| c.len as f64;
        let overhead = 0.5;
        let stat = simulate_schedule(10_000, &cfg(8, Schedule::Static, None), overhead, cost);
        let dyn1 = simulate_schedule(10_000, &cfg(8, Schedule::Dynamic, Some(1)), overhead, cost);
        let guided = simulate_schedule(10_000, &cfg(8, Schedule::Guided, Some(1)), overhead, cost);
        assert!(guided.makespan <= dyn1.makespan);
        assert!(guided.num_chunks > stat.num_chunks.min(8));
    }

    #[test]
    fn more_threads_reduce_makespan_for_balanced_work() {
        let cost = |c: &Chunk| c.len as f64;
        let t2 = simulate_schedule(4096, &cfg(2, Schedule::Static, None), 0.0, cost);
        let t8 = simulate_schedule(4096, &cfg(8, Schedule::Static, None), 0.0, cost);
        assert!(t8.makespan < t2.makespan / 3.0);
    }
}
