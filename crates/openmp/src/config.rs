//! OpenMP runtime configurations — the tuned parameters.

use pnp_machine::MachineSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Loop scheduling policy (`OMP_SCHEDULE`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Schedule {
    /// Iterations divided into chunks assigned round-robin up front.
    Static,
    /// Chunks handed to threads on demand.
    Dynamic,
    /// Exponentially decreasing chunk sizes handed out on demand.
    Guided,
}

impl Schedule {
    /// All policies in the order of Table I.
    pub fn all() -> [Schedule; 3] {
        [Schedule::Static, Schedule::Dynamic, Schedule::Guided]
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Schedule::Static => write!(f, "STATIC"),
            Schedule::Dynamic => write!(f, "DYNAMIC"),
            Schedule::Guided => write!(f, "GUIDED"),
        }
    }
}

/// One OpenMP runtime configuration: the triple the tuner selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OmpConfig {
    /// `OMP_NUM_THREADS`.
    pub threads: usize,
    /// Scheduling policy.
    pub schedule: Schedule,
    /// Chunk size; `None` means the implementation default (whole-range /
    /// trip-count ÷ threads for static, 1 for dynamic/guided).
    pub chunk: Option<usize>,
}

impl OmpConfig {
    /// Creates a configuration.
    pub fn new(threads: usize, schedule: Schedule, chunk: Option<usize>) -> Self {
        assert!(threads > 0, "thread count must be positive");
        if let Some(c) = chunk {
            assert!(c > 0, "chunk size must be positive");
        }
        OmpConfig {
            threads,
            schedule,
            chunk,
        }
    }

    /// The effective chunk size for a loop with `iterations` iterations.
    pub fn effective_chunk(&self, iterations: usize) -> usize {
        match (self.chunk, self.schedule) {
            (Some(c), _) => c.max(1),
            (None, Schedule::Static) => iterations.div_ceil(self.threads.max(1)).max(1),
            (None, _) => 1,
        }
    }
}

impl fmt::Display for OmpConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.chunk {
            Some(c) => write!(
                f,
                "{} threads, {}, chunk {}",
                self.threads, self.schedule, c
            ),
            None => write!(
                f,
                "{} threads, {}, default chunk",
                self.threads, self.schedule
            ),
        }
    }
}

/// The *default* OpenMP configuration the paper compares against: all
/// hardware threads, static scheduling, compiler-defined (default) chunk.
pub fn default_config(machine: &MachineSpec) -> OmpConfig {
    OmpConfig {
        threads: machine.default_threads(),
        schedule: Schedule::Static,
        chunk: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_machine::{haswell, skylake};

    #[test]
    fn default_config_uses_all_threads_static() {
        let c = default_config(&haswell());
        assert_eq!(c.threads, 32);
        assert_eq!(c.schedule, Schedule::Static);
        assert_eq!(c.chunk, None);
        assert_eq!(default_config(&skylake()).threads, 64);
    }

    #[test]
    fn effective_chunk_defaults() {
        let c = OmpConfig::new(8, Schedule::Static, None);
        assert_eq!(c.effective_chunk(800), 100);
        assert_eq!(c.effective_chunk(7), 1);
        let d = OmpConfig::new(8, Schedule::Dynamic, None);
        assert_eq!(d.effective_chunk(800), 1);
        let g = OmpConfig::new(8, Schedule::Guided, Some(32));
        assert_eq!(g.effective_chunk(800), 32);
    }

    #[test]
    fn display_is_readable() {
        let c = OmpConfig::new(16, Schedule::Dynamic, Some(64));
        assert_eq!(c.to_string(), "16 threads, DYNAMIC, chunk 64");
        let d = OmpConfig::new(4, Schedule::Static, None);
        assert!(d.to_string().contains("default chunk"));
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        OmpConfig::new(0, Schedule::Static, None);
    }

    #[test]
    #[should_panic]
    fn zero_chunk_rejected() {
        OmpConfig::new(4, Schedule::Static, Some(0));
    }

    #[test]
    fn schedules_enumerate_all_three() {
        assert_eq!(Schedule::all().len(), 3);
        assert_eq!(Schedule::Static.to_string(), "STATIC");
    }
}
