//! OpenMP runtime configurations — the tuned parameters.

use pnp_machine::MachineSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Loop scheduling policy (`OMP_SCHEDULE`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Schedule {
    /// Iterations divided into chunks assigned round-robin up front.
    Static,
    /// Chunks handed to threads on demand.
    Dynamic,
    /// Exponentially decreasing chunk sizes handed out on demand.
    Guided,
}

impl Schedule {
    /// All policies in the order of Table I.
    pub fn all() -> [Schedule; 3] {
        [Schedule::Static, Schedule::Dynamic, Schedule::Guided]
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Schedule::Static => write!(f, "STATIC"),
            Schedule::Dynamic => write!(f, "DYNAMIC"),
            Schedule::Guided => write!(f, "GUIDED"),
        }
    }
}

/// One OpenMP runtime configuration: the triple the tuner selects.
///
/// The fields are public, so degenerate values ([`OmpConfig::new`] would
/// reject, e.g. `threads == 0`) can still be constructed via struct literal
/// or deserialization. Every consumer therefore goes through the explicit
/// clamping accessors — [`OmpConfig::effective_threads`] and
/// [`OmpConfig::effective_chunk`] — rather than reading the raw fields:
/// a degenerate configuration executes as the nearest meaningful one, it
/// never panics and never under- or over-runs the iteration space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OmpConfig {
    /// `OMP_NUM_THREADS`.
    pub threads: usize,
    /// Scheduling policy.
    pub schedule: Schedule,
    /// Chunk size; `None` means the implementation default (whole-range /
    /// trip-count ÷ threads for static, 1 for dynamic/guided).
    pub chunk: Option<usize>,
}

impl OmpConfig {
    /// Creates a configuration.
    pub fn new(threads: usize, schedule: Schedule, chunk: Option<usize>) -> Self {
        assert!(threads > 0, "thread count must be positive");
        if let Some(c) = chunk {
            assert!(c > 0, "chunk size must be positive");
        }
        OmpConfig {
            threads,
            schedule,
            chunk,
        }
    }

    /// The team size actually used for a loop with `iterations` iterations.
    ///
    /// Clamping rules (the executor and the analytic model share them):
    ///
    /// * never 0 — a degenerate `threads == 0` runs with one thread;
    /// * never more than `iterations` — a team member without at least one
    ///   iteration would only add fork/join cost;
    /// * for an empty iteration space the answer is 1 by convention (callers
    ///   skip launching a team entirely in that case).
    pub fn effective_threads(&self, iterations: usize) -> usize {
        self.threads.max(1).min(iterations.max(1))
    }

    /// The effective chunk size for a loop with `iterations` iterations.
    ///
    /// Clamping rules:
    ///
    /// * never 0 — a degenerate `chunk == Some(0)` behaves as chunk 1;
    /// * never larger than the iteration space — a request beyond the trip
    ///   count degenerates to a single chunk covering the whole loop;
    /// * `None` resolves to the implementation default: `iterations ÷
    ///   threads` (rounded up) for static, 1 for dynamic/guided.
    pub fn effective_chunk(&self, iterations: usize) -> usize {
        match (self.chunk, self.schedule) {
            (Some(c), _) => c.max(1).min(iterations.max(1)),
            (None, Schedule::Static) => iterations.div_ceil(self.threads.max(1)).max(1),
            (None, _) => 1,
        }
    }
}

impl fmt::Display for OmpConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.chunk {
            Some(c) => write!(
                f,
                "{} threads, {}, chunk {}",
                self.threads, self.schedule, c
            ),
            None => write!(
                f,
                "{} threads, {}, default chunk",
                self.threads, self.schedule
            ),
        }
    }
}

/// The *default* OpenMP configuration the paper compares against: all
/// hardware threads, static scheduling, compiler-defined (default) chunk.
pub fn default_config(machine: &MachineSpec) -> OmpConfig {
    OmpConfig {
        threads: machine.default_threads(),
        schedule: Schedule::Static,
        chunk: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_machine::{haswell, skylake};

    #[test]
    fn default_config_uses_all_threads_static() {
        let c = default_config(&haswell());
        assert_eq!(c.threads, 32);
        assert_eq!(c.schedule, Schedule::Static);
        assert_eq!(c.chunk, None);
        assert_eq!(default_config(&skylake()).threads, 64);
    }

    #[test]
    fn effective_chunk_defaults() {
        let c = OmpConfig::new(8, Schedule::Static, None);
        assert_eq!(c.effective_chunk(800), 100);
        assert_eq!(c.effective_chunk(7), 1);
        let d = OmpConfig::new(8, Schedule::Dynamic, None);
        assert_eq!(d.effective_chunk(800), 1);
        let g = OmpConfig::new(8, Schedule::Guided, Some(32));
        assert_eq!(g.effective_chunk(800), 32);
    }

    #[test]
    fn oversized_chunk_clamps_to_the_iteration_space() {
        let c = OmpConfig::new(4, Schedule::Dynamic, Some(5000));
        assert_eq!(c.effective_chunk(100), 100);
        assert_eq!(c.effective_chunk(5000), 5000);
        // Empty loop: the conventional answer is 1, never 0.
        assert_eq!(c.effective_chunk(0), 1);
    }

    #[test]
    fn degenerate_configs_clamp_instead_of_misbehaving() {
        // `OmpConfig::new` rejects these, but the public fields allow them.
        let zero_threads = OmpConfig {
            threads: 0,
            schedule: Schedule::Static,
            chunk: None,
        };
        assert_eq!(zero_threads.effective_threads(100), 1);
        assert_eq!(zero_threads.effective_chunk(100), 100);
        let zero_chunk = OmpConfig {
            threads: 4,
            schedule: Schedule::Dynamic,
            chunk: Some(0),
        };
        assert_eq!(zero_chunk.effective_chunk(100), 1);
    }

    #[test]
    fn effective_threads_never_exceeds_the_iteration_space() {
        let c = OmpConfig::new(8, Schedule::Static, None);
        assert_eq!(c.effective_threads(3), 3);
        assert_eq!(c.effective_threads(8), 8);
        assert_eq!(c.effective_threads(800), 8);
        assert_eq!(c.effective_threads(0), 1);
    }

    #[test]
    fn display_is_readable() {
        let c = OmpConfig::new(16, Schedule::Dynamic, Some(64));
        assert_eq!(c.to_string(), "16 threads, DYNAMIC, chunk 64");
        let d = OmpConfig::new(4, Schedule::Static, None);
        assert!(d.to_string().contains("default chunk"));
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        OmpConfig::new(0, Schedule::Static, None);
    }

    #[test]
    #[should_panic]
    fn zero_chunk_rejected() {
        OmpConfig::new(4, Schedule::Static, Some(0));
    }

    #[test]
    fn schedules_enumerate_all_three() {
        assert_eq!(Schedule::all().len(), 3);
        assert_eq!(Schedule::Static.to_string(), "STATIC");
    }
}
