//! A real shared-memory worksharing executor.
//!
//! This is the "OpenMP runtime" a downstream user of the library actually
//! runs code with: `parallel_for` divides an iteration space among OS threads
//! according to an [`OmpConfig`] — static chunks are bound round-robin up
//! front, dynamic and guided chunks are grabbed from a shared queue — exactly
//! the semantics the analytic simulator models. Examples and integration
//! tests use it to execute the benchmark kernels for real.

use crate::config::{OmpConfig, Schedule};
use crate::schedule::{chunks_for, static_assignment, Chunk};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A lightweight fork/join executor.
///
/// Threads are spawned per parallel region (like an OpenMP runtime without a
/// persistent team); for the kernel sizes used in the examples the spawn cost
/// is negligible, and it keeps the executor free of shared mutable state.
#[derive(Clone, Debug)]
pub struct ThreadPool {
    config: OmpConfig,
}

impl ThreadPool {
    /// Creates an executor with the given configuration.
    pub fn new(config: OmpConfig) -> Self {
        ThreadPool { config }
    }

    /// The executor's configuration.
    pub fn config(&self) -> &OmpConfig {
        &self.config
    }

    /// Runs `body(i)` for every `i` in `0..iterations`, in parallel, using
    /// the configured schedule.
    ///
    /// Degenerate configurations are clamped, never rejected: the team size
    /// follows [`OmpConfig::effective_threads`] (so `threads == 0` runs
    /// serially and a team never outnumbers the iterations) and chunk sizes
    /// beyond the iteration space collapse to a single chunk (see
    /// [`OmpConfig::effective_chunk`]). Every iteration executes exactly once
    /// regardless.
    pub fn parallel_for<F>(&self, iterations: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        if iterations == 0 {
            return;
        }
        let threads = self.config.effective_threads(iterations);
        let chunks = chunks_for(iterations, &self.config);

        match self.config.schedule {
            Schedule::Static => {
                let assignment = static_assignment(&chunks, threads);
                std::thread::scope(|scope| {
                    for thread_chunks in assignment.iter().filter(|c| !c.is_empty()) {
                        let body = &body;
                        scope.spawn(move || {
                            for c in thread_chunks {
                                for i in c.start..c.start + c.len {
                                    body(i);
                                }
                            }
                        });
                    }
                });
            }
            Schedule::Dynamic | Schedule::Guided => {
                let next = AtomicUsize::new(0);
                let chunks_ref: &[Chunk] = &chunks;
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        let body = &body;
                        let next = &next;
                        scope.spawn(move || loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            let Some(c) = chunks_ref.get(k) else { break };
                            for i in c.start..c.start + c.len {
                                body(i);
                            }
                        });
                    }
                });
            }
        }
    }

    /// Parallel sum reduction: computes `Σ body(i)` over `0..iterations`.
    ///
    /// Applies the same degenerate-configuration clamping as
    /// [`ThreadPool::parallel_for`].
    pub fn parallel_reduce_sum<F>(&self, iterations: usize, body: F) -> f64
    where
        F: Fn(usize) -> f64 + Sync,
    {
        if iterations == 0 {
            return 0.0;
        }
        let threads = self.config.effective_threads(iterations);
        let chunks = chunks_for(iterations, &self.config);
        let partials: Vec<f64> = match self.config.schedule {
            Schedule::Static => {
                let assignment = static_assignment(&chunks, threads);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = assignment
                        .iter()
                        .map(|thread_chunks| {
                            let body = &body;
                            scope.spawn(move || {
                                let mut acc = 0.0;
                                for c in thread_chunks {
                                    for i in c.start..c.start + c.len {
                                        acc += body(i);
                                    }
                                }
                                acc
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            }
            Schedule::Dynamic | Schedule::Guided => {
                let next = AtomicUsize::new(0);
                let chunks_ref: &[Chunk] = &chunks;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let body = &body;
                            let next = &next;
                            scope.spawn(move || {
                                let mut acc = 0.0;
                                loop {
                                    let k = next.fetch_add(1, Ordering::Relaxed);
                                    let Some(c) = chunks_ref.get(k) else { break };
                                    for i in c.start..c.start + c.len {
                                        acc += body(i);
                                    }
                                }
                                acc
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            }
        };
        partials.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    fn all_configs() -> Vec<OmpConfig> {
        let mut v = Vec::new();
        for threads in [1usize, 2, 4] {
            for schedule in Schedule::all() {
                for chunk in [None, Some(1), Some(16)] {
                    v.push(OmpConfig::new(threads, schedule, chunk));
                }
            }
        }
        v
    }

    #[test]
    fn every_iteration_executes_exactly_once() {
        for config in all_configs() {
            let n = 1000;
            let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            ThreadPool::new(config).parallel_for(n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "config {config} executed some iteration != once"
            );
        }
    }

    #[test]
    fn reduction_matches_serial_sum() {
        let n = 10_000;
        let expected: f64 = (0..n).map(|i| (i as f64).sqrt()).sum();
        for config in all_configs() {
            let got = ThreadPool::new(config).parallel_reduce_sum(n, |i| (i as f64).sqrt());
            assert!(
                (got - expected).abs() / expected < 1e-9,
                "config {config}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn zero_iterations_is_a_no_op() {
        let pool = ThreadPool::new(OmpConfig::new(4, Schedule::Dynamic, Some(4)));
        pool.parallel_for(0, |_| panic!("must not run"));
        assert_eq!(pool.parallel_reduce_sum(0, |_| 1.0), 0.0);
    }

    #[test]
    fn dynamic_schedule_actually_uses_multiple_threads() {
        let pool = ThreadPool::new(OmpConfig::new(4, Schedule::Dynamic, Some(1)));
        let ids = Mutex::new(HashSet::new());
        pool.parallel_for(64, |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // Give other threads a chance to grab chunks.
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert!(
            ids.lock().unwrap().len() > 1,
            "expected more than one worker thread"
        );
    }

    #[test]
    fn zero_thread_config_runs_serially_and_completely() {
        // Constructible via struct literal even though `new` rejects it.
        let config = OmpConfig {
            threads: 0,
            schedule: Schedule::Static,
            chunk: None,
        };
        let n = 100;
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let workers = Mutex::new(HashSet::new());
        ThreadPool::new(config).parallel_for(n, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            workers.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert_eq!(workers.lock().unwrap().len(), 1, "clamped to one worker");
    }

    #[test]
    fn chunk_larger_than_iteration_space_still_covers_it_once() {
        for schedule in Schedule::all() {
            let config = OmpConfig::new(4, schedule, Some(1_000_000));
            let n = 37;
            let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            ThreadPool::new(config).parallel_for(n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "{schedule:?}"
            );
            let sum = ThreadPool::new(config).parallel_reduce_sum(n, |i| i as f64);
            assert_eq!(sum, (0..n).sum::<usize>() as f64, "{schedule:?}");
        }
    }

    #[test]
    fn more_threads_than_iterations_clamps_to_the_iteration_count() {
        let config = OmpConfig::new(64, Schedule::Dynamic, Some(1));
        let n = 3;
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        ThreadPool::new(config).parallel_for(n, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn writes_through_disjoint_indices_are_visible() {
        let n = 4096;
        let data: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let pool = ThreadPool::new(OmpConfig::new(4, Schedule::Guided, Some(8)));
        pool.parallel_for(n, |i| data[i].store(i as u64 * 3, Ordering::Relaxed));
        for (i, v) in data.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), i as u64 * 3);
        }
    }
}
