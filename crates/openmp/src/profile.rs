//! Workload profiles: the per-region execution characteristics that drive the
//! analytic simulator.
//!
//! Each benchmark region in `pnp-benchmarks` carries one of these profiles,
//! derived from the kernel's loop structure and array footprint. The profile
//! plays the role of "what the code does to the machine" while the code graph
//! plays the role of "what the code looks like" — the learning task is to
//! recover the former's consequences from the latter.

pub use pnp_machine::cache::AccessPattern;
use serde::{Deserialize, Serialize};

/// Shape of per-iteration cost variation across the iteration space; this is
/// what makes scheduling policy and chunk size matter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ImbalanceShape {
    /// All iterations cost the same (dense linear algebra).
    Uniform,
    /// Cost grows linearly across the iteration space (triangular loops such
    /// as factorizations: later rows touch fewer/more elements).
    Ramp,
    /// A small fraction of iterations near the front is much more expensive
    /// (e.g. surface cells, boundary handling).
    FrontLoaded,
    /// Irregular, data-dependent cost (Monte Carlo particle tracking,
    /// adaptive refinement); modelled as deterministic pseudo-random spikes.
    RandomSpikes,
}

/// Per-region workload characterization.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionProfile {
    /// Region name (matches the `RegionSource` / code-graph name).
    pub name: String,
    /// Number of iterations of the work-shared (outermost parallel) loop.
    pub iterations: usize,
    /// Double-precision floating-point operations per iteration.
    pub flops_per_iter: f64,
    /// Total instructions per iteration (integer + memory + branch + fp).
    pub instructions_per_iter: f64,
    /// Bytes of data touched per iteration (before cache filtering).
    pub bytes_per_iter: f64,
    /// Working-set size per thread in bytes (what competes for cache).
    pub working_set_bytes: f64,
    /// Memory access pattern.
    pub access_pattern: AccessPattern,
    /// Branches per iteration.
    pub branches_per_iter: f64,
    /// Fraction of branches mispredicted.
    pub branch_mispredict_rate: f64,
    /// Relative magnitude of per-iteration cost variation (0 = perfectly
    /// balanced; 1 = the most expensive iterations cost ~2× the mean).
    pub imbalance: f64,
    /// Shape of the imbalance.
    pub imbalance_shape: ImbalanceShape,
    /// Fraction of the region's work that is inherently serial (executed by
    /// one thread regardless of the configuration).
    pub serial_fraction: f64,
    /// Maximum useful parallelism beyond which extra threads only add
    /// overhead (models small trip counts and sync-heavy regions).
    pub scalability_limit: usize,
}

impl RegionProfile {
    /// A reasonable default profile used as a starting point by builders.
    pub fn balanced(name: &str, iterations: usize) -> Self {
        RegionProfile {
            name: name.to_string(),
            iterations,
            flops_per_iter: 100.0,
            instructions_per_iter: 300.0,
            bytes_per_iter: 200.0,
            working_set_bytes: 1024.0 * 1024.0,
            access_pattern: AccessPattern::Stencil,
            branches_per_iter: 10.0,
            branch_mispredict_rate: 0.02,
            imbalance: 0.0,
            imbalance_shape: ImbalanceShape::Uniform,
            serial_fraction: 0.0,
            scalability_limit: usize::MAX,
        }
    }

    /// Relative cost of iteration `i` (mean cost is ~1.0). Deterministic so
    /// that every tuner sees the same workload.
    pub fn iteration_cost(&self, i: usize) -> f64 {
        let n = self.iterations.max(1) as f64;
        let x = i as f64 / n;
        match self.imbalance_shape {
            ImbalanceShape::Uniform => 1.0,
            // mean of (1 + imb*x) over x∈[0,1] is 1 + imb/2; normalize to ~1
            ImbalanceShape::Ramp => (1.0 + self.imbalance * x) / (1.0 + self.imbalance / 2.0),
            ImbalanceShape::FrontLoaded => {
                // first 10% of iterations cost (1 + 10·imb), the rest 1.0,
                // normalized so the mean stays 1.
                let spike = 1.0 + 10.0 * self.imbalance;
                let mean = 0.1 * spike + 0.9;
                if x < 0.1 {
                    spike / mean
                } else {
                    1.0 / mean
                }
            }
            ImbalanceShape::RandomSpikes => {
                // Deterministic hash-based spikes: ~20% of iterations cost up
                // to (1 + 4·imb)× the base.
                let h = splitmix(i as u64);
                let u = (h % 1000) as f64 / 1000.0;
                let spike = if u < 0.2 {
                    1.0 + 4.0 * self.imbalance
                } else {
                    1.0
                };
                let mean = 0.2 * (1.0 + 4.0 * self.imbalance) + 0.8;
                spike / mean
            }
        }
    }

    /// Total relative cost of the contiguous iteration range `[start, start+len)`.
    ///
    /// Closed-form for the smooth shapes; sampled for the spiky one when the
    /// range is small and approximated by the mean when it is large.
    pub fn range_cost(&self, start: usize, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let n = self.iterations.max(1) as f64;
        match self.imbalance_shape {
            ImbalanceShape::Uniform => len as f64,
            ImbalanceShape::Ramp => {
                // sum over i in [start, start+len) of (1 + imb*i/n) / (1 + imb/2)
                let s = start as f64;
                let l = len as f64;
                let sum_x = l * (s + (l - 1.0) / 2.0) / n;
                (l + self.imbalance * sum_x) / (1.0 + self.imbalance / 2.0)
            }
            ImbalanceShape::FrontLoaded => {
                let spike = 1.0 + 10.0 * self.imbalance;
                let mean = 0.1 * spike + 0.9;
                let boundary = (0.1 * n) as usize;
                let end = start + len;
                let in_spike = end.min(boundary).saturating_sub(start);
                let out_spike = len - in_spike;
                (in_spike as f64 * spike + out_spike as f64) / mean
            }
            ImbalanceShape::RandomSpikes => {
                if len <= 256 {
                    (start..start + len).map(|i| self.iteration_cost(i)).sum()
                } else {
                    // Large ranges converge to the mean cost of 1 per iteration.
                    len as f64
                }
            }
        }
    }

    /// Total relative cost of the whole iteration space (≈ `iterations`).
    pub fn total_cost(&self) -> f64 {
        self.range_cost(0, self.iterations)
    }
}

/// SplitMix64 hash for deterministic pseudo-random iteration costs.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(shape: ImbalanceShape, imbalance: f64) -> RegionProfile {
        RegionProfile {
            imbalance,
            imbalance_shape: shape,
            ..RegionProfile::balanced("p", 10_000)
        }
    }

    #[test]
    fn uniform_cost_is_one_per_iteration() {
        let p = profile(ImbalanceShape::Uniform, 0.5);
        assert_eq!(p.iteration_cost(0), 1.0);
        assert_eq!(p.range_cost(100, 50), 50.0);
        assert!((p.total_cost() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn ramp_costs_increase_but_mean_stays_one() {
        let p = profile(ImbalanceShape::Ramp, 1.0);
        assert!(p.iteration_cost(9_999) > p.iteration_cost(0));
        let total = p.total_cost();
        assert!(
            (total / 10_000.0 - 1.0).abs() < 0.01,
            "mean {}",
            total / 10_000.0
        );
    }

    #[test]
    fn front_loaded_spike_is_in_the_first_tenth() {
        let p = profile(ImbalanceShape::FrontLoaded, 0.5);
        assert!(p.iteration_cost(10) > p.iteration_cost(5_000));
        let total = p.total_cost();
        assert!((total / 10_000.0 - 1.0).abs() < 0.02);
    }

    #[test]
    fn range_cost_matches_sum_of_iteration_costs() {
        for shape in [
            ImbalanceShape::Uniform,
            ImbalanceShape::Ramp,
            ImbalanceShape::FrontLoaded,
            ImbalanceShape::RandomSpikes,
        ] {
            let p = profile(shape, 0.7);
            let analytic = p.range_cost(900, 200);
            let summed: f64 = (900..1100)
                .map(|i| p.iteration_cost(i))
                .collect::<Vec<_>>()
                .iter()
                .sum();
            assert!(
                (analytic - summed).abs() / summed < 0.02,
                "{shape:?}: {analytic} vs {summed}"
            );
        }
    }

    #[test]
    fn random_spikes_are_deterministic() {
        let p = profile(ImbalanceShape::RandomSpikes, 0.8);
        let a: f64 = (0..100).map(|i| p.iteration_cost(i)).sum();
        let b: f64 = (0..100).map(|i| p.iteration_cost(i)).sum();
        assert_eq!(a, b);
        // and actually varies across iterations
        assert!((0..100).any(|i| (p.iteration_cost(i) - p.iteration_cost(i + 1)).abs() > 1e-6));
    }

    #[test]
    fn zero_length_range_costs_nothing() {
        let p = profile(ImbalanceShape::Ramp, 0.5);
        assert_eq!(p.range_cost(10, 0), 0.0);
    }
}
