//! # pnp-openmp
//!
//! The OpenMP runtime layer of the reproduction. It provides:
//!
//! * [`OmpConfig`] — the tunable runtime configuration of Table I
//!   (thread count, scheduling policy, chunk size) plus the default
//!   configuration the paper compares against (all hardware threads, static
//!   schedule, compiler-chosen chunk).
//! * [`schedule`] — iteration-to-thread assignment for `static`, `dynamic`
//!   and `guided` schedules, both as pure chunk lists and as a cost-aware
//!   list-scheduling simulation.
//! * [`pool`] — a real shared-memory parallel-for executor (worksharing over
//!   OS threads) implementing the same three schedules, so examples and
//!   integration tests can run genuinely parallel kernels on the host.
//! * [`par`] — data-parallel collection helpers on top of the executor: an
//!   order-preserving [`parallel_map`] and the [`Threads`] worker knob. The
//!   exhaustive dataset sweep in `pnp-core` fans out over this layer.
//! * [`sim`] — the analytic execution model: given a machine, a power cap,
//!   a region's workload profile and an `OmpConfig`, it predicts execution
//!   time, energy, sustained frequency and PAPI-style counters. This replaces
//!   the paper's physical testbed measurements (see DESIGN.md).

pub mod config;
pub mod par;
pub mod pool;
pub mod profile;
pub mod schedule;
pub mod sim;

pub use config::{default_config, OmpConfig, Schedule};
pub use par::{parallel_map, parallel_map_indexed, parallel_map_with_state, Threads};
pub use pool::ThreadPool;
pub use profile::{AccessPattern, ImbalanceShape, RegionProfile};
pub use sim::{simulate_region, simulate_region_with_model, ExecutionResult};
