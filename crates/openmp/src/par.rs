//! Data-parallel helpers built on the worksharing executor.
//!
//! [`ThreadPool::parallel_for`] is an OpenMP-shaped primitive: it runs a
//! side-effecting body over an index space. This module layers the
//! *collecting* patterns the rest of the repository needs on top of it —
//! a scoped, order-preserving [`parallel_map`] (and its index-space twin
//! [`parallel_map_indexed`]) plus the [`Threads`] knob that decides how many
//! workers drive it.
//!
//! Two properties are guaranteed and load-bearing (see DESIGN.md §9):
//!
//! * **Order preservation** — output slot `i` holds exactly `f(input[i])`,
//!   written back by index, so results never depend on completion order.
//! * **Determinism** — for a pure `f`, the returned vector is bit-identical
//!   regardless of the worker count (including the serial 1-thread path).
//!
//! Jobs are handed out through a `dynamic, chunk 1` schedule: the map is
//! meant for coarse-grained, heterogeneous work items (an exhaustive region
//! sweep takes orders of magnitude longer than a dispatch), where greedy
//! load balancing beats static partitioning.

use crate::config::{OmpConfig, Schedule};
use crate::pool::ThreadPool;
use std::sync::OnceLock;

/// Environment variable consulted by [`Threads::from_env`].
pub const THREADS_ENV_VAR: &str = "PNP_SWEEP_THREADS";

/// Environment variable consulted by [`Threads::from_train_env`] — the
/// worker count of the LOOCV training fan-out in `pnp-core` (one job per
/// `(fold, power level)` pair), kept separate from the sweep knob so the two
/// phases can be sized independently.
pub const TRAIN_THREADS_ENV_VAR: &str = "PNP_TRAIN_THREADS";

/// How many worker threads a data-parallel operation should use.
///
/// The knob is resolved *late* (at [`Threads::resolve`] time) so a single
/// value can be threaded through layers that do not know the machine it
/// will eventually run on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Threads {
    /// Use the host's available parallelism (`std::thread::available_parallelism`),
    /// falling back to 1 when it cannot be queried.
    #[default]
    Auto,
    /// Use exactly this many workers. `Fixed(0)` is a degenerate request and
    /// resolves to 1 — parallel operations never run with zero workers.
    Fixed(usize),
}

impl Threads {
    /// Resolves the knob from the `PNP_SWEEP_THREADS` environment variable:
    /// unset, empty, or `auto` (any case) mean [`Threads::Auto`]; a decimal
    /// integer means [`Threads::Fixed`]. Unparseable values fall back to
    /// `Auto` rather than aborting an hours-long experiment.
    pub fn from_env() -> Threads {
        Threads::from_env_var(THREADS_ENV_VAR)
    }

    /// Resolves the knob from the `PNP_TRAIN_THREADS` environment variable,
    /// with the same semantics as [`Threads::from_env`].
    pub fn from_train_env() -> Threads {
        Threads::from_env_var(TRAIN_THREADS_ENV_VAR)
    }

    /// Resolves the knob from an arbitrary environment variable (the shared
    /// core of [`Threads::from_env`] / [`Threads::from_train_env`]): unset
    /// means `Auto`, anything set goes through [`Threads::parse`], and
    /// unparseable values fall back to `Auto` rather than aborting an
    /// hours-long experiment.
    pub fn from_env_var(var: &str) -> Threads {
        match std::env::var(var) {
            Ok(v) => Threads::parse(&v).unwrap_or(Threads::Auto),
            Err(_) => Threads::Auto,
        }
    }

    /// Parses a knob value: `""`/`"auto"` (any case) → `Auto`, a decimal
    /// integer → `Fixed`. Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<Threads> {
        let s = s.trim();
        if s.is_empty() || s.eq_ignore_ascii_case("auto") {
            return Some(Threads::Auto);
        }
        s.parse::<usize>().ok().map(Threads::Fixed)
    }

    /// The concrete worker count: always ≥ 1.
    pub fn resolve(&self) -> usize {
        match self {
            Threads::Auto => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            Threads::Fixed(n) => (*n).max(1),
        }
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Threads::Auto => write!(f, "auto({})", self.resolve()),
            Threads::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Maps `f` over `0..n` in parallel, returning the results in index order.
///
/// This is the indexed-collect primitive: each worker writes its result into
/// the slot of the index it computed, so the output is order-preserving and
/// (for a pure `f`) bit-identical for every worker count. With one worker —
/// or `n <= 1` — no threads are spawned and the map degenerates to a plain
/// serial loop over the same `f`, which is what makes the 1-thread output
/// the natural determinism baseline.
pub fn parallel_map_indexed<U, F>(n: usize, threads: Threads, f: F) -> Vec<U>
where
    U: Send + Sync,
    F: Fn(usize) -> U + Sync,
{
    let workers = threads.resolve().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    // One write-once slot per index. `OnceLock` both carries the value and
    // encodes the invariant that every index is produced exactly once.
    let slots: Vec<OnceLock<U>> = (0..n).map(|_| OnceLock::new()).collect();
    let pool = ThreadPool::new(OmpConfig::new(workers, Schedule::Dynamic, Some(1)));
    pool.parallel_for(n, |i| {
        let value = f(i);
        assert!(
            slots[i].set(value).is_ok(),
            "parallel_for visited index {i} twice"
        );
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("parallel_for covered every index"))
        .collect()
}

/// Maps `f` over a slice in parallel, returning `Vec<f(item)>` in input
/// order. A thin wrapper over [`parallel_map_indexed`]; the same ordering and
/// determinism guarantees apply.
pub fn parallel_map<T, U, F>(items: &[T], threads: Threads, f: F) -> Vec<U>
where
    T: Sync,
    U: Send + Sync,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_indexed(items.len(), threads, |i| f(&items[i]))
}

/// Maps `f(item, &mut state)` over a slice in parallel, where each in-flight
/// item needs *exclusive* access to one of a fixed set of mutable states
/// (model replicas, scratch buffers). This is the batching primitive behind
/// `pnp-serve`: a request batch fans out over the worker pool and each
/// worker checks out whichever replica is free.
///
/// Replica acquisition starts at `i % states.len()` and `try_lock`s forward
/// so workers spread across replicas instead of convoying on the first; if
/// every replica is busy the worker blocks on its starting slot. The output
/// is order-preserving like [`parallel_map`], and when all states are
/// *equivalent* (same replica contents) and `f` is pure-given-state, the
/// result is bit-identical for every worker count — the 1-worker path
/// degenerates to a serial loop using only `states[i % len]`.
///
/// Panics if `states` is empty.
pub fn parallel_map_with_state<T, S, U, F>(
    items: &[T],
    threads: Threads,
    states: &[std::sync::Mutex<S>],
    f: F,
) -> Vec<U>
where
    T: Sync,
    S: Send,
    U: Send + Sync,
    F: Fn(&T, &mut S) -> U + Sync,
{
    assert!(
        !states.is_empty(),
        "parallel_map_with_state needs at least one state"
    );
    parallel_map_indexed(items.len(), threads, |i| {
        let start = i % states.len();
        let mut guard = None;
        for offset in 0..states.len() {
            if let Ok(g) = states[(start + offset) % states.len()].try_lock() {
                guard = Some(g);
                break;
            }
        }
        let mut guard = guard.unwrap_or_else(|| {
            states[start]
                .lock()
                .expect("replica state poisoned by a panicking worker")
        });
        f(&items[i], &mut guard)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn output_is_in_input_order_for_every_worker_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [Threads::Fixed(1), Threads::Fixed(2), Threads::Fixed(8)] {
            let got = parallel_map(&items, threads, |x| x * 3 + 1);
            assert_eq!(got, expected, "threads={threads:?}");
        }
    }

    #[test]
    fn indexed_map_matches_serial_map_bitwise() {
        // Float results must be bit-identical, not just approximately equal.
        let f = |i: usize| ((i as f64) * 0.1).sin() / ((i + 1) as f64);
        let serial: Vec<u64> = (0..1000).map(|i| f(i).to_bits()).collect();
        for workers in [2usize, 3, 8] {
            let par = parallel_map_indexed(1000, Threads::Fixed(workers), f);
            let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(par_bits, serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let empty: Vec<i32> = parallel_map_indexed(0, Threads::Fixed(4), |i| i as i32);
        assert!(empty.is_empty());
        let one = parallel_map_indexed(1, Threads::Auto, |i| i + 41);
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn multiple_workers_actually_participate() {
        // Scheduling is up to the OS, so retry a few times before declaring
        // the executor single-threaded (the sleeps make a lone worker
        // draining every job astronomically unlikely, but not impossible).
        for attempt in 0..3 {
            let ids = Mutex::new(HashSet::new());
            parallel_map_indexed(64, Threads::Fixed(4), |i| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(200));
                i
            });
            if ids.into_inner().unwrap().len() > 1 {
                return;
            }
            eprintln!("attempt {attempt}: only one worker participated, retrying");
        }
        panic!("no run saw more than one participating worker");
    }

    #[test]
    fn single_worker_spawns_no_threads() {
        let main_id = std::thread::current().id();
        parallel_map_indexed(16, Threads::Fixed(1), |i| {
            assert_eq!(std::thread::current().id(), main_id);
            i
        });
    }

    #[test]
    fn knob_parsing_and_clamping() {
        assert_eq!(Threads::parse("auto"), Some(Threads::Auto));
        assert_eq!(Threads::parse("AUTO"), Some(Threads::Auto));
        assert_eq!(Threads::parse(""), Some(Threads::Auto));
        assert_eq!(Threads::parse(" 4 "), Some(Threads::Fixed(4)));
        assert_eq!(Threads::parse("0"), Some(Threads::Fixed(0)));
        assert_eq!(Threads::parse("-1"), None);
        assert_eq!(Threads::parse("many"), None);
        // The degenerate zero request is clamped, never honoured.
        assert_eq!(Threads::Fixed(0).resolve(), 1);
        assert!(Threads::Auto.resolve() >= 1);
        assert_eq!(Threads::default(), Threads::Auto);
    }

    #[test]
    fn stateful_map_is_bit_identical_across_worker_and_replica_counts() {
        // Equivalent replica states + pure-given-state f ⇒ the output must
        // match the serial path bitwise, whatever the (workers, replicas)
        // shape — the contract pnp-serve's batching relies on.
        let items: Vec<usize> = (0..123).collect();
        let f = |i: &usize, scale: &mut f64| ((*i as f64) * *scale).sin().to_bits();
        let serial: Vec<u64> = {
            let states = [Mutex::new(0.1f64)];
            parallel_map_with_state(&items, Threads::Fixed(1), &states, f)
        };
        for workers in [1usize, 2, 4, 8] {
            for replicas in [1usize, 2, 3, 8] {
                let states: Vec<Mutex<f64>> = (0..replicas).map(|_| Mutex::new(0.1)).collect();
                let got = parallel_map_with_state(&items, Threads::Fixed(workers), &states, f);
                assert_eq!(got, serial, "workers={workers} replicas={replicas}");
            }
        }
    }

    #[test]
    fn stateful_map_gives_each_item_exclusive_state_access() {
        // Every worker mutates its checked-out state; exclusivity means the
        // total increment count across replicas equals the item count even
        // with fewer replicas than workers.
        let items: Vec<usize> = (0..200).collect();
        let states: Vec<Mutex<u64>> = (0..3).map(|_| Mutex::new(0)).collect();
        let out = parallel_map_with_state(&items, Threads::Fixed(8), &states, |i, count| {
            *count += 1;
            std::thread::sleep(std::time::Duration::from_micros(20));
            *i
        });
        assert_eq!(out, items);
        let total: u64 = states.iter().map(|s| *s.lock().unwrap()).sum();
        assert_eq!(total, items.len() as u64);
    }

    #[test]
    fn stateful_map_handles_empty_input_and_single_replica() {
        let states = [Mutex::new(())];
        let empty: Vec<i32> =
            parallel_map_with_state(&[] as &[i32], Threads::Fixed(4), &states, |x, _| *x);
        assert!(empty.is_empty());
        let one = parallel_map_with_state(&[7], Threads::Fixed(4), &states, |x, _| x + 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn stateful_map_rejects_zero_replicas() {
        let states: Vec<Mutex<u8>> = Vec::new();
        parallel_map_with_state(&[1, 2, 3], Threads::Fixed(2), &states, |x, _| *x);
    }

    #[test]
    fn display_names_the_resolved_auto_count() {
        assert_eq!(Threads::Fixed(6).to_string(), "6");
        let auto = Threads::Auto.to_string();
        assert!(auto.starts_with("auto("), "{auto}");
    }
}
