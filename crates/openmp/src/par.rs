//! Data-parallel helpers built on the worksharing executor.
//!
//! [`ThreadPool::parallel_for`] is an OpenMP-shaped primitive: it runs a
//! side-effecting body over an index space. This module layers the
//! *collecting* patterns the rest of the repository needs on top of it —
//! a scoped, order-preserving [`parallel_map`] (and its index-space twin
//! [`parallel_map_indexed`]) plus the [`Threads`] knob that decides how many
//! workers drive it.
//!
//! Two properties are guaranteed and load-bearing (see DESIGN.md §9):
//!
//! * **Order preservation** — output slot `i` holds exactly `f(input[i])`,
//!   written back by index, so results never depend on completion order.
//! * **Determinism** — for a pure `f`, the returned vector is bit-identical
//!   regardless of the worker count (including the serial 1-thread path).
//!
//! Jobs are handed out through a `dynamic, chunk 1` schedule: the map is
//! meant for coarse-grained, heterogeneous work items (an exhaustive region
//! sweep takes orders of magnitude longer than a dispatch), where greedy
//! load balancing beats static partitioning.

use crate::config::{OmpConfig, Schedule};
use crate::pool::ThreadPool;
use std::sync::OnceLock;

/// Environment variable consulted by [`Threads::from_env`].
pub const THREADS_ENV_VAR: &str = "PNP_SWEEP_THREADS";

/// Environment variable consulted by [`Threads::from_train_env`] — the
/// worker count of the LOOCV training fan-out in `pnp-core` (one job per
/// `(fold, power level)` pair), kept separate from the sweep knob so the two
/// phases can be sized independently.
pub const TRAIN_THREADS_ENV_VAR: &str = "PNP_TRAIN_THREADS";

/// How many worker threads a data-parallel operation should use.
///
/// The knob is resolved *late* (at [`Threads::resolve`] time) so a single
/// value can be threaded through layers that do not know the machine it
/// will eventually run on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Threads {
    /// Use the host's available parallelism (`std::thread::available_parallelism`),
    /// falling back to 1 when it cannot be queried.
    #[default]
    Auto,
    /// Use exactly this many workers. `Fixed(0)` is a degenerate request and
    /// resolves to 1 — parallel operations never run with zero workers.
    Fixed(usize),
}

impl Threads {
    /// Resolves the knob from the `PNP_SWEEP_THREADS` environment variable:
    /// unset, empty, or `auto` (any case) mean [`Threads::Auto`]; a decimal
    /// integer means [`Threads::Fixed`]. Unparseable values fall back to
    /// `Auto` rather than aborting an hours-long experiment.
    pub fn from_env() -> Threads {
        Threads::from_env_var(THREADS_ENV_VAR)
    }

    /// Resolves the knob from the `PNP_TRAIN_THREADS` environment variable,
    /// with the same semantics as [`Threads::from_env`].
    pub fn from_train_env() -> Threads {
        Threads::from_env_var(TRAIN_THREADS_ENV_VAR)
    }

    /// Resolves the knob from an arbitrary environment variable (the shared
    /// core of [`Threads::from_env`] / [`Threads::from_train_env`]): unset
    /// means `Auto`, anything set goes through [`Threads::parse`], and
    /// unparseable values fall back to `Auto` rather than aborting an
    /// hours-long experiment.
    pub fn from_env_var(var: &str) -> Threads {
        match std::env::var(var) {
            Ok(v) => Threads::parse(&v).unwrap_or(Threads::Auto),
            Err(_) => Threads::Auto,
        }
    }

    /// Parses a knob value: `""`/`"auto"` (any case) → `Auto`, a decimal
    /// integer → `Fixed`. Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<Threads> {
        let s = s.trim();
        if s.is_empty() || s.eq_ignore_ascii_case("auto") {
            return Some(Threads::Auto);
        }
        s.parse::<usize>().ok().map(Threads::Fixed)
    }

    /// The concrete worker count: always ≥ 1.
    pub fn resolve(&self) -> usize {
        match self {
            Threads::Auto => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            Threads::Fixed(n) => (*n).max(1),
        }
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Threads::Auto => write!(f, "auto({})", self.resolve()),
            Threads::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Maps `f` over `0..n` in parallel, returning the results in index order.
///
/// This is the indexed-collect primitive: each worker writes its result into
/// the slot of the index it computed, so the output is order-preserving and
/// (for a pure `f`) bit-identical for every worker count. With one worker —
/// or `n <= 1` — no threads are spawned and the map degenerates to a plain
/// serial loop over the same `f`, which is what makes the 1-thread output
/// the natural determinism baseline.
pub fn parallel_map_indexed<U, F>(n: usize, threads: Threads, f: F) -> Vec<U>
where
    U: Send + Sync,
    F: Fn(usize) -> U + Sync,
{
    let workers = threads.resolve().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    // One write-once slot per index. `OnceLock` both carries the value and
    // encodes the invariant that every index is produced exactly once.
    let slots: Vec<OnceLock<U>> = (0..n).map(|_| OnceLock::new()).collect();
    let pool = ThreadPool::new(OmpConfig::new(workers, Schedule::Dynamic, Some(1)));
    pool.parallel_for(n, |i| {
        let value = f(i);
        assert!(
            slots[i].set(value).is_ok(),
            "parallel_for visited index {i} twice"
        );
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("parallel_for covered every index"))
        .collect()
}

/// Maps `f` over a slice in parallel, returning `Vec<f(item)>` in input
/// order. A thin wrapper over [`parallel_map_indexed`]; the same ordering and
/// determinism guarantees apply.
pub fn parallel_map<T, U, F>(items: &[T], threads: Threads, f: F) -> Vec<U>
where
    T: Sync,
    U: Send + Sync,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_indexed(items.len(), threads, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn output_is_in_input_order_for_every_worker_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [Threads::Fixed(1), Threads::Fixed(2), Threads::Fixed(8)] {
            let got = parallel_map(&items, threads, |x| x * 3 + 1);
            assert_eq!(got, expected, "threads={threads:?}");
        }
    }

    #[test]
    fn indexed_map_matches_serial_map_bitwise() {
        // Float results must be bit-identical, not just approximately equal.
        let f = |i: usize| ((i as f64) * 0.1).sin() / ((i + 1) as f64);
        let serial: Vec<u64> = (0..1000).map(|i| f(i).to_bits()).collect();
        for workers in [2usize, 3, 8] {
            let par = parallel_map_indexed(1000, Threads::Fixed(workers), f);
            let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(par_bits, serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let empty: Vec<i32> = parallel_map_indexed(0, Threads::Fixed(4), |i| i as i32);
        assert!(empty.is_empty());
        let one = parallel_map_indexed(1, Threads::Auto, |i| i + 41);
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn multiple_workers_actually_participate() {
        // Scheduling is up to the OS, so retry a few times before declaring
        // the executor single-threaded (the sleeps make a lone worker
        // draining every job astronomically unlikely, but not impossible).
        for attempt in 0..3 {
            let ids = Mutex::new(HashSet::new());
            parallel_map_indexed(64, Threads::Fixed(4), |i| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(200));
                i
            });
            if ids.into_inner().unwrap().len() > 1 {
                return;
            }
            eprintln!("attempt {attempt}: only one worker participated, retrying");
        }
        panic!("no run saw more than one participating worker");
    }

    #[test]
    fn single_worker_spawns_no_threads() {
        let main_id = std::thread::current().id();
        parallel_map_indexed(16, Threads::Fixed(1), |i| {
            assert_eq!(std::thread::current().id(), main_id);
            i
        });
    }

    #[test]
    fn knob_parsing_and_clamping() {
        assert_eq!(Threads::parse("auto"), Some(Threads::Auto));
        assert_eq!(Threads::parse("AUTO"), Some(Threads::Auto));
        assert_eq!(Threads::parse(""), Some(Threads::Auto));
        assert_eq!(Threads::parse(" 4 "), Some(Threads::Fixed(4)));
        assert_eq!(Threads::parse("0"), Some(Threads::Fixed(0)));
        assert_eq!(Threads::parse("-1"), None);
        assert_eq!(Threads::parse("many"), None);
        // The degenerate zero request is clamped, never honoured.
        assert_eq!(Threads::Fixed(0).resolve(), 1);
        assert!(Threads::Auto.resolve() >= 1);
        assert_eq!(Threads::default(), Threads::Auto);
    }

    #[test]
    fn display_names_the_resolved_auto_count() {
        assert_eq!(Threads::Fixed(6).to_string(), "6");
        let auto = Threads::Auto.to_string();
        assert!(auto.starts_with("auto("), "{auto}");
    }
}
