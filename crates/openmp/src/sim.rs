//! The analytic execution model: predicts time, energy, and counters for one
//! OpenMP region under one `(power cap, OmpConfig)` pair on one machine.
//!
//! This is the stand-in for the paper's physical measurements. The model is
//! deliberately mechanistic rather than fitted: each term corresponds to a
//! real effect the paper's tuning problem depends on —
//!
//! * the power cap throttles frequency (via [`PowerModel::freq_at_cap`]),
//!   hurting compute-bound regions more than memory-bound ones;
//! * memory bandwidth is shared, so memory-bound regions stop scaling at
//!   moderate thread counts while compute-bound ones keep scaling;
//! * hyper-threads share execution units and add little once a core is busy;
//! * static scheduling suffers under load imbalance, dynamic/guided fix the
//!   imbalance at the price of per-chunk dispatch overhead (so the chunk size
//!   matters in both directions);
//! * fork/join and barrier costs grow with the thread count, so tiny regions
//!   prefer few threads;
//! * package energy is power × time, with static power making slow
//!   executions energy-expensive even at low power.
//!
//! Together these produce the qualitative landscape the paper reports:
//! different regions (and different power caps) favour very different
//! configurations, and optimizing time, energy, or EDP leads to different
//! choices.

use crate::config::{OmpConfig, Schedule};
use crate::profile::RegionProfile;
use crate::schedule::simulate_schedule;
use pnp_machine::cache::AccessPattern;
use pnp_machine::{CounterSet, EnergySample, MachineSpec, PowerModel};
use serde::{Deserialize, Serialize};

/// The predicted outcome of executing a region once.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecutionResult {
    /// Wall-clock time in seconds.
    pub time_s: f64,
    /// Package energy in joules.
    pub energy_j: f64,
    /// Sustained core frequency in GHz under the power cap.
    pub frequency_ghz: f64,
    /// Average execution-unit utilization (0..1) of the busy threads.
    pub utilization: f64,
    /// PAPI-style counters for the whole region execution.
    pub counters: CounterSet,
    /// Average package power in watts.
    pub power_w: f64,
}

impl ExecutionResult {
    /// The `(time, energy)` pair as an [`EnergySample`].
    pub fn sample(&self) -> EnergySample {
        EnergySample::new(self.time_s, self.energy_j)
    }

    /// Energy-delay product.
    pub fn edp(&self) -> f64 {
        self.time_s * self.energy_j
    }
}

/// Per-iteration timing breakdown at a fixed frequency.
struct IterationModel {
    iter_time_s: f64,
    utilization: f64,
    accesses_per_iter: f64,
    miss_l1: f64,
    miss_l2: f64,
    miss_l3: f64,
}

/// Average achieved instructions per cycle for scalar/SIMD mixes.
const BASE_IPC: f64 = 2.0;
/// Cycles lost per mispredicted branch.
const MISPREDICT_PENALTY_CYCLES: f64 = 15.0;

fn iteration_model(
    machine: &MachineSpec,
    profile: &RegionProfile,
    threads: usize,
    freq_ghz: f64,
) -> IterationModel {
    let hz = freq_ghz * 1e9;
    let cores = machine.total_cores();

    // Hyper-threading: two threads on one core share execution units and
    // reach ~1.25× the throughput of one thread.
    let per_thread_speed = if threads <= cores {
        1.0
    } else {
        1.25 * cores as f64 / threads as f64
    };

    // Compute-side time per iteration.
    let flop_time = profile.flops_per_iter / (machine.flops_per_cycle * hz);
    let instr_time = profile.instructions_per_iter / (BASE_IPC * hz);
    let branch_penalty =
        profile.branches_per_iter * profile.branch_mispredict_rate * MISPREDICT_PENALTY_CYCLES / hz;
    let compute_time = (flop_time.max(instr_time) + branch_penalty) / per_thread_speed;

    // Memory-side time per iteration.
    let threads_per_socket = threads.div_ceil(machine.sockets).max(1);
    let miss = machine.cache.miss_profile(
        profile.working_set_bytes,
        threads_per_socket.min(machine.cores_per_socket * machine.threads_per_core),
        profile.access_pattern,
    );
    let dram_bytes = profile.bytes_per_iter * miss.l3_miss_ratio;
    // Bandwidth: shared across threads; a single thread cannot saturate the
    // whole socket interface (cap at ~1/5 of the machine bandwidth).
    let total_bw = machine.mem_bandwidth_gbs * 1e9;
    let per_thread_bw = (total_bw / threads as f64).min(total_bw / 5.0);
    let bw_time = dram_bytes / per_thread_bw;
    // Latency-bound component: only irregular access patterns expose raw
    // latency; streaming/stencil/blocked codes are effectively prefetched.
    let latency_exposure = match profile.access_pattern {
        AccessPattern::Irregular => 0.5,
        AccessPattern::Stencil => 0.02,
        AccessPattern::Streaming => 0.0,
        AccessPattern::HighReuse => 0.005,
    };
    let accesses_per_iter = profile.bytes_per_iter / 8.0;
    let avg_latency_cycles = machine.cache.average_access_latency_cycles(&miss, freq_ghz);
    let lat_time = accesses_per_iter * avg_latency_cycles * latency_exposure / hz;
    let mem_time = bw_time.max(lat_time);

    // Compute and memory partially overlap (out-of-order execution +
    // prefetching); the longer one dominates, a slice of the shorter leaks.
    let iter_time_s = compute_time.max(mem_time) + 0.15 * compute_time.min(mem_time);
    let utilization = (compute_time / iter_time_s).clamp(0.05, 1.0);

    IterationModel {
        iter_time_s,
        utilization,
        accesses_per_iter,
        miss_l1: miss.l1_miss_ratio,
        miss_l2: miss.l2_miss_ratio,
        miss_l3: miss.l3_miss_ratio,
    }
}

/// Predicts the execution of `profile` on `machine` under `power_cap_watts`
/// with the runtime configuration `config`.
pub fn simulate_region(
    machine: &MachineSpec,
    profile: &RegionProfile,
    config: &OmpConfig,
    power_cap_watts: f64,
) -> ExecutionResult {
    let power_model = PowerModel::for_machine(machine);
    simulate_region_with_model(machine, &power_model, profile, config, power_cap_watts)
}

/// Same as [`simulate_region`] but reuses a pre-calibrated [`PowerModel`]
/// (the hot path for exhaustive sweeps).
pub fn simulate_region_with_model(
    machine: &MachineSpec,
    power_model: &PowerModel,
    profile: &RegionProfile,
    config: &OmpConfig,
    power_cap_watts: f64,
) -> ExecutionResult {
    // RAPL cannot enforce a sub-watt package cap (static power alone exceeds
    // it); the model floors the cap at 1 W so degenerate inputs (zero or
    // negative caps, as the validator's edge sweeps produce) yield finite,
    // heavily-throttled executions instead of infinite time / NaN energy.
    let power_cap_watts = power_cap_watts.max(1.0);
    let threads = config.threads.min(machine.total_hw_threads()).max(1);
    let useful_threads = threads.min(profile.scalability_limit).max(1);

    // Frequency/utilization fixed point (two rounds are plenty: utilization
    // moves the sustainable frequency by a few hundred MHz at most).
    let mut freq = power_model.freq_at_cap(power_cap_watts, threads, 1.0);
    let mut model = iteration_model(machine, profile, threads, freq);
    freq = power_model.freq_at_cap(power_cap_watts, threads, model.utilization);
    model = iteration_model(machine, profile, threads, freq);

    // Scheduling: makespan in units of "mean iteration cost".
    let sched_config = OmpConfig {
        threads: useful_threads,
        schedule: config.schedule,
        chunk: config.chunk,
    };
    // Runtime overheads (chunk dispatch, barriers, fork/join) are core
    // cycles, not fixed wall time: their microsecond costs are calibrated at
    // the base frequency and stretch proportionally when the power cap
    // throttles the clock. Without this scaling, overhead-dominated regions
    // are insensitive to the cap and the paper's "tuning headroom grows as
    // the cap shrinks" trend (§I motivating example: 7.54x at 40 W vs. 1.67x
    // at 85 W) disappears (DESIGN.md §11, invariant `motivating.headroom`).
    let overhead_stretch = machine.base_freq_ghz / freq.max(1e-9);
    let dispatch_units = match config.schedule {
        Schedule::Static => 0.0,
        _ => (machine.sched_overhead_us * 1e-6 * overhead_stretch) / model.iter_time_s,
    };
    let effective_chunk = sched_config.effective_chunk(profile.iterations);
    let num_chunks = profile.iterations.div_ceil(effective_chunk);

    let (makespan_units, balance_eff) = if num_chunks <= 4096 {
        let outcome = simulate_schedule(profile.iterations, &sched_config, dispatch_units, |c| {
            profile.range_cost(c.start, c.len)
        });
        (outcome.makespan, outcome.balance_efficiency())
    } else {
        // Closed-form approximation for very large chunk counts.
        let total = profile.total_cost();
        let t = useful_threads as f64;
        match config.schedule {
            Schedule::Static => {
                // Small round-robin chunks interleave the imbalance away.
                (total / t * (1.0 + 0.03 * profile.imbalance), 1.0)
            }
            Schedule::Dynamic | Schedule::Guided => {
                let per_thread = total / t + dispatch_units * num_chunks as f64 / t;
                let straggler = effective_chunk as f64 * (1.0 + profile.imbalance);
                (per_thread + straggler, 0.98)
            }
        }
    };

    // Serial fraction plus fork/join overhead.
    let total_units = profile.total_cost();
    let serial_time = profile.serial_fraction * total_units * model.iter_time_s;
    let parallel_time = (1.0 - profile.serial_fraction) * makespan_units * model.iter_time_s;
    let fork_join = machine.fork_join_us_per_thread * 1e-6 * threads as f64 * overhead_stretch;
    let time_s = serial_time + parallel_time + fork_join;

    // Power: busy threads draw according to their utilization; idle waiting
    // (imbalance) and threads beyond the scalability limit reduce the average
    // draw.
    let busy_share = (useful_threads as f64 / threads as f64) * balance_eff.clamp(0.1, 1.0);
    let power_util = (model.utilization * busy_share).clamp(0.05, 1.0);
    let mut power_w = power_model.power_under_cap(power_cap_watts, threads, power_util);
    // If even the frequency floor exceeds the cap, RAPL enforces the limit by
    // duty-cycling the clock: execution stretches and average power equals
    // the cap.
    let mut time_s = time_s;
    if power_w > power_cap_watts {
        time_s *= power_w / power_cap_watts;
        power_w = power_cap_watts;
    }
    let energy_j = power_w * time_s;

    // Counters for the whole region.
    let iters = profile.iterations as f64;
    let accesses_total = model.accesses_per_iter * iters;
    let counters = CounterSet {
        l1_misses: accesses_total * model.miss_l1,
        l2_misses: accesses_total * model.miss_l2,
        l3_misses: accesses_total * model.miss_l3,
        instructions: profile.instructions_per_iter * iters,
        branch_mispredictions: profile.branches_per_iter * profile.branch_mispredict_rate * iters,
    };

    ExecutionResult {
        time_s,
        energy_j,
        frequency_ghz: freq,
        utilization: model.utilization,
        counters,
        power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::default_config;
    use crate::profile::ImbalanceShape;
    use pnp_machine::{haswell, skylake};

    fn compute_bound(iters: usize) -> RegionProfile {
        RegionProfile {
            flops_per_iter: 4000.0,
            instructions_per_iter: 6000.0,
            bytes_per_iter: 64.0,
            working_set_bytes: 200.0 * 1024.0,
            access_pattern: AccessPattern::HighReuse,
            ..RegionProfile::balanced("compute", iters)
        }
    }

    fn memory_bound(iters: usize) -> RegionProfile {
        RegionProfile {
            flops_per_iter: 16.0,
            instructions_per_iter: 60.0,
            bytes_per_iter: 512.0,
            working_set_bytes: 512.0 * 1024.0 * 1024.0,
            access_pattern: AccessPattern::Streaming,
            ..RegionProfile::balanced("memory", iters)
        }
    }

    #[test]
    fn results_are_finite_and_positive_across_the_config_space() {
        let machine = haswell();
        for &threads in &[1usize, 2, 8, 32] {
            for schedule in Schedule::all() {
                for &chunk in &[None, Some(1), Some(128)] {
                    for &cap in &[40.0, 60.0, 85.0] {
                        let config = OmpConfig::new(threads, schedule, chunk);
                        let r = simulate_region(&machine, &compute_bound(20_000), &config, cap);
                        assert!(r.time_s > 0.0 && r.time_s.is_finite());
                        assert!(r.energy_j > 0.0 && r.energy_j.is_finite());
                        assert!(r.power_w <= cap * 1.01 + 1.0);
                    }
                }
            }
        }
    }

    #[test]
    fn compute_bound_kernels_scale_with_threads() {
        let machine = skylake();
        let p = compute_bound(200_000);
        let t1 = simulate_region(
            &machine,
            &p,
            &OmpConfig::new(1, Schedule::Static, None),
            150.0,
        );
        let t32 = simulate_region(
            &machine,
            &p,
            &OmpConfig::new(32, Schedule::Static, None),
            150.0,
        );
        let speedup = t1.time_s / t32.time_s;
        assert!(speedup > 12.0, "expected strong scaling, got {speedup}");
    }

    #[test]
    fn memory_bound_kernels_saturate_early() {
        let machine = skylake();
        let p = memory_bound(500_000);
        let t8 = simulate_region(
            &machine,
            &p,
            &OmpConfig::new(8, Schedule::Static, None),
            150.0,
        );
        let t64 = simulate_region(
            &machine,
            &p,
            &OmpConfig::new(64, Schedule::Static, None),
            150.0,
        );
        let speedup = t8.time_s / t64.time_s;
        assert!(
            speedup < 2.0,
            "memory-bound region should not keep scaling: {speedup}"
        );
    }

    #[test]
    fn power_caps_hurt_compute_bound_more_than_memory_bound() {
        let machine = haswell();
        let config = default_config(&machine);
        let cb = compute_bound(100_000);
        let mb = memory_bound(100_000);
        let slowdown = |p: &RegionProfile| {
            let hi = simulate_region(&machine, p, &config, 85.0).time_s;
            let lo = simulate_region(&machine, p, &config, 40.0).time_s;
            lo / hi
        };
        let s_cb = slowdown(&cb);
        let s_mb = slowdown(&mb);
        assert!(
            s_cb > 1.1,
            "compute-bound should slow down under the cap: {s_cb}"
        );
        assert!(
            s_cb > s_mb,
            "compute-bound slowdown {s_cb} should exceed memory-bound slowdown {s_mb}"
        );
    }

    #[test]
    fn dynamic_scheduling_helps_imbalanced_regions() {
        let machine = haswell();
        let p = RegionProfile {
            imbalance: 1.5,
            imbalance_shape: ImbalanceShape::Ramp,
            ..compute_bound(4_000)
        };
        let stat = simulate_region(
            &machine,
            &p,
            &OmpConfig::new(16, Schedule::Static, None),
            85.0,
        );
        let dynamic = simulate_region(
            &machine,
            &p,
            &OmpConfig::new(16, Schedule::Dynamic, Some(8)),
            85.0,
        );
        assert!(
            dynamic.time_s < stat.time_s * 0.9,
            "dynamic {} vs static {}",
            dynamic.time_s,
            stat.time_s
        );
    }

    #[test]
    fn tiny_chunks_with_dynamic_pay_dispatch_overhead() {
        let machine = haswell();
        let p = compute_bound(50_000);
        let chunk1 = simulate_region(
            &machine,
            &p,
            &OmpConfig::new(16, Schedule::Dynamic, Some(1)),
            85.0,
        );
        let chunk256 = simulate_region(
            &machine,
            &p,
            &OmpConfig::new(16, Schedule::Dynamic, Some(256)),
            85.0,
        );
        assert!(chunk1.time_s > chunk256.time_s);
    }

    #[test]
    fn tiny_regions_prefer_fewer_threads() {
        let machine = skylake();
        let p = compute_bound(128);
        let few = simulate_region(
            &machine,
            &p,
            &OmpConfig::new(4, Schedule::Static, None),
            150.0,
        );
        let many = simulate_region(
            &machine,
            &p,
            &OmpConfig::new(64, Schedule::Static, None),
            150.0,
        );
        assert!(
            few.time_s < many.time_s,
            "fork/join overhead should dominate: few {} many {}",
            few.time_s,
            many.time_s
        );
    }

    #[test]
    fn lower_caps_reduce_power_and_frequency() {
        let machine = haswell();
        let p = compute_bound(100_000);
        let config = default_config(&machine);
        let hi = simulate_region(&machine, &p, &config, 85.0);
        let lo = simulate_region(&machine, &p, &config, 40.0);
        assert!(lo.frequency_ghz < hi.frequency_ghz);
        assert!(lo.power_w < hi.power_w);
    }

    #[test]
    fn energy_equals_power_times_time() {
        let machine = skylake();
        let r = simulate_region(
            &machine,
            &memory_bound(100_000),
            &OmpConfig::new(16, Schedule::Guided, Some(32)),
            120.0,
        );
        assert!((r.energy_j - r.power_w * r.time_s).abs() < 1e-9);
        assert!((r.sample().edp() - r.edp()).abs() < 1e-12);
    }

    #[test]
    fn counters_scale_with_iteration_count() {
        let machine = haswell();
        let config = default_config(&machine);
        let small = simulate_region(&machine, &memory_bound(10_000), &config, 85.0);
        let large = simulate_region(&machine, &memory_bound(100_000), &config, 85.0);
        assert!((large.counters.instructions / small.counters.instructions - 10.0).abs() < 0.2);
        assert!(large.counters.l3_misses > small.counters.l3_misses * 5.0);
    }

    #[test]
    fn overhead_dominated_regions_gain_more_headroom_at_low_caps() {
        // Regression for the §I motivating-example trend: a tiny region run
        // with every hardware thread is fork/join-dominated, and that
        // overhead is core cycles — it stretches when the cap throttles the
        // clock. The best-over-default speedup must therefore be strictly
        // larger at the lowest cap than at TDP (the paper reports 7.54x at
        // 40 W vs. 1.67x at 85 W). Before the overhead-stretch fix the
        // fork/join term was cap-independent and this ratio was flat.
        let machine = haswell();
        let p = compute_bound(4_000);
        let default = default_config(&machine);
        let few = OmpConfig::new(4, Schedule::Static, Some(1));
        let speedup = |cap: f64| {
            simulate_region(&machine, &p, &default, cap).time_s
                / simulate_region(&machine, &p, &few, cap).time_s
        };
        let low = speedup(40.0);
        let high = speedup(85.0);
        assert!(
            low > high * 1.2,
            "low-cap headroom {low:.2} should clearly exceed high-cap headroom {high:.2}"
        );
    }

    #[test]
    fn degenerate_power_caps_stay_finite() {
        // Zero / negative caps are floored at 1 W: execution is heavily
        // duty-cycled but time and energy stay finite and positive (the
        // pre-fix behaviour was time = inf, energy = NaN at a 0 W cap).
        let machine = haswell();
        let config = default_config(&machine);
        for cap in [0.0, -5.0, 1e-12] {
            let r = simulate_region(&machine, &compute_bound(10_000), &config, cap);
            assert!(r.time_s.is_finite() && r.time_s > 0.0, "cap {cap}: {r:?}");
            assert!(r.energy_j.is_finite() && r.energy_j > 0.0, "cap {cap}");
            assert!(r.power_w <= 1.0 + 1e-9, "cap {cap}: power {}", r.power_w);
        }
        // And a floored cap is consistent with an explicit 1 W cap.
        let zero = simulate_region(&machine, &compute_bound(10_000), &config, 0.0);
        let one = simulate_region(&machine, &compute_bound(10_000), &config, 1.0);
        assert_eq!(zero.time_s, one.time_s);
    }

    #[test]
    fn race_to_halt_does_not_always_hold() {
        // Find a case where the fastest config is not the most energy
        // efficient — the paper's motivating observation.
        let machine = haswell();
        let p = memory_bound(300_000);
        let configs = [
            OmpConfig::new(32, Schedule::Static, None),
            OmpConfig::new(8, Schedule::Static, None),
            OmpConfig::new(4, Schedule::Static, None),
        ];
        let caps = [40.0, 60.0, 70.0, 85.0];
        let mut best_time = (f64::INFINITY, 0usize, 0usize);
        let mut best_energy = (f64::INFINITY, 0usize, 0usize);
        for (ci, c) in configs.iter().enumerate() {
            for (pi, &cap) in caps.iter().enumerate() {
                let r = simulate_region(&machine, &p, c, cap);
                if r.time_s < best_time.0 {
                    best_time = (r.time_s, ci, pi);
                }
                if r.energy_j < best_energy.0 {
                    best_energy = (r.energy_j, ci, pi);
                }
            }
        }
        assert_ne!(
            (best_time.1, best_time.2),
            (best_energy.1, best_energy.2),
            "fastest and greenest configuration should differ for a memory-bound kernel"
        );
    }
}
