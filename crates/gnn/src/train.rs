//! Training loop: minibatch gradient accumulation, optimizer selection,
//! optional GNN freezing (transfer learning), and simple reporting.

use crate::batch::Minibatcher;
use crate::model::PnPModel;
use pnp_graph::EncodedGraph;
use pnp_tensor::optim::clip_grad_norm;
use pnp_tensor::{cross_entropy, Adam, AdamW, Optimizer, Parameter};

/// One labelled training example: a code graph, optional dynamic features
/// (hardware counters / normalized power cap) and the index of the best
/// configuration found by the exhaustive sweep.
#[derive(Clone, Debug)]
pub struct TrainingSample {
    /// The encoded code graph (static features).
    pub graph: EncodedGraph,
    /// Dynamic features, if the model uses them.
    pub dynamic: Option<Vec<f32>>,
    /// Target class (best configuration index).
    pub label: usize,
    /// Grouping key for leave-one-out cross-validation — the application the
    /// region belongs to.
    pub group: String,
}

/// Which optimizer to use (Table II lists AdamW+amsgrad for the
/// power-constrained experiments and Adam for the EDP experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptimizerKind {
    /// Adam.
    Adam,
    /// AdamW with the AMSGrad variant enabled.
    AdamWAmsgrad,
}

/// Training hyperparameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Learning rate (paper: 1e-3).
    pub learning_rate: f32,
    /// Gradient-accumulation batch size (paper: 16).
    pub batch_size: usize,
    /// Optimizer selection.
    pub optimizer: OptimizerKind,
    /// Gradient-norm clip (0 disables clipping).
    pub grad_clip: f32,
    /// When true, only the dense classifier is updated — the transfer-
    /// learning mode of Section IV-B.
    pub freeze_gnn: bool,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            learning_rate: 1e-3,
            batch_size: 16,
            optimizer: OptimizerKind::AdamWAmsgrad,
            grad_clip: 5.0,
            freeze_gnn: false,
            seed: 0xBEEF,
        }
    }
}

/// Summary of one training run.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean cross-entropy loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the training set after the final epoch.
    pub final_train_accuracy: f32,
    /// Number of optimizer steps taken.
    pub steps: usize,
    /// Number of parameters updated per step (differs when the GNN is frozen).
    pub trainable_parameters: usize,
}

impl TrainReport {
    /// True when the loss decreased from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

/// Trains [`PnPModel`]s.
pub struct Trainer {
    /// Training hyperparameters.
    pub config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    fn make_optimizer(&self) -> Box<dyn Optimizer> {
        match self.config.optimizer {
            OptimizerKind::Adam => Box::new(Adam::new(self.config.learning_rate)),
            OptimizerKind::AdamWAmsgrad => {
                Box::new(AdamW::new(self.config.learning_rate).amsgrad())
            }
        }
    }

    /// Trains `model` on `samples` and returns a report.
    ///
    /// With `freeze_gnn` set, the (constant) pooled GNN representation of
    /// every sample is computed **once** up front and all epochs train only
    /// the dense head on the cached features — the graph layers run once per
    /// sample instead of once per sample per epoch. This is what makes the
    /// transfer-learning path genuinely ~4× cheaper (§IV-B) while still
    /// giving the head the full epoch budget.
    pub fn train(&self, model: &mut PnPModel, samples: &[TrainingSample]) -> TrainReport {
        assert!(!samples.is_empty(), "cannot train on an empty sample set");
        let mut optimizer = self.make_optimizer();
        let mut batcher = Minibatcher::new(samples.len(), self.config.batch_size, self.config.seed);
        let freeze = self.config.freeze_gnn;
        let mut report = TrainReport::default();

        // Frozen-GNN fast path: cache each sample's pooled graph features.
        let pooled: Vec<pnp_tensor::Tensor> = if freeze {
            samples
                .iter()
                .map(|s| model.pooled_features(&s.graph))
                .collect()
        } else {
            Vec::new()
        };

        for _epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f32;
            let mut batches_done = 0usize;
            for batch in batcher.epoch_batches() {
                model.zero_grad();
                let mut batch_loss = 0.0f32;
                for &idx in &batch {
                    let s = &samples[idx];
                    let logits = if freeze {
                        model.head_forward(&pooled[idx], s.dynamic.as_deref(), true)
                    } else {
                        model.forward(&s.graph, s.dynamic.as_deref(), true)
                    };
                    let (loss, mut dlogits) = cross_entropy(&logits, &[s.label]);
                    // Average the gradient over the batch.
                    dlogits.scale_inplace(1.0 / batch.len() as f32);
                    if freeze {
                        model.head_backward(&dlogits);
                    } else {
                        model.backward(&dlogits);
                    }
                    batch_loss += loss;
                }
                batch_loss /= batch.len() as f32;

                let mut params = model.parameters();
                if freeze {
                    params.retain(|p| !is_gnn_parameter(p));
                }
                if self.config.grad_clip > 0.0 {
                    clip_grad_norm(&mut params, self.config.grad_clip);
                }
                report.trainable_parameters = params.iter().map(|p| p.numel()).sum();
                optimizer.step(&mut params);
                // Clear any gradients that were not handed to the optimizer
                // (frozen parameters) so they do not accumulate across steps.
                model.zero_grad();

                epoch_loss += batch_loss;
                batches_done += 1;
                report.steps += 1;
            }
            report
                .epoch_losses
                .push(epoch_loss / batches_done.max(1) as f32);
        }

        report.final_train_accuracy = crate::metrics::accuracy(model, samples);
        report
    }

    /// Accuracy of `model` on a held-out sample set.
    pub fn evaluate(&self, model: &mut PnPModel, samples: &[TrainingSample]) -> f32 {
        crate::metrics::accuracy(model, samples)
    }
}

fn is_gnn_parameter(p: &Parameter) -> bool {
    p.name.starts_with("embed") || p.name.starts_with("rgcn")
}

/// Splits samples into `(train, validation)` for leave-one-out cross
/// validation: every sample whose `group` equals `held_out_group` goes into
/// the validation set.
pub fn loocv_split<'a>(
    samples: &'a [TrainingSample],
    held_out_group: &str,
) -> (Vec<&'a TrainingSample>, Vec<&'a TrainingSample>) {
    let mut train = Vec::new();
    let mut val = Vec::new();
    for s in samples {
        if s.group == held_out_group {
            val.push(s);
        } else {
            train.push(s);
        }
    }
    (train, val)
}

/// All distinct groups (application names) in stable order of first
/// appearance — the fold list for LOOCV.
pub fn groups(samples: &[TrainingSample]) -> Vec<String> {
    let mut seen = Vec::new();
    for s in samples {
        if !seen.contains(&s.group) {
            seen.push(s.group.clone());
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use pnp_graph::{build_region_graph, Vocabulary};
    use pnp_ir::dsl::*;
    use pnp_ir::lower_kernel;

    /// Builds a small dataset of structurally different graphs with labels
    /// correlated to their structure (deep loop nests → class 1, flat → 0).
    fn dataset() -> Vec<TrainingSample> {
        let vocab = Vocabulary::standard();
        let mut samples = Vec::new();
        for variant in 0..6 {
            let deep = variant % 2 == 1;
            let body = if deep {
                vec![Stmt::Loop(LoopNest::new(
                    "j",
                    LoopBound::Param("N".into()),
                    vec![Stmt::Accumulate {
                        target: ArrayRef::d1("A", IndexExpr::var("i")),
                        op: BinOp::Add,
                        value: Expr::load1("B", IndexExpr::var("j")),
                    }],
                ))]
            } else {
                vec![Stmt::Assign {
                    target: ArrayRef::d1("A", IndexExpr::var("i")),
                    value: Expr::mul(Expr::load1("B", IndexExpr::var("i")), Expr::Const(2.0)),
                }]
            };
            let region = RegionSource {
                name: format!("r{variant}"),
                pragma: OmpPragma::default(),
                arrays: vec![ArrayDecl::d1("A", "N"), ArrayDecl::d1("B", "N")],
                scalars: vec![],
                size_params: vec!["N".into()],
                helpers: vec![],
                parallel_loop: LoopNest::new("i", LoopBound::Param("N".into()), body),
            };
            let m = lower_kernel(&format!("app{variant}"), std::slice::from_ref(&region));
            let g = build_region_graph(&m, &region.name).unwrap();
            samples.push(TrainingSample {
                graph: pnp_graph::EncodedGraph::encode(&g, &vocab),
                dynamic: None,
                label: usize::from(deep),
                group: format!("app{}", variant % 3),
            });
        }
        samples
    }

    fn tiny_model(classes: usize) -> PnPModel {
        PnPModel::new(ModelConfig {
            vocab_size: Vocabulary::standard().len(),
            hidden_dim: 8,
            num_rgcn_layers: 2,
            fc_hidden: 16,
            num_classes: classes,
            num_relations: 3,
            num_dynamic_features: 0,
            dropout: 0.0,
            seed: 11,
        })
    }

    #[test]
    fn training_learns_structure_labels() {
        let samples = dataset();
        let mut model = tiny_model(2);
        // 6 samples / batch 4 gives only 2 optimizer steps per epoch, so the
        // paper's lr of 1e-3 needs a real epoch budget to memorize the set.
        let trainer = Trainer::new(TrainConfig {
            epochs: 120,
            batch_size: 4,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut model, &samples);
        assert!(report.improved(), "losses: {:?}", report.epoch_losses);
        assert!(
            report.final_train_accuracy >= 0.99,
            "train accuracy {}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn freezing_gnn_reduces_trainable_parameters() {
        let samples = dataset();
        let mut full = tiny_model(2);
        let mut frozen = tiny_model(2);
        let t_full = Trainer::new(TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        });
        let t_frozen = Trainer::new(TrainConfig {
            epochs: 1,
            freeze_gnn: true,
            ..TrainConfig::default()
        });
        let r_full = t_full.train(&mut full, &samples);
        let r_frozen = t_frozen.train(&mut frozen, &samples);
        assert!(r_frozen.trainable_parameters < r_full.trainable_parameters / 2);
    }

    #[test]
    fn frozen_training_leaves_gnn_weights_untouched_and_still_learns() {
        // Regression for the transfer-accuracy collapse: the frozen fast
        // path must (a) never move an embedding/RGCN weight and (b) still
        // let the dense head learn the toy structure labels with the full
        // epoch budget.
        let samples = dataset();
        let mut model = tiny_model(2);
        let gnn_before = model.gnn_weights();
        let trainer = Trainer::new(TrainConfig {
            epochs: 120,
            batch_size: 4,
            freeze_gnn: true,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut model, &samples);
        let gnn_after = model.gnn_weights();
        for (name, before) in &gnn_before.tensors {
            let after = &gnn_after.tensors[name];
            assert_eq!(before.data, after.data, "frozen parameter {name} moved");
        }
        assert!(report.improved(), "losses: {:?}", report.epoch_losses);
        assert!(
            report.final_train_accuracy >= 0.99,
            "frozen-head training should still memorize the toy set, got {}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn loocv_split_partitions_by_group() {
        let samples = dataset();
        let gs = groups(&samples);
        assert_eq!(gs.len(), 3);
        let (train, val) = loocv_split(&samples, &gs[0]);
        assert_eq!(train.len() + val.len(), samples.len());
        assert!(val.iter().all(|s| s.group == gs[0]));
        assert!(train.iter().all(|s| s.group != gs[0]));
        assert!(!val.is_empty());
    }

    #[test]
    fn adam_variant_also_trains() {
        let samples = dataset();
        let mut model = tiny_model(2);
        let trainer = Trainer::new(TrainConfig {
            epochs: 10,
            optimizer: OptimizerKind::Adam,
            batch_size: 3,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut model, &samples);
        assert!(report.improved());
        assert_eq!(report.steps, 10 * 2);
    }

    #[test]
    #[should_panic]
    fn empty_training_set_panics() {
        let mut model = tiny_model(2);
        Trainer::new(TrainConfig::default()).train(&mut model, &[]);
    }
}
