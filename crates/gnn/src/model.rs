//! The PnP model: embedding → RGCN stack → readout → dense classifier.

use crate::batch::GraphBatch;
use crate::readout::MeanReadout;
use crate::rgcn::RgcnLayer;
use pnp_graph::EncodedGraph;
use pnp_tensor::{
    softmax_rows, Dropout, Embedding, Layer, LeakyReLU, Linear, Parameter, ParameterBundle, ReLU,
    SeededRng, Tensor,
};

/// Hyperparameters of the PnP model (defaults follow Table II of the paper,
/// with a reduced hidden size so the whole evaluation runs on one core).
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Vocabulary size of the node-text embedding.
    pub vocab_size: usize,
    /// Node / hidden representation width.
    pub hidden_dim: usize,
    /// Number of RGCN layers (paper: 4).
    pub num_rgcn_layers: usize,
    /// Width of the dense classifier's hidden layers.
    pub fc_hidden: usize,
    /// Number of output classes (tuning configurations).
    pub num_classes: usize,
    /// Number of edge relations (3: control, data, call).
    pub num_relations: usize,
    /// Number of dynamic features appended to the readout (0 for the static
    /// tuner; 5 counters [+1 power] for the dynamic tuner).
    pub num_dynamic_features: usize,
    /// Dropout probability applied to the readout vector.
    pub dropout: f32,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            vocab_size: 512,
            hidden_dim: 32,
            num_rgcn_layers: 4,
            fc_hidden: 64,
            num_classes: 126,
            num_relations: 3,
            num_dynamic_features: 0,
            dropout: 0.1,
            seed: 0xC0FFEE,
        }
    }
}

/// The PnP tuner model.
pub struct PnPModel {
    /// Configuration the model was built with.
    pub config: ModelConfig,
    token_embedding: Embedding,
    kind_embedding: Embedding,
    rgcn_layers: Vec<RgcnLayer>,
    rgcn_activations: Vec<LeakyReLU>,
    readout: MeanReadout,
    dropout: Dropout,
    fc_layers: Vec<Linear>,
    fc_activations: Vec<ReLU>,
    // caches for backward
    cached_dyn_len: usize,
    cached_h0_rows: usize,
}

impl PnPModel {
    /// Builds a model from a configuration.
    pub fn new(config: ModelConfig) -> Self {
        let mut rng = SeededRng::new(config.seed);
        let mut token_embedding = Embedding::new(config.vocab_size, config.hidden_dim, &mut rng);
        token_embedding.table.name = "embed.token".into();
        let mut kind_embedding = Embedding::new(3, config.hidden_dim, &mut rng);
        kind_embedding.table.name = "embed.kind".into();

        let rgcn_layers: Vec<RgcnLayer> = (0..config.num_rgcn_layers)
            .map(|l| {
                RgcnLayer::new(
                    &format!("rgcn{l}"),
                    config.hidden_dim,
                    config.hidden_dim,
                    config.num_relations,
                    &mut rng,
                )
            })
            .collect();
        let rgcn_activations = (0..config.num_rgcn_layers)
            .map(|_| LeakyReLU::new())
            .collect();

        let fc_in = config.hidden_dim + config.num_dynamic_features;
        let fc_layers = vec![
            Linear::with_name("fc0", fc_in, config.fc_hidden, &mut rng),
            Linear::with_name("fc1", config.fc_hidden, config.fc_hidden, &mut rng),
            Linear::with_name("fc2", config.fc_hidden, config.num_classes, &mut rng),
        ];
        let fc_activations = vec![ReLU::new(), ReLU::new()];

        PnPModel {
            dropout: Dropout::new(config.dropout, config.seed ^ 0xD0),
            config,
            token_embedding,
            kind_embedding,
            rgcn_layers,
            rgcn_activations,
            readout: MeanReadout::new(),
            fc_layers,
            fc_activations,
            cached_dyn_len: 0,
            cached_h0_rows: 0,
        }
    }

    /// Switches every RGCN layer into tied-weight (plain GCN) mode — used by
    /// the RGCN-vs-GCN ablation.
    pub fn set_relational(&mut self, relational: bool) {
        for l in &mut self.rgcn_layers {
            l.relational = relational;
        }
    }

    /// Switches the readout to sum pooling (ablation).
    pub fn set_sum_pooling(&mut self, sum: bool) {
        self.readout.sum_pool = sum;
    }

    /// Forward pass over one encoded graph. `dynamic_features` must have
    /// length `config.num_dynamic_features`. Returns `(1 x num_classes)`
    /// logits.
    pub fn forward(
        &mut self,
        graph: &EncodedGraph,
        dynamic_features: Option<&[f32]>,
        train: bool,
    ) -> Tensor {
        assert!(
            graph.num_nodes() > 0,
            "cannot run the model on an empty graph"
        );
        let dyn_feats = dynamic_features.unwrap_or(&[]);
        assert_eq!(
            dyn_feats.len(),
            self.config.num_dynamic_features,
            "expected {} dynamic features, got {}",
            self.config.num_dynamic_features,
            dyn_feats.len()
        );

        // Node features: token embedding + kind embedding.
        let tok = self.token_embedding.lookup(&graph.tokens, train);
        let kind = self.kind_embedding.lookup(&graph.kinds, train);
        let mut h = tok.add(&kind);
        self.cached_h0_rows = h.rows();

        // RGCN stack.
        for (layer, act) in self
            .rgcn_layers
            .iter_mut()
            .zip(self.rgcn_activations.iter_mut())
        {
            let z = layer.forward(&h, &graph.relations, train);
            h = act.forward(&z, train);
        }

        // Readout (+ dropout) and optional dynamic features.
        let pooled = self.readout.forward(&h, train);
        let pooled = self.dropout.forward(&pooled, train);
        self.cached_dyn_len = dyn_feats.len();
        let mut x = if dyn_feats.is_empty() {
            pooled
        } else {
            let dyn_row = Tensor::from_vec(dyn_feats.to_vec(), &[1, dyn_feats.len()]);
            pooled.concat_cols(&dyn_row)
        };

        // Dense classifier.
        for i in 0..self.fc_layers.len() {
            x = self.fc_layers[i].forward(&x, train);
            if i < self.fc_activations.len() {
                x = self.fc_activations[i].forward(&x, train);
            }
        }
        x
    }

    /// Runs only the GNN half of the model (embeddings → RGCN stack →
    /// readout) in inference mode and returns the pooled `(1 x hidden_dim)`
    /// graph representation.
    ///
    /// With a frozen GNN this output is constant per graph, so the trainer
    /// caches it once and drives every epoch through
    /// [`PnPModel::head_forward`] / [`PnPModel::head_backward`] — the
    /// mechanism behind the paper's transfer-learning speedup (§IV-B): only
    /// the dense classifier is re-trained, and the expensive graph layers run
    /// once per sample instead of once per sample per epoch.
    pub fn pooled_features(&mut self, graph: &EncodedGraph) -> Tensor {
        assert!(
            graph.num_nodes() > 0,
            "cannot run the model on an empty graph"
        );
        let tok = self.token_embedding.lookup(&graph.tokens, false);
        let kind = self.kind_embedding.lookup(&graph.kinds, false);
        let mut h = tok.add(&kind);
        for (layer, act) in self
            .rgcn_layers
            .iter_mut()
            .zip(self.rgcn_activations.iter_mut())
        {
            let z = layer.forward(&h, &graph.relations, false);
            h = act.forward(&z, false);
        }
        self.readout.forward(&h, false)
    }

    /// Forward pass of the classifier head only (dropout → dynamic-feature
    /// concat → dense stack) over a pooled graph representation from
    /// [`PnPModel::pooled_features`]. Mirrors the tail of
    /// [`PnPModel::forward`] exactly.
    pub fn head_forward(
        &mut self,
        pooled: &Tensor,
        dynamic_features: Option<&[f32]>,
        train: bool,
    ) -> Tensor {
        let dyn_feats = dynamic_features.unwrap_or(&[]);
        assert_eq!(
            dyn_feats.len(),
            self.config.num_dynamic_features,
            "expected {} dynamic features, got {}",
            self.config.num_dynamic_features,
            dyn_feats.len()
        );
        let pooled = self.dropout.forward(pooled, train);
        self.cached_dyn_len = dyn_feats.len();
        let mut x = if dyn_feats.is_empty() {
            pooled
        } else {
            let dyn_row = Tensor::from_vec(dyn_feats.to_vec(), &[1, dyn_feats.len()]);
            pooled.concat_cols(&dyn_row)
        };
        for i in 0..self.fc_layers.len() {
            x = self.fc_layers[i].forward(&x, train);
            if i < self.fc_activations.len() {
                x = self.fc_activations[i].forward(&x, train);
            }
        }
        x
    }

    /// Backward pass of the classifier head only: accumulates dense-layer
    /// gradients and stops at the (frozen) readout boundary.
    pub fn head_backward(&mut self, grad_logits: &Tensor) {
        let mut d = grad_logits.clone();
        for i in (0..self.fc_layers.len()).rev() {
            if i < self.fc_activations.len() {
                d = self.fc_activations[i].backward(&d);
            }
            d = self.fc_layers[i].backward(&d);
        }
        // The gradient would continue into the dropout mask and the GNN; both
        // are frozen in head-only training, so it stops here.
    }

    /// Backward pass from the logits gradient; accumulates all parameter
    /// gradients.
    pub fn backward(&mut self, grad_logits: &Tensor) {
        let mut d = grad_logits.clone();
        for i in (0..self.fc_layers.len()).rev() {
            if i < self.fc_activations.len() {
                d = self.fc_activations[i].backward(&d);
            }
            d = self.fc_layers[i].backward(&d);
        }
        // Split off the dynamic-feature columns (no gradient needed for them).
        let hidden = self.config.hidden_dim;
        let d_pooled = if self.cached_dyn_len > 0 {
            let mut trimmed = Tensor::zeros(&[1, hidden]);
            trimmed.set_row(0, &d.row(0)[..hidden]);
            trimmed
        } else {
            d
        };
        let d_pooled = self.dropout.backward(&d_pooled);
        let mut dh = self.readout.backward(&d_pooled);
        for (layer, act) in self
            .rgcn_layers
            .iter_mut()
            .zip(self.rgcn_activations.iter_mut())
            .rev()
        {
            let dz = act.backward(&dh);
            dh = layer.backward(&dz);
        }
        self.token_embedding.backward_ids(&dh);
        self.kind_embedding.backward_ids(&dh);
    }

    /// Fused inference forward over a block-diagonal [`GraphBatch`]:
    /// returns `(B x num_classes)` logits, row `i` bit-identical to
    /// `forward(graphs[i], …, false)` (DESIGN.md §15).
    ///
    /// The batch's merged edge lists have no cross-graph edges and the
    /// readout pools per segment, so every per-node and per-graph value is
    /// computed by exactly the per-row/per-edge operation sequence of the
    /// single-graph path — the batch just makes each matmul `B` times
    /// taller, which is the regime where the row-parallel
    /// `pnp_tensor` matmul (`PNP_MATMUL_THREADS`) pays off.
    ///
    /// `dynamic_features`, when present, must hold one row of
    /// `config.num_dynamic_features` values per graph, in batch order.
    /// Inference-only: no caches are written and dropout is the identity.
    pub fn forward_batch(
        &mut self,
        batch: &GraphBatch,
        dynamic_features: Option<&[Vec<f32>]>,
    ) -> Tensor {
        assert!(!batch.is_empty(), "cannot run the model on an empty batch");
        match dynamic_features {
            Some(rows) => {
                assert_eq!(
                    rows.len(),
                    batch.len(),
                    "expected one dynamic-feature row per graph"
                );
                for (i, row) in rows.iter().enumerate() {
                    assert_eq!(
                        row.len(),
                        self.config.num_dynamic_features,
                        "graph {i}: expected {} dynamic features, got {}",
                        self.config.num_dynamic_features,
                        row.len()
                    );
                }
            }
            None => assert_eq!(
                self.config.num_dynamic_features, 0,
                "model expects {} dynamic features per graph",
                self.config.num_dynamic_features
            ),
        }

        // Node features for the whole batch: one concatenated lookup.
        let tok = self.token_embedding.lookup(batch.tokens(), false);
        let kind = self.kind_embedding.lookup(batch.kinds(), false);
        let mut h = tok.add(&kind);

        // RGCN stack over the merged block-diagonal edge lists.
        for (layer, act) in self
            .rgcn_layers
            .iter_mut()
            .zip(self.rgcn_activations.iter_mut())
        {
            let z = layer.forward(&h, batch.relations(), false);
            h = act.forward(&z, false);
        }

        // Per-segment readout (+ identity dropout) and optional dynamic
        // features, one row per graph.
        let pooled = self.readout.forward_segments(&h, batch.segments());
        let pooled = self.dropout.forward(&pooled, false);
        let mut x = match dynamic_features {
            Some(rows) if self.config.num_dynamic_features > 0 => {
                let dyn_rows = Tensor::from_rows(rows);
                pooled.concat_cols(&dyn_rows)
            }
            _ => pooled,
        };

        // Dense classifier.
        for i in 0..self.fc_layers.len() {
            x = self.fc_layers[i].forward(&x, false);
            if i < self.fc_activations.len() {
                x = self.fc_activations[i].forward(&x, false);
            }
        }
        x
    }

    /// Class probabilities for every graph in a [`GraphBatch`], in batch
    /// order. Each row is bit-identical to [`PnPModel::predict_proba`] on
    /// that graph alone (DESIGN.md §15).
    ///
    /// # Examples
    ///
    /// ```
    /// use pnp_gnn::{GraphBatch, ModelConfig, PnPModel};
    /// use pnp_graph::EncodedGraph;
    ///
    /// let a = EncodedGraph {
    ///     name: "a".into(),
    ///     tokens: vec![0, 1, 2],
    ///     kinds: vec![0, 1, 2],
    ///     relations: vec![vec![(0, 1), (1, 2)], vec![(2, 0)], vec![]],
    /// };
    /// let b = EncodedGraph {
    ///     name: "b".into(),
    ///     tokens: vec![3, 4],
    ///     kinds: vec![0, 1],
    ///     relations: vec![vec![(1, 0)], vec![], vec![]],
    /// };
    /// let mut model = PnPModel::new(ModelConfig {
    ///     vocab_size: 8,
    ///     hidden_dim: 4,
    ///     num_rgcn_layers: 2,
    ///     fc_hidden: 8,
    ///     num_classes: 3,
    ///     ..ModelConfig::default()
    /// });
    ///
    /// let batch = GraphBatch::from_graphs(&[&a, &b]).unwrap();
    /// let batched = model.predict_proba_batch(&batch, None);
    ///
    /// // One probability row per graph, bit-identical to the single path.
    /// assert_eq!(batched.len(), 2);
    /// assert_eq!(batched[0], model.predict_proba(&a, None));
    /// assert_eq!(batched[1], model.predict_proba(&b, None));
    /// ```
    pub fn predict_proba_batch(
        &mut self,
        batch: &GraphBatch,
        dynamic_features: Option<&[Vec<f32>]>,
    ) -> Vec<Vec<f32>> {
        let logits = self.forward_batch(batch, dynamic_features);
        let probs = softmax_rows(&logits);
        (0..probs.rows()).map(|r| probs.row(r).to_vec()).collect()
    }

    /// Class probabilities for one graph (inference mode).
    pub fn predict_proba(
        &mut self,
        graph: &EncodedGraph,
        dynamic_features: Option<&[f32]>,
    ) -> Vec<f32> {
        let logits = self.forward(graph, dynamic_features, false);
        softmax_rows(&logits).row(0).to_vec()
    }

    /// The predicted class (argmax of the probabilities).
    pub fn predict(&mut self, graph: &EncodedGraph, dynamic_features: Option<&[f32]>) -> usize {
        let logits = self.forward(graph, dynamic_features, false);
        logits.argmax_row(0)
    }

    /// Classes ranked from most to least likely (used to pick the best
    /// *valid* configuration when some classes are masked out).
    pub fn predict_ranked(
        &mut self,
        graph: &EncodedGraph,
        dynamic_features: Option<&[f32]>,
    ) -> Vec<usize> {
        let logits = self.forward(graph, dynamic_features, false);
        let row = logits.row(0);
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
        idx
    }

    /// All trainable parameters.
    pub fn parameters(&mut self) -> Vec<&mut Parameter> {
        let mut ps: Vec<&mut Parameter> = vec![
            &mut self.token_embedding.table,
            &mut self.kind_embedding.table,
        ];
        for l in &mut self.rgcn_layers {
            ps.extend(l.parameters());
        }
        for l in &mut self.fc_layers {
            ps.extend(l.parameters());
        }
        ps
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    pub fn num_weights(&mut self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }

    /// Captures *every* trainable parameter (embeddings, RGCN stack, dense
    /// classifier) — the checkpoint the artifact store persists for a
    /// trained model. [`PnPModel::load_all_weights`] restores it into a
    /// freshly constructed model of the same configuration, reproducing the
    /// trained model's predictions bit-for-bit.
    pub fn all_weights(&mut self) -> ParameterBundle {
        let params = self.parameters();
        let refs: Vec<&Parameter> = params.iter().map(|p| &**p).collect();
        ParameterBundle::capture(&refs)
    }

    /// Restores a full checkpoint from [`PnPModel::all_weights`]. Returns
    /// the number of tensors restored; callers treating the bundle as a
    /// complete checkpoint should check it equals
    /// [`PnPModel::num_parameters`] (a shape or name mismatch leaves the
    /// unmatched parameter at its fresh initialization).
    pub fn load_all_weights(&mut self, bundle: &ParameterBundle) -> usize {
        let mut params = self.parameters();
        bundle.restore(&mut params)
    }

    /// Number of parameter tensors (not scalars; see
    /// [`PnPModel::num_weights`] for the scalar count).
    pub fn num_parameters(&mut self) -> usize {
        self.parameters().len()
    }

    /// Captures the GNN part of the model (embeddings + RGCN layers) for the
    /// transfer-learning experiment.
    pub fn gnn_weights(&mut self) -> ParameterBundle {
        let params = self.parameters();
        let refs: Vec<&Parameter> = params
            .iter()
            .map(|p| &**p)
            .filter(|p| p.name.starts_with("embed") || p.name.starts_with("rgcn"))
            .collect();
        ParameterBundle::capture(&refs)
    }

    /// Restores previously saved GNN weights (dense layers stay untouched).
    /// Returns the number of tensors restored.
    pub fn load_gnn_weights(&mut self, bundle: &ParameterBundle) -> usize {
        let mut params = self.parameters();
        bundle.restore(&mut params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_graph::{build_region_graph, Vocabulary};
    use pnp_ir::dsl::*;
    use pnp_ir::lower_kernel;
    use pnp_tensor::cross_entropy;

    fn toy_graph() -> EncodedGraph {
        let region = RegionSource {
            name: "r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d1("A", "N"), ArrayDecl::d1("B", "N")],
            scalars: vec!["alpha".into()],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Assign {
                    target: ArrayRef::d1("B", IndexExpr::var("i")),
                    value: Expr::mul(
                        Expr::Scalar("alpha".into()),
                        Expr::load1("A", IndexExpr::var("i")),
                    ),
                }],
            ),
        };
        let m = lower_kernel("toy", &[region]);
        let g = build_region_graph(&m, "r0").unwrap();
        EncodedGraph::encode(&g, &Vocabulary::standard())
    }

    fn small_config(num_classes: usize, dynamic: usize) -> ModelConfig {
        ModelConfig {
            vocab_size: Vocabulary::standard().len(),
            hidden_dim: 8,
            num_rgcn_layers: 2,
            fc_hidden: 16,
            num_classes,
            num_relations: 3,
            num_dynamic_features: dynamic,
            dropout: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn predict_ranked_is_a_pinned_total_order_over_the_logits() {
        let g = toy_graph();
        let mut model = PnPModel::new(small_config(10, 0));
        let ranked = model.predict_ranked(&g, None);
        // A permutation of all classes, bitwise-stable across calls.
        let mut seen = ranked.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(model.predict_ranked(&g, None), ranked);
        // Consistent with the logits under the same total order the sort
        // uses (descending `total_cmp`), bit for bit.
        let logits = model.forward(&g, None, false);
        let row = logits.row(0);
        for w in ranked.windows(2) {
            assert_ne!(
                row[w[0]].total_cmp(&row[w[1]]),
                std::cmp::Ordering::Less,
                "rank order disagrees with logits: {:?}",
                ranked
            );
        }
    }

    #[test]
    fn forward_produces_logits_of_expected_shape() {
        let g = toy_graph();
        let mut model = PnPModel::new(small_config(10, 0));
        let logits = model.forward(&g, None, false);
        assert_eq!(logits.shape, vec![1, 10]);
        assert!(logits.all_finite());
    }

    #[test]
    fn dynamic_features_change_the_prediction_inputs() {
        let g = toy_graph();
        let mut model = PnPModel::new(small_config(6, 3));
        let a = model.forward(&g, Some(&[0.0, 0.0, 0.0]), false);
        let b = model.forward(&g, Some(&[10.0, -5.0, 3.0]), false);
        let diff: f32 = a.data.iter().zip(&b.data).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    #[should_panic]
    fn wrong_dynamic_feature_count_panics() {
        let g = toy_graph();
        let mut model = PnPModel::new(small_config(6, 3));
        let _ = model.forward(&g, Some(&[1.0]), false);
    }

    #[test]
    fn training_reduces_loss_on_a_single_graph() {
        use pnp_tensor::{AdamW, Optimizer};
        let g = toy_graph();
        let mut model = PnPModel::new(small_config(5, 0));
        let mut opt = AdamW::new(0.01).amsgrad();
        let target = vec![3usize];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            let logits = model.forward(&g, None, true);
            let (loss, dl) = cross_entropy(&logits, &target);
            model.backward(&dl);
            opt.step(&mut model.parameters());
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        assert!(last < first.unwrap() * 0.5, "loss {first:?} -> {last}");
        assert_eq!(model.predict(&g, None), 3);
    }

    #[test]
    fn predict_ranked_returns_a_permutation() {
        let g = toy_graph();
        let mut model = PnPModel::new(small_config(8, 0));
        let ranked = model.predict_ranked(&g, None);
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn gnn_weight_capture_and_restore_roundtrip() {
        let mut model_a = PnPModel::new(small_config(5, 0));
        let bundle = model_a.gnn_weights();
        assert!(!bundle.is_empty());
        assert!(bundle
            .tensors
            .keys()
            .all(|k| k.starts_with("embed") || k.starts_with("rgcn")));

        let mut model_b = PnPModel::new(ModelConfig {
            seed: 99,
            ..small_config(5, 0)
        });
        let before = model_b.predict_proba(&toy_graph(), None);
        let restored = model_b.load_gnn_weights(&bundle);
        assert_eq!(restored, bundle.len());
        let after = model_b.predict_proba(&toy_graph(), None);
        let diff: f32 = before.iter().zip(&after).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "restoring GNN weights must change the output");
    }

    #[test]
    fn all_weights_roundtrip_reproduces_predictions_bitwise() {
        let g = toy_graph();
        let mut trained = PnPModel::new(small_config(5, 0));
        let bundle = trained.all_weights();
        assert_eq!(bundle.len(), trained.num_parameters());

        // A differently seeded model restored from the bundle must agree
        // with the source bit-for-bit — including through a JSON round-trip
        // (the artifact store's persistence path).
        let json = bundle.to_json();
        let reloaded = pnp_tensor::ParameterBundle::from_json(&json).unwrap();
        let mut twin = PnPModel::new(ModelConfig {
            seed: 0xDEAD,
            ..small_config(5, 0)
        });
        let restored = twin.load_all_weights(&reloaded);
        assert_eq!(restored, twin.num_parameters());
        let a = trained.predict_proba(&g, None);
        let b = twin.predict_proba(&g, None);
        assert_eq!(a, b, "restored model must match bitwise");
    }

    #[test]
    fn num_weights_counts_everything() {
        let mut model = PnPModel::new(small_config(4, 0));
        let n = model.num_weights();
        // embeddings + 2 rgcn layers (self+3 rel+bias) + 3 fc layers
        assert!(n > 1000);
        let sum: usize = model.parameters().iter().map(|p| p.numel()).sum();
        assert_eq!(n, sum);
    }

    #[test]
    fn parameter_names_are_unique() {
        let mut model = PnPModel::new(small_config(4, 2));
        let mut names: Vec<String> = model.parameters().iter().map(|p| p.name.clone()).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}
