//! Graph readout: pooling node representations into a fixed-size graph
//! representation.

use pnp_tensor::Tensor;

/// Mean pooling over node features, producing a single row vector.
///
/// The paper feeds the GNN output into the dense classifier; mean pooling is
/// the standard permutation-invariant way to collapse a variable-size node
/// set, and a sum-pooling variant is provided for the ablation bench.
pub struct MeanReadout {
    cached_num_nodes: usize,
    /// When true, use sum pooling instead of mean (ablation).
    pub sum_pool: bool,
}

impl MeanReadout {
    /// Creates a mean-pooling readout.
    pub fn new() -> Self {
        MeanReadout {
            cached_num_nodes: 0,
            sum_pool: false,
        }
    }

    /// Creates a sum-pooling readout (ablation variant).
    pub fn sum() -> Self {
        MeanReadout {
            cached_num_nodes: 0,
            sum_pool: true,
        }
    }

    /// Pools `(num_nodes x d)` node features into a `(1 x d)` graph vector.
    pub fn forward(&mut self, h: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_num_nodes = h.rows();
        }
        let pooled = if self.sum_pool {
            h.sum_rows()
        } else {
            h.mean_rows()
        };
        pooled.reshape(&[1, h.cols()])
    }

    /// Pools a block-diagonal batch of node features into one graph vector
    /// per segment: row `i` of the `(B x d)` result is exactly what
    /// [`MeanReadout::forward`] would produce for the node rows
    /// `segments[i]..segments[i + 1]` alone, bit for bit (the segment
    /// reductions reuse the single-graph accumulation order; DESIGN.md §15).
    ///
    /// Inference-only: does not touch the backward cache, so it takes
    /// `&self`.
    pub fn forward_segments(&self, h: &Tensor, segments: &[usize]) -> Tensor {
        if self.sum_pool {
            h.segment_sum_rows(segments)
        } else {
            h.segment_mean_rows(segments)
        }
    }

    /// Distributes the graph-level gradient back to every node.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let n = self.cached_num_nodes.max(1);
        let scale = if self.sum_pool { 1.0 } else { 1.0 / n as f32 };
        let mut grad = Tensor::zeros(&[n, grad_out.cols()]);
        for r in 0..n {
            grad.axpy_row(r, scale, grad_out.row(0));
        }
        grad
    }
}

impl Default for MeanReadout {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_readout_averages_nodes() {
        let mut r = MeanReadout::new();
        let h = Tensor::from_rows(&[vec![1.0, 3.0], vec![3.0, 5.0]]);
        let out = r.forward(&h, true);
        assert_eq!(out.shape, vec![1, 2]);
        assert_eq!(out.data, vec![2.0, 4.0]);
    }

    #[test]
    fn sum_readout_sums_nodes() {
        let mut r = MeanReadout::sum();
        let h = Tensor::from_rows(&[vec![1.0, 3.0], vec![3.0, 5.0]]);
        let out = r.forward(&h, true);
        assert_eq!(out.data, vec![4.0, 8.0]);
    }

    #[test]
    fn forward_segments_matches_per_graph_forward_bitwise() {
        let h = Tensor::from_rows(&[
            vec![1.0, 3.0],
            vec![3.0, 5.0],
            vec![0.7, -2.3],
            vec![1.1, 0.2],
            vec![-0.4, 9.9],
        ]);
        let segments = [0usize, 2, 5];
        for sum_pool in [false, true] {
            let mut single = if sum_pool {
                MeanReadout::sum()
            } else {
                MeanReadout::new()
            };
            let batched = single.forward_segments(&h, &segments);
            assert_eq!(batched.shape, vec![2, 2]);
            for i in 0..2 {
                let rows: Vec<Vec<f32>> = (segments[i]..segments[i + 1])
                    .map(|r| h.row(r).to_vec())
                    .collect();
                let alone = single.forward(&Tensor::from_rows(&rows), false);
                for (a, b) in batched.row(i).iter().zip(alone.row(0)) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn backward_distributes_gradient_evenly() {
        let mut r = MeanReadout::new();
        let h = Tensor::ones(&[4, 3]);
        let _ = r.forward(&h, true);
        let grad = r.backward(&Tensor::from_rows(&[vec![4.0, 8.0, 12.0]]));
        assert_eq!(grad.shape, vec![4, 3]);
        assert_eq!(grad.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(grad.row(3), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn mean_then_backward_is_consistent_with_finite_difference() {
        let mut r = MeanReadout::new();
        let h = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let out = r.forward(&h, true);
        // objective = sum(readout)
        let _ = out;
        let grad = r.backward(&Tensor::ones(&[1, 2]));
        // d(sum of means)/dh[i][j] = 1/3
        assert!(grad.data.iter().all(|&g| (g - 1.0 / 3.0).abs() < 1e-6));
    }
}
