//! Graph readout: pooling node representations into a fixed-size graph
//! representation.

use pnp_tensor::Tensor;

/// Mean pooling over node features, producing a single row vector.
///
/// The paper feeds the GNN output into the dense classifier; mean pooling is
/// the standard permutation-invariant way to collapse a variable-size node
/// set, and a sum-pooling variant is provided for the ablation bench.
pub struct MeanReadout {
    cached_num_nodes: usize,
    /// When true, use sum pooling instead of mean (ablation).
    pub sum_pool: bool,
}

impl MeanReadout {
    /// Creates a mean-pooling readout.
    pub fn new() -> Self {
        MeanReadout {
            cached_num_nodes: 0,
            sum_pool: false,
        }
    }

    /// Creates a sum-pooling readout (ablation variant).
    pub fn sum() -> Self {
        MeanReadout {
            cached_num_nodes: 0,
            sum_pool: true,
        }
    }

    /// Pools `(num_nodes x d)` node features into a `(1 x d)` graph vector.
    pub fn forward(&mut self, h: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_num_nodes = h.rows();
        }
        let pooled = if self.sum_pool {
            h.sum_rows()
        } else {
            h.mean_rows()
        };
        pooled.reshape(&[1, h.cols()])
    }

    /// Distributes the graph-level gradient back to every node.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let n = self.cached_num_nodes.max(1);
        let scale = if self.sum_pool { 1.0 } else { 1.0 / n as f32 };
        let mut grad = Tensor::zeros(&[n, grad_out.cols()]);
        for r in 0..n {
            grad.axpy_row(r, scale, grad_out.row(0));
        }
        grad
    }
}

impl Default for MeanReadout {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_readout_averages_nodes() {
        let mut r = MeanReadout::new();
        let h = Tensor::from_rows(&[vec![1.0, 3.0], vec![3.0, 5.0]]);
        let out = r.forward(&h, true);
        assert_eq!(out.shape, vec![1, 2]);
        assert_eq!(out.data, vec![2.0, 4.0]);
    }

    #[test]
    fn sum_readout_sums_nodes() {
        let mut r = MeanReadout::sum();
        let h = Tensor::from_rows(&[vec![1.0, 3.0], vec![3.0, 5.0]]);
        let out = r.forward(&h, true);
        assert_eq!(out.data, vec![4.0, 8.0]);
    }

    #[test]
    fn backward_distributes_gradient_evenly() {
        let mut r = MeanReadout::new();
        let h = Tensor::ones(&[4, 3]);
        let _ = r.forward(&h, true);
        let grad = r.backward(&Tensor::from_rows(&[vec![4.0, 8.0, 12.0]]));
        assert_eq!(grad.shape, vec![4, 3]);
        assert_eq!(grad.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(grad.row(3), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn mean_then_backward_is_consistent_with_finite_difference() {
        let mut r = MeanReadout::new();
        let h = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let out = r.forward(&h, true);
        // objective = sum(readout)
        let _ = out;
        let grad = r.backward(&Tensor::ones(&[1, 2]));
        // d(sum of means)/dh[i][j] = 1/3
        assert!(grad.data.iter().all(|&g| (g - 1.0 / 3.0).abs() < 1e-6));
    }
}
