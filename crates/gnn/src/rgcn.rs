//! Relational Graph Convolutional layers.
//!
//! Following Schlichtkrull et al., the layer computes for every node `i`
//!
//! ```text
//! h'_i = W_0 · h_i + Σ_r Σ_{j ∈ N_r(i)} (1 / c_{i,r}) · W_r · h_j + b
//! ```
//!
//! where `r` ranges over the three edge relations (control, data, call flow),
//! `N_r(i)` are the in-neighbours of `i` under relation `r`, and
//! `c_{i,r} = |N_r(i)|` is the normalization constant. Relation-specific
//! weights are what distinguish the RGCN from a plain GCN — the ablation
//! benches compare both.

use pnp_tensor::init::{kaiming_normal, SeededRng};
use pnp_tensor::{Parameter, Tensor};

/// One RGCN layer with per-relation weights, a self-loop weight, and a bias.
pub struct RgcnLayer {
    /// Self-loop weight `W_0` (`d_in x d_out`).
    pub w_self: Parameter,
    /// One weight matrix per relation (`d_in x d_out` each).
    pub w_rel: Vec<Parameter>,
    /// Bias (`d_out`).
    pub bias: Parameter,
    /// When false, relation-specific weights are tied to `W_0` (plain-GCN
    /// ablation mode).
    pub relational: bool,
    cached_input: Option<Tensor>,
    cached_relations: Option<Vec<Vec<(usize, usize)>>>,
    cached_inv_deg: Option<Vec<Vec<f32>>>,
}

impl RgcnLayer {
    /// Creates a layer for `num_relations` edge types.
    pub fn new(
        prefix: &str,
        d_in: usize,
        d_out: usize,
        num_relations: usize,
        rng: &mut SeededRng,
    ) -> Self {
        let w_self = Parameter::new(format!("{prefix}.w_self"), kaiming_normal(d_in, d_out, rng));
        let w_rel = (0..num_relations)
            .map(|r| {
                Parameter::new(
                    format!("{prefix}.w_rel{r}"),
                    kaiming_normal(d_in, d_out, rng),
                )
            })
            .collect();
        let bias = Parameter::new(format!("{prefix}.bias"), Tensor::zeros(&[d_out]));
        RgcnLayer {
            w_self,
            w_rel,
            bias,
            relational: true,
            cached_input: None,
            cached_relations: None,
            cached_inv_deg: None,
        }
    }

    /// Input feature dimension.
    pub fn d_in(&self) -> usize {
        self.w_self.value.rows()
    }

    /// Output feature dimension.
    pub fn d_out(&self) -> usize {
        self.w_self.value.cols()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.w_rel.len()
    }

    /// Per-relation inverse in-degree, used as the normalization constant.
    fn inverse_degrees(num_nodes: usize, relations: &[Vec<(usize, usize)>]) -> Vec<Vec<f32>> {
        relations
            .iter()
            .map(|edges| {
                let mut deg = vec![0usize; num_nodes];
                for &(_, d) in edges {
                    deg[d] += 1;
                }
                deg.iter()
                    .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
                    .collect()
            })
            .collect()
    }

    /// Forward pass over node features `h` (`num_nodes x d_in`) and edges
    /// grouped by relation.
    pub fn forward(
        &mut self,
        h: &Tensor,
        relations: &[Vec<(usize, usize)>],
        train: bool,
    ) -> Tensor {
        assert_eq!(h.cols(), self.d_in(), "RGCN input dimension mismatch");
        assert_eq!(
            relations.len(),
            self.num_relations(),
            "expected {} relations, got {}",
            self.num_relations(),
            relations.len()
        );
        let num_nodes = h.rows();
        let inv_deg = Self::inverse_degrees(num_nodes, relations);

        // Self-loop term plus bias.
        let mut out = h
            .matmul(&self.w_self.value)
            .add_row_broadcast(&self.bias.value);

        // Per-relation message passing with normalized-sum aggregation.
        for (r, edges) in relations.iter().enumerate() {
            if edges.is_empty() {
                continue;
            }
            let w = if self.relational {
                &self.w_rel[r].value
            } else {
                &self.w_self.value
            };
            let messages = h.matmul(w);
            for &(s, d) in edges {
                let norm = inv_deg[r][d];
                out.axpy_row(d, norm, messages.row(s));
            }
        }

        if train {
            self.cached_input = Some(h.clone());
            self.cached_relations = Some(relations.to_vec());
            self.cached_inv_deg = Some(inv_deg);
        }
        out
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input node features.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let h = self
            .cached_input
            .as_ref()
            .expect("RgcnLayer::backward before forward(train=true)");
        let relations = self.cached_relations.as_ref().unwrap();
        let inv_deg = self.cached_inv_deg.as_ref().unwrap();
        let num_nodes = h.rows();

        // Self-loop gradients.
        self.w_self.grad.add_assign(&h.matmul_at_b(grad_out));
        self.bias.grad.add_assign(&grad_out.sum_rows());
        let mut grad_h = grad_out.matmul_a_bt(&self.w_self.value);

        // Relation gradients.
        for (r, edges) in relations.iter().enumerate() {
            if edges.is_empty() {
                continue;
            }
            // dMessages[s] += norm(d) * grad_out[d] for each edge (s, d)
            let mut d_messages = Tensor::zeros(&[num_nodes, self.d_out()]);
            for &(s, d) in edges {
                d_messages.axpy_row(s, inv_deg[r][d], grad_out.row(d));
            }
            if self.relational {
                self.w_rel[r].grad.add_assign(&h.matmul_at_b(&d_messages));
                grad_h.add_assign(&d_messages.matmul_a_bt(&self.w_rel[r].value));
            } else {
                self.w_self.grad.add_assign(&h.matmul_at_b(&d_messages));
                grad_h.add_assign(&d_messages.matmul_a_bt(&self.w_self.value));
            }
        }
        grad_h
    }

    /// Mutable access to all parameters of this layer.
    pub fn parameters(&mut self) -> Vec<&mut Parameter> {
        let mut ps = vec![&mut self.w_self, &mut self.bias];
        ps.extend(self.w_rel.iter_mut());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node graph with two relations:
    /// relation 0: 0→1, 1→2, 2→3 (a chain)
    /// relation 1: 3→0 (a back edge)
    fn toy_relations() -> Vec<Vec<(usize, usize)>> {
        vec![vec![(0, 1), (1, 2), (2, 3)], vec![(3, 0)], vec![]]
    }

    #[test]
    fn output_shape_is_nodes_by_dout() {
        let mut rng = SeededRng::new(1);
        let mut layer = RgcnLayer::new("rgcn0", 6, 8, 3, &mut rng);
        let h = Tensor::randn(&[4, 6], &mut rng);
        let out = layer.forward(&h, &toy_relations(), false);
        assert_eq!(out.shape, vec![4, 8]);
        assert!(out.all_finite());
    }

    #[test]
    fn isolated_node_gets_only_self_message() {
        let mut rng = SeededRng::new(2);
        let mut layer = RgcnLayer::new("rgcn0", 3, 3, 3, &mut rng);
        let h = Tensor::randn(&[2, 3], &mut rng);
        // No edges at all: output must equal H·W_self + b for every node.
        let empty = vec![vec![], vec![], vec![]];
        let out = layer.forward(&h, &empty, false);
        let expected = h
            .matmul(&layer.w_self.value)
            .add_row_broadcast(&layer.bias.value);
        for (a, b) in out.data.iter().zip(&expected.data) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn normalization_averages_multiple_in_edges() {
        let mut rng = SeededRng::new(3);
        let mut layer = RgcnLayer::new("rgcn0", 2, 2, 1, &mut rng);
        // Make weights identity-like for a transparent check.
        layer.w_self.value = Tensor::zeros(&[2, 2]);
        layer.w_rel[0].value = Tensor::eye(2);
        layer.bias.value = Tensor::zeros(&[2]);
        // Node 2 receives from nodes 0 and 1; normalized sum = mean of h0, h1.
        let h = Tensor::from_rows(&[vec![2.0, 0.0], vec![4.0, 0.0], vec![0.0, 0.0]]);
        let rel = vec![vec![(0, 2), (1, 2)]];
        let out = layer.forward(&h, &rel, false);
        assert!((out.get(2, 0) - 3.0).abs() < 1e-5);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SeededRng::new(4);
        let mut layer = RgcnLayer::new("rgcn0", 3, 3, 3, &mut rng);
        let h = Tensor::randn(&[4, 3], &mut rng);
        let rels = toy_relations();

        // Objective: sum of outputs.
        let out = layer.forward(&h, &rels, true);
        let grad_h = layer.backward(&Tensor::ones(&out.shape));

        let eps = 1e-2f32;
        // Check dL/dW_rel[0][0,0].
        let analytic = layer.w_rel[0].grad.get(0, 0);
        let orig = layer.w_rel[0].value.get(0, 0);
        layer.w_rel[0].value.set(0, 0, orig + eps);
        let f_plus = layer.forward(&h, &rels, false).sum();
        layer.w_rel[0].value.set(0, 0, orig - eps);
        let f_minus = layer.forward(&h, &rels, false).sum();
        layer.w_rel[0].value.set(0, 0, orig);
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 2e-2,
            "w_rel grad: numeric {numeric} vs analytic {analytic}"
        );

        // Check dL/dH[1,2].
        let analytic_h = grad_h.get(1, 2);
        let mut hp = h.clone();
        hp.set(1, 2, hp.get(1, 2) + eps);
        let f_plus = layer.forward(&hp, &rels, false).sum();
        let mut hm = h.clone();
        hm.set(1, 2, hm.get(1, 2) - eps);
        let f_minus = layer.forward(&hm, &rels, false).sum();
        let numeric_h = (f_plus - f_minus) / (2.0 * eps);
        assert!(
            (numeric_h - analytic_h).abs() < 2e-2,
            "h grad: numeric {numeric_h} vs analytic {analytic_h}"
        );
    }

    #[test]
    fn relation_specific_weights_change_output() {
        let mut rng = SeededRng::new(5);
        let mut layer = RgcnLayer::new("rgcn0", 4, 4, 3, &mut rng);
        let h = Tensor::randn(&[4, 4], &mut rng);
        let rels = toy_relations();
        let out_relational = layer.forward(&h, &rels, false);
        layer.relational = false;
        let out_tied = layer.forward(&h, &rels, false);
        // With different per-relation weights the outputs must differ.
        let diff: f32 = out_relational
            .data
            .iter()
            .zip(&out_tied.data)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3);
    }

    #[test]
    fn parameter_names_are_unique_and_prefixed() {
        let mut rng = SeededRng::new(6);
        let mut layer = RgcnLayer::new("rgcn2", 4, 4, 3, &mut rng);
        let names: Vec<String> = layer.parameters().iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), 5);
        assert!(names.iter().all(|n| n.starts_with("rgcn2.")));
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
