//! Minibatch index generation.
//!
//! Graphs have different sizes, so a "batch" here is a set of sample indices
//! whose gradients are accumulated before one optimizer step — matching the
//! paper's batch size of 16 (Table II).

use pnp_tensor::SeededRng;

/// Shuffles sample indices each epoch and yields fixed-size batches.
pub struct Minibatcher {
    num_samples: usize,
    batch_size: usize,
    rng: SeededRng,
}

impl Minibatcher {
    /// Creates a batcher over `num_samples` samples.
    pub fn new(num_samples: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Minibatcher {
            num_samples,
            batch_size,
            rng: SeededRng::new(seed),
        }
    }

    /// Returns the batches (each a vector of sample indices) for one epoch,
    /// in a freshly shuffled order.
    pub fn epoch_batches(&mut self) -> Vec<Vec<usize>> {
        let mut indices: Vec<usize> = (0..self.num_samples).collect();
        self.rng.shuffle(&mut indices);
        indices
            .chunks(self.batch_size)
            .map(|c| c.to_vec())
            .collect()
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.num_samples.div_ceil(self.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_every_index_exactly_once() {
        let mut b = Minibatcher::new(37, 16, 1);
        let batches = b.epoch_batches();
        assert_eq!(batches.len(), 3);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn shuffling_changes_between_epochs() {
        let mut b = Minibatcher::new(64, 16, 2);
        let e1 = b.epoch_batches();
        let e2 = b.epoch_batches();
        assert_ne!(e1, e2);
    }

    #[test]
    fn batches_per_epoch_rounds_up() {
        let b = Minibatcher::new(17, 16, 3);
        assert_eq!(b.batches_per_epoch(), 2);
        let b = Minibatcher::new(16, 16, 3);
        assert_eq!(b.batches_per_epoch(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_batch_size_panics() {
        Minibatcher::new(4, 0, 1);
    }
}
