//! Batching: minibatch index generation for training, and block-diagonal
//! graph batching for fused inference.
//!
//! Graphs have different sizes, so a *training* "batch" here is a set of
//! sample indices whose gradients are accumulated before one optimizer step —
//! matching the paper's batch size of 16 (Table II). The *inference* batch is
//! a [`GraphBatch`]: `B` graphs concatenated into one block-diagonal graph so
//! the whole batch runs through one fused forward pass (DESIGN.md §15).

use pnp_graph::EncodedGraph;
use pnp_tensor::SeededRng;
use std::fmt;

/// Why a [`GraphBatch`] could not be assembled. Client-facing callers (the
/// serve path) must get a typed error back, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// The batch holds no graphs at all.
    Empty,
    /// Graph `index` has zero nodes — the model cannot pool an empty node
    /// set ([`crate::PnPModel::forward`] asserts the same thing).
    EmptyGraph {
        /// Position of the offending graph in the batch.
        index: usize,
        /// Its `EncodedGraph::name`.
        name: String,
    },
    /// Graph `index` groups its edges into a different number of relations
    /// than the first graph — the block-diagonal merge is per relation, so
    /// every graph must agree.
    RelationArity {
        /// Position of the offending graph in the batch.
        index: usize,
        /// Relation count of the first graph.
        expected: usize,
        /// Relation count of graph `index`.
        got: usize,
    },
    /// Graph `index` has an edge endpoint outside its own node range; the
    /// offset shift would silently alias a node of a *different* graph, so
    /// it is rejected up front.
    EdgeOutOfRange {
        /// Position of the offending graph in the batch.
        index: usize,
        /// Relation the bad edge belongs to.
        relation: usize,
        /// The `(src, dst)` pair as stored in the graph.
        edge: (usize, usize),
        /// The graph's node count.
        num_nodes: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Empty => write!(f, "cannot batch zero graphs"),
            BatchError::EmptyGraph { index, name } => {
                write!(f, "graph {index} ({name:?}) has no nodes")
            }
            BatchError::RelationArity {
                index,
                expected,
                got,
            } => write!(
                f,
                "graph {index} has {got} relations, batch expects {expected}"
            ),
            BatchError::EdgeOutOfRange {
                index,
                relation,
                edge,
                num_nodes,
            } => write!(
                f,
                "graph {index} relation {relation} edge {edge:?} exceeds its {num_nodes} nodes"
            ),
        }
    }
}

impl std::error::Error for BatchError {}

/// `B` encoded graphs merged into one block-diagonal graph for fused
/// inference (DESIGN.md §15).
///
/// Node ids of graph `i` are shifted by the total node count of graphs
/// `0..i`, token/kind sequences are concatenated in batch order, and the
/// per-relation edge lists are concatenated graph by graph with the same
/// shift. No edge crosses a graph boundary, so message passing over the
/// merged edge lists computes exactly what it would per graph — one big
/// `nodes × weights` matmul per relation per layer instead of `B` small
/// ones. `segments` (length `B + 1`) records the node offsets so the
/// readout can pool each graph separately
/// ([`pnp_tensor::Tensor::segment_mean_rows`]); pooling globally would mix
/// graphs and break the [bit-identity contract](crate::PnPModel::forward_batch).
///
/// # Examples
///
/// ```
/// use pnp_gnn::GraphBatch;
/// use pnp_graph::EncodedGraph;
///
/// let a = EncodedGraph {
///     name: "a".into(),
///     tokens: vec![0, 1, 2],
///     kinds: vec![0, 1, 2],
///     relations: vec![vec![(0, 1), (1, 2)], vec![], vec![]],
/// };
/// let b = EncodedGraph {
///     name: "b".into(),
///     tokens: vec![3, 4],
///     kinds: vec![0, 1],
///     relations: vec![vec![(1, 0)], vec![(0, 1)], vec![]],
/// };
/// let batch = GraphBatch::from_graphs(&[&a, &b]).unwrap();
///
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.num_nodes(), 5);
/// // Graph boundaries as node offsets: a spans rows 0..3, b spans 3..5.
/// assert_eq!(batch.segments(), &[0, 3, 5]);
/// // b's edges are shifted by a's 3 nodes; a's are untouched.
/// assert_eq!(batch.relations()[0], vec![(0, 1), (1, 2), (4, 3)]);
/// assert_eq!(batch.relations()[1], vec![(3, 4)]);
///
/// // An empty batch is a typed error, not a panic.
/// assert!(GraphBatch::from_graphs(&[]).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct GraphBatch {
    tokens: Vec<usize>,
    kinds: Vec<usize>,
    relations: Vec<Vec<(usize, usize)>>,
    segments: Vec<usize>,
}

impl GraphBatch {
    /// Merges `graphs` (in order) into one block-diagonal batch.
    ///
    /// Fails with a typed [`BatchError`] on an empty batch, a zero-node
    /// graph, mismatched relation counts, or an edge endpoint outside its
    /// graph — all conditions under which the fused forward would otherwise
    /// panic or silently read another graph's nodes.
    pub fn from_graphs(graphs: &[&EncodedGraph]) -> Result<GraphBatch, BatchError> {
        if graphs.is_empty() {
            return Err(BatchError::Empty);
        }
        let num_relations = graphs[0].relations.len();
        let total_nodes: usize = graphs.iter().map(|g| g.num_nodes()).sum();

        let mut tokens = Vec::with_capacity(total_nodes);
        let mut kinds = Vec::with_capacity(total_nodes);
        let mut relations: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_relations];
        let mut segments = Vec::with_capacity(graphs.len() + 1);
        segments.push(0);

        let mut offset = 0usize;
        for (index, g) in graphs.iter().enumerate() {
            let n = g.num_nodes();
            if n == 0 {
                return Err(BatchError::EmptyGraph {
                    index,
                    name: g.name.clone(),
                });
            }
            if g.relations.len() != num_relations {
                return Err(BatchError::RelationArity {
                    index,
                    expected: num_relations,
                    got: g.relations.len(),
                });
            }
            tokens.extend_from_slice(&g.tokens);
            kinds.extend_from_slice(&g.kinds);
            for (relation, edges) in g.relations.iter().enumerate() {
                for &(s, d) in edges {
                    if s >= n || d >= n {
                        return Err(BatchError::EdgeOutOfRange {
                            index,
                            relation,
                            edge: (s, d),
                            num_nodes: n,
                        });
                    }
                    relations[relation].push((s + offset, d + offset));
                }
            }
            offset += n;
            segments.push(offset);
        }

        Ok(GraphBatch {
            tokens,
            kinds,
            relations,
            segments,
        })
    }

    /// Number of graphs in the batch.
    pub fn len(&self) -> usize {
        self.segments.len() - 1
    }

    /// True when the batch holds no graphs (unreachable via
    /// [`GraphBatch::from_graphs`], which rejects empty batches).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total node count across all graphs.
    pub fn num_nodes(&self) -> usize {
        *self.segments.last().unwrap()
    }

    /// Concatenated token ids (`num_nodes` entries).
    pub fn tokens(&self) -> &[usize] {
        &self.tokens
    }

    /// Concatenated node-kind indices (`num_nodes` entries).
    pub fn kinds(&self) -> &[usize] {
        &self.kinds
    }

    /// Merged per-relation edge lists with batch-global node ids.
    pub fn relations(&self) -> &[Vec<(usize, usize)>] {
        &self.relations
    }

    /// Graph boundaries as `len() + 1` ascending node offsets; graph `i`
    /// owns node rows `segments()[i]..segments()[i + 1]`.
    pub fn segments(&self) -> &[usize] {
        &self.segments
    }
}

/// Shuffles sample indices each epoch and yields fixed-size batches.
pub struct Minibatcher {
    num_samples: usize,
    batch_size: usize,
    rng: SeededRng,
}

impl Minibatcher {
    /// Creates a batcher over `num_samples` samples.
    pub fn new(num_samples: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Minibatcher {
            num_samples,
            batch_size,
            rng: SeededRng::new(seed),
        }
    }

    /// Returns the batches (each a vector of sample indices) for one epoch,
    /// in a freshly shuffled order.
    pub fn epoch_batches(&mut self) -> Vec<Vec<usize>> {
        let mut indices: Vec<usize> = (0..self.num_samples).collect();
        self.rng.shuffle(&mut indices);
        indices
            .chunks(self.batch_size)
            .map(|c| c.to_vec())
            .collect()
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.num_samples.div_ceil(self.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_every_index_exactly_once() {
        let mut b = Minibatcher::new(37, 16, 1);
        let batches = b.epoch_batches();
        assert_eq!(batches.len(), 3);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn shuffling_changes_between_epochs() {
        let mut b = Minibatcher::new(64, 16, 2);
        let e1 = b.epoch_batches();
        let e2 = b.epoch_batches();
        assert_ne!(e1, e2);
    }

    #[test]
    fn batches_per_epoch_rounds_up() {
        let b = Minibatcher::new(17, 16, 3);
        assert_eq!(b.batches_per_epoch(), 2);
        let b = Minibatcher::new(16, 16, 3);
        assert_eq!(b.batches_per_epoch(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_batch_size_panics() {
        Minibatcher::new(4, 0, 1);
    }
}
