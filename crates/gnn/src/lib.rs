//! # pnp-gnn
//!
//! The learning core of the PnP tuner: a Relational Graph Convolutional
//! Network (RGCN) over flow-aware code graphs, followed by a dense classifier
//! that predicts the best OpenMP configuration.
//!
//! The model follows the paper (Section III-D, Table II):
//!
//! * node features = embedded node text token + node kind,
//! * 4 RGCN layers with Leaky ReLU and relation-specific weights
//!   (control / data / call flow),
//! * mean readout over all nodes,
//! * 3 fully connected layers with ReLU producing class logits,
//! * trained with cross-entropy, Adam / AdamW(amsgrad), lr = 1e-3, batch 16.
//!
//! Two variants exist, mirroring the paper's *static* and *dynamic* tuners:
//! [`PnPModel`] consumes only the code graph; when constructed with
//! `num_dynamic_features > 0` it additionally concatenates normalized
//! hardware counters (and, for the unseen-power-constraint experiment, the
//! normalized power cap) to the readout vector before the dense layers.
//!
//! ## Threading
//!
//! Training is deterministic for a fixed seed, and that determinism is
//! load-bearing: `pnp-core` fans whole LOOCV training jobs out across
//! threads (DESIGN.md §10) and relies on each job reproducing the serial
//! result bit-for-bit. The dense products that dominate the RGCN forward and
//! backward passes (`node_features · W` over hundreds of graph-node rows)
//! additionally support opt-in intra-op row parallelism via
//! `pnp_tensor::set_matmul_threads` / `PNP_MATMUL_THREADS`, which is also
//! bit-identical to the serial kernel at every worker count — enabling it
//! never changes a trained model, only the wall clock. It pays off when few
//! concurrent training jobs must fill many cores (fold-count < core-count).
//!
//! ## Batched inference
//!
//! Inference over many graphs goes through [`GraphBatch`]: the graphs are
//! merged into one block-diagonal graph (concatenated node features, edge
//! lists shifted by per-graph node offsets) and
//! [`PnPModel::forward_batch`] runs the whole batch through one fused
//! forward — one tall matmul per relation per layer instead of one small
//! matmul per graph, which is exactly the regime where the row-parallel
//! matmul above starts to win. Because no edge crosses a graph boundary and
//! the readout pools per segment, every batched output row is bit-identical
//! to the single-graph path (DESIGN.md §15) — batching, like threading, is
//! a scheduling decision, never a numerical one.

pub mod batch;
pub mod metrics;
pub mod model;
pub mod readout;
pub mod rgcn;
pub mod train;

pub use batch::{BatchError, GraphBatch, Minibatcher};
pub use model::{ModelConfig, PnPModel};
pub use readout::MeanReadout;
pub use rgcn::RgcnLayer;
pub use train::{TrainConfig, TrainReport, Trainer, TrainingSample};
