//! Evaluation metrics for trained models.

use crate::model::PnPModel;
use crate::train::TrainingSample;

/// Classification accuracy of a model over a sample set.
pub fn accuracy(model: &mut PnPModel, samples: &[TrainingSample]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|s| model.predict(&s.graph, s.dynamic.as_deref()) == s.label)
        .count();
    correct as f32 / samples.len() as f32
}

/// Top-k accuracy: the true label appears among the k highest-probability
/// classes. The tuning evaluation cares about *near-optimal* configurations,
/// so top-k is the more meaningful training diagnostic.
pub fn topk_accuracy(model: &mut PnPModel, samples: &[TrainingSample], k: usize) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let hits = samples
        .iter()
        .filter(|s| {
            model
                .predict_ranked(&s.graph, s.dynamic.as_deref())
                .iter()
                .take(k)
                .any(|&c| c == s.label)
        })
        .count();
    hits as f32 / samples.len() as f32
}

/// Per-class prediction counts `(class, count)` sorted by class id — a quick
/// check that the classifier is not collapsing onto a single output.
pub fn prediction_histogram(
    model: &mut PnPModel,
    samples: &[TrainingSample],
) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for s in samples {
        *counts
            .entry(model.predict(&s.graph, s.dynamic.as_deref()))
            .or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use pnp_graph::{build_region_graph, EncodedGraph, Vocabulary};
    use pnp_ir::dsl::*;
    use pnp_ir::lower_kernel;

    fn sample(label: usize) -> TrainingSample {
        let region = RegionSource {
            name: "r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d1("A", "N")],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Assign {
                    target: ArrayRef::d1("A", IndexExpr::var("i")),
                    value: Expr::Const(label as f64),
                }],
            ),
        };
        let m = lower_kernel("app", &[region]);
        let g = build_region_graph(&m, "r0").unwrap();
        TrainingSample {
            graph: EncodedGraph::encode(&g, &Vocabulary::standard()),
            dynamic: None,
            label,
            group: "app".into(),
        }
    }

    #[test]
    fn metrics_are_in_unit_interval_and_monotone() {
        let samples = vec![sample(0), sample(1), sample(2)];
        let mut model = PnPModel::new(ModelConfig {
            vocab_size: Vocabulary::standard().len(),
            hidden_dim: 8,
            num_rgcn_layers: 1,
            fc_hidden: 8,
            num_classes: 4,
            num_relations: 3,
            num_dynamic_features: 0,
            dropout: 0.0,
            seed: 1,
        });
        let a1 = accuracy(&mut model, &samples);
        let t1 = topk_accuracy(&mut model, &samples, 1);
        let t4 = topk_accuracy(&mut model, &samples, 4);
        assert!((0.0..=1.0).contains(&a1));
        assert!((a1 - t1).abs() < 1e-6);
        assert_eq!(t4, 1.0);
        let hist = prediction_histogram(&mut model, &samples);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn empty_sample_set_gives_zero() {
        let mut model = PnPModel::new(ModelConfig {
            vocab_size: 64,
            hidden_dim: 4,
            num_rgcn_layers: 1,
            fc_hidden: 4,
            num_classes: 2,
            num_relations: 3,
            num_dynamic_features: 0,
            dropout: 0.0,
            seed: 1,
        });
        assert_eq!(accuracy(&mut model, &[]), 0.0);
        assert_eq!(topk_accuracy(&mut model, &[], 3), 0.0);
    }
}
