//! Batched-vs-single bit-identity: the block-diagonal fused forward
//! (DESIGN.md §15) must reproduce the single-graph inference path exactly —
//! for every batch size, ragged graph mix, dynamic-feature setting, and
//! matmul thread count. Not approximately: `f32::to_bits` equal.

use pnp_gnn::{BatchError, GraphBatch, ModelConfig, PnPModel};
use pnp_graph::EncodedGraph;
use pnp_tensor::set_matmul_threads;

/// Deterministic ragged toy graph `i`: sizes cycle through 1..13 nodes,
/// edge patterns differ per relation, some relations are empty.
fn toy_graph(i: usize) -> EncodedGraph {
    let sizes = [1usize, 2, 3, 5, 8, 13, 4, 9, 6, 11];
    let n = sizes[i % sizes.len()];
    let tokens: Vec<usize> = (0..n).map(|k| (i * 7 + k * 3) % 32).collect();
    let kinds: Vec<usize> = (0..n).map(|k| (i + k) % 3).collect();
    // Relation 0: a forward chain. Relation 1: back edges from every third
    // node. Relation 2: empty for every other graph.
    let chain: Vec<(usize, usize)> = (1..n).map(|k| (k - 1, k)).collect();
    let back: Vec<(usize, usize)> = (0..n)
        .step_by(3)
        .filter(|&k| k > 0)
        .map(|k| (k, 0))
        .collect();
    let self_ish: Vec<(usize, usize)> = if i.is_multiple_of(2) && n > 1 {
        vec![(n - 1, 0), (0, n - 1)]
    } else {
        vec![]
    };
    EncodedGraph {
        name: format!("toy{i}"),
        tokens,
        kinds,
        relations: vec![chain, back, self_ish],
    }
}

fn config(num_dynamic: usize, seed: u64) -> ModelConfig {
    ModelConfig {
        vocab_size: 32,
        hidden_dim: 8,
        num_rgcn_layers: 2,
        fc_hidden: 16,
        num_classes: 6,
        num_relations: 3,
        num_dynamic_features: num_dynamic,
        dropout: 0.1, // identity at inference; must not matter
        seed,
    }
}

fn assert_rows_bit_identical(batched: &[Vec<f32>], single: &[Vec<f32>], what: &str) {
    assert_eq!(batched.len(), single.len(), "{what}: row count");
    for (i, (b, s)) in batched.iter().zip(single).enumerate() {
        assert_eq!(b.len(), s.len(), "{what}: graph {i} width");
        for (c, (x, y)) in b.iter().zip(s).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: graph {i} class {c}: batched {x} != single {y}"
            );
        }
    }
}

#[test]
fn batched_probabilities_are_bit_identical_across_batch_sizes() {
    let mut model = PnPModel::new(config(0, 41));
    for batch_size in [1usize, 2, 7, 64] {
        let graphs: Vec<EncodedGraph> = (0..batch_size).map(toy_graph).collect();
        let refs: Vec<&EncodedGraph> = graphs.iter().collect();
        let batch = GraphBatch::from_graphs(&refs).unwrap();
        let batched = model.predict_proba_batch(&batch, None);
        let single: Vec<Vec<f32>> = graphs
            .iter()
            .map(|g| model.predict_proba(g, None))
            .collect();
        assert_rows_bit_identical(&batched, &single, &format!("batch size {batch_size}"));
    }
}

#[test]
fn dynamic_features_stay_bit_identical_per_graph() {
    let mut model = PnPModel::new(config(5, 42));
    let graphs: Vec<EncodedGraph> = (0..7).map(toy_graph).collect();
    let refs: Vec<&EncodedGraph> = graphs.iter().collect();
    let dynamic: Vec<Vec<f32>> = (0..7)
        .map(|i| (0..5).map(|k| (i as f32 * 0.3) - k as f32 * 0.7).collect())
        .collect();
    let batch = GraphBatch::from_graphs(&refs).unwrap();
    let batched = model.predict_proba_batch(&batch, Some(&dynamic));
    let single: Vec<Vec<f32>> = graphs
        .iter()
        .zip(&dynamic)
        .map(|(g, d)| model.predict_proba(g, Some(d)))
        .collect();
    assert_rows_bit_identical(&batched, &single, "dynamic features");
}

#[test]
fn sum_pooling_ablation_is_also_bit_identical() {
    let mut model = PnPModel::new(config(0, 43));
    model.set_sum_pooling(true);
    let graphs: Vec<EncodedGraph> = (0..5).map(toy_graph).collect();
    let refs: Vec<&EncodedGraph> = graphs.iter().collect();
    let batch = GraphBatch::from_graphs(&refs).unwrap();
    let batched = model.predict_proba_batch(&batch, None);
    let single: Vec<Vec<f32>> = graphs
        .iter()
        .map(|g| model.predict_proba(g, None))
        .collect();
    assert_rows_bit_identical(&batched, &single, "sum pooling");
}

#[test]
fn matmul_thread_count_never_changes_batched_output() {
    // A batch large enough to push every layer's matmul past the
    // row-parallel threshold (PAR_MIN_ROWS = 128 rows).
    let graphs: Vec<EncodedGraph> = (0..64).map(toy_graph).collect();
    let refs: Vec<&EncodedGraph> = graphs.iter().collect();
    let batch = GraphBatch::from_graphs(&refs).unwrap();
    assert!(
        batch.num_nodes() >= pnp_tensor::PAR_MIN_ROWS,
        "batch must be tall enough to exercise the parallel matmul"
    );

    let mut model = PnPModel::new(config(0, 44));
    set_matmul_threads(1);
    let serial = model.predict_proba_batch(&batch, None);
    for threads in [2usize, 4, 8] {
        set_matmul_threads(threads);
        let parallel = model.predict_proba_batch(&batch, None);
        assert_rows_bit_identical(&parallel, &serial, &format!("{threads} matmul threads"));
    }
    set_matmul_threads(1);
}

#[test]
fn empty_batch_is_a_typed_error_not_a_panic() {
    assert_eq!(GraphBatch::from_graphs(&[]).unwrap_err(), BatchError::Empty);
}

#[test]
fn empty_graph_in_a_batch_is_reported_with_its_position() {
    let good = toy_graph(1);
    let empty = EncodedGraph {
        name: "hollow".into(),
        tokens: vec![],
        kinds: vec![],
        relations: vec![vec![], vec![], vec![]],
    };
    let err = GraphBatch::from_graphs(&[&good, &empty]).unwrap_err();
    assert_eq!(
        err,
        BatchError::EmptyGraph {
            index: 1,
            name: "hollow".into()
        }
    );
    // The error is displayable and std::error::Error for client surfaces.
    assert!(err.to_string().contains("hollow"));
}

#[test]
fn relation_arity_mismatch_is_rejected() {
    let three = toy_graph(0);
    let two = EncodedGraph {
        name: "two-rel".into(),
        tokens: vec![0, 1],
        kinds: vec![0, 1],
        relations: vec![vec![(0, 1)], vec![]],
    };
    let err = GraphBatch::from_graphs(&[&three, &two]).unwrap_err();
    assert_eq!(
        err,
        BatchError::RelationArity {
            index: 1,
            expected: 3,
            got: 2
        }
    );
}

#[test]
fn out_of_range_edges_cannot_alias_a_neighbouring_graph() {
    let good = toy_graph(2);
    let bad = EncodedGraph {
        name: "oob".into(),
        tokens: vec![0, 1],
        kinds: vec![0, 1],
        relations: vec![vec![(0, 5)], vec![], vec![]],
    };
    let err = GraphBatch::from_graphs(&[&bad, &good]).unwrap_err();
    assert_eq!(
        err,
        BatchError::EdgeOutOfRange {
            index: 0,
            relation: 0,
            edge: (0, 5),
            num_nodes: 2
        }
    );
}

#[test]
fn batch_layout_matches_the_documented_offsets() {
    let graphs: Vec<EncodedGraph> = (0..3).map(toy_graph).collect();
    let refs: Vec<&EncodedGraph> = graphs.iter().collect();
    let batch = GraphBatch::from_graphs(&refs).unwrap();
    assert_eq!(batch.len(), 3);
    let sizes: Vec<usize> = graphs.iter().map(|g| g.num_nodes()).collect();
    let mut expected = vec![0usize];
    for s in &sizes {
        expected.push(expected.last().unwrap() + s);
    }
    assert_eq!(batch.segments(), &expected[..]);
    assert_eq!(batch.num_nodes(), sizes.iter().sum::<usize>());
    // Every merged edge stays inside its own graph's segment.
    for edges in batch.relations() {
        for &(s, d) in edges {
            let block = batch
                .segments()
                .windows(2)
                .position(|w| w[0] <= s && s < w[1])
                .unwrap();
            let (lo, hi) = (batch.segments()[block], batch.segments()[block + 1]);
            assert!(
                (lo..hi).contains(&d),
                "edge ({s}, {d}) crosses a graph boundary"
            );
        }
    }
}
