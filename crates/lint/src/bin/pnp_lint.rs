//! Workspace lint driver (DESIGN.md §16).
//!
//! ```text
//! pnp_lint [--root DIR] [--config FILE] [--format text|json] [--out FILE]
//! ```
//!
//! Walks `src/`, `crates/`, `examples/`, and `tests/` under `--root`
//! (default: current directory), applies the rule set under the policy in
//! `--config` (default: `<root>/pnp-lint.json`; absent file means an empty
//! policy), and exits `1` when any unsuppressed violation remains. `--out`
//! additionally writes the JSON report to a file regardless of `--format`,
//! which is how CI feeds the step-summary table.

use pnp_lint::{DocCatalogue, LintConfig, Linter, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    out: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

const USAGE: &str =
    "usage: pnp_lint [--root DIR] [--config FILE] [--format text|json] [--out FILE]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        format: Format::Text,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} requires a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`\n{USAGE}")),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<bool, String> {
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("pnp-lint.json"));
    let config = if config_path.is_file() {
        let json = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("{}: {e}", config_path.display()))?;
        LintConfig::from_json(&json, RULES)
            .map_err(|e| format!("{}: {e}", config_path.display()))?
    } else if args.config.is_some() {
        return Err(format!("{}: config file not found", config_path.display()));
    } else {
        LintConfig::empty()
    };

    let catalogue = DocCatalogue::from_root(&args.root).map_err(|e| {
        format!(
            "reading section catalogue under {}: {e}",
            args.root.display()
        )
    })?;
    let linter = Linter::new(config, catalogue);
    let report = linter
        .lint_root(&args.root)
        .map_err(|e| format!("scanning {}: {e}", args.root.display()))?;

    let json = serde_json::to_string(&report).map_err(|e| format!("serializing report: {e:?}"))?;
    if let Some(out) = &args.out {
        std::fs::write(out, &json).map_err(|e| format!("{}: {e}", out.display()))?;
    }
    match args.format {
        Format::Text => print!("{}", report.render_text()),
        Format::Json => println!("{json}"),
    }
    Ok(report.clean())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("pnp_lint: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("pnp_lint: {e}");
            ExitCode::from(2)
        }
    }
}
