//! The section catalogue the doc-contract rules resolve citations against.
//!
//! Two documents in this repository are cited by §-number from rustdoc:
//!
//! * `DESIGN.md` — sections are `## §N Title` headers, subsections are
//!   `**§N.M …**` bold markers inside a section (the §11.x expected-fail
//!   gap families and §13.1 use this form);
//! * `ARCHITECTURE.md` — sections are `## N. Title` headers, cited as
//!   `ARCHITECTURE.md §N`.
//!
//! A citation like `DESIGN.md §12` resolves iff the catalogue saw a marker
//! for that exact section number; `§11.2` resolves only against an explicit
//! `**§11.2` subsection marker, not against `## §11` alone — that is the
//! point: deleting a subsection paragraph must break every citation of it.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// Which document a citation refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Doc {
    /// `DESIGN.md` (the default for bare `§N` citations).
    Design,
    /// `ARCHITECTURE.md`.
    Architecture,
}

/// The set of §-numbered sections each cited document actually contains.
#[derive(Clone, Debug, Default)]
pub struct DocCatalogue {
    design: BTreeSet<String>,
    architecture: BTreeSet<String>,
}

/// Extracts the maximal `digits(.digits)*` run starting at `chars[start]`.
/// Returns `None` when the first char is not an ASCII digit. A trailing dot
/// with no digit after it (sentence punctuation) is not consumed.
pub fn section_number_at(chars: &[char], start: usize) -> Option<String> {
    let mut j = start;
    let mut out = String::new();
    if !chars.get(j).map(|c| c.is_ascii_digit()).unwrap_or(false) {
        return None;
    }
    while j < chars.len() {
        let c = chars[j];
        if c.is_ascii_digit() {
            out.push(c);
            j += 1;
        } else if c == '.'
            && chars
                .get(j + 1)
                .map(|d| d.is_ascii_digit())
                .unwrap_or(false)
        {
            out.push('.');
            j += 1;
        } else {
            break;
        }
    }
    Some(out)
}

fn collect_after_markers(line: &str, marker: &str, out: &mut BTreeSet<String>) {
    let chars: Vec<char> = line.chars().collect();
    let marker_chars: Vec<char> = marker.chars().collect();
    let m = marker_chars.len();
    if chars.len() < m {
        return;
    }
    for i in 0..=chars.len() - m {
        if chars[i..i + m] == marker_chars[..] {
            if let Some(sec) = section_number_at(&chars, i + m) {
                out.insert(sec);
            }
        }
    }
}

impl DocCatalogue {
    /// Parses both catalogues from markdown text.
    pub fn from_markdown(design: &str, architecture: &str) -> Self {
        let mut cat = DocCatalogue::default();
        for line in design.lines() {
            if line.starts_with('#') {
                // `## §N Title` headers.
                collect_after_markers(line, "§", &mut cat.design);
            } else {
                // `**§N.M …` bold subsection markers anywhere in a line.
                collect_after_markers(line, "**§", &mut cat.design);
            }
        }
        for line in architecture.lines() {
            // `## N. Title` headers.
            if let Some(rest) = line.strip_prefix("## ") {
                let chars: Vec<char> = rest.chars().collect();
                if let Some(sec) = section_number_at(&chars, 0) {
                    cat.architecture.insert(sec);
                }
            }
        }
        cat
    }

    /// Reads `DESIGN.md` and `ARCHITECTURE.md` from the repository root.
    pub fn from_root(root: &Path) -> io::Result<Self> {
        let design = fs::read_to_string(root.join("DESIGN.md"))?;
        let architecture = fs::read_to_string(root.join("ARCHITECTURE.md"))?;
        Ok(Self::from_markdown(&design, &architecture))
    }

    /// True when `doc` contains section `sec` (exact match: `11` is not a
    /// prefix-match for `11.2`, and vice versa).
    pub fn resolves(&self, doc: Doc, sec: &str) -> bool {
        match doc {
            Doc::Design => self.design.contains(sec),
            Doc::Architecture => self.architecture.contains(sec),
        }
    }

    /// True when `sec` is a dotted subsection (`N.M`) present in DESIGN.md —
    /// what an `EXPECTED_FAIL` entry must cite.
    pub fn is_design_subsection(&self, sec: &str) -> bool {
        sec.contains('.') && self.design.contains(sec)
    }

    /// Number of DESIGN.md sections seen (sanity guard: an empty catalogue
    /// would vacuously fail every citation).
    pub fn design_len(&self) -> usize {
        self.design.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_headers_and_subsection_markers() {
        let design = "# Design notes\n\n## §1 Goals\n\n## §11 Invariants\n\n* **§11.1 `fig2` (any).** Text.\n\n**§13.1 `ood` gap.** Text.\n";
        let arch = "# Architecture\n\n## 1. Suite\n\n## 10. Batched inference\n";
        let cat = DocCatalogue::from_markdown(design, arch);
        assert!(cat.resolves(Doc::Design, "1"));
        assert!(cat.resolves(Doc::Design, "11"));
        assert!(cat.resolves(Doc::Design, "11.1"));
        assert!(cat.resolves(Doc::Design, "13.1"));
        assert!(!cat.resolves(Doc::Design, "11.2"));
        assert!(!cat.resolves(Doc::Design, "99"));
        assert!(cat.resolves(Doc::Architecture, "1"));
        assert!(cat.resolves(Doc::Architecture, "10"));
        assert!(!cat.resolves(Doc::Architecture, "11"));
        assert!(cat.is_design_subsection("11.1"));
        assert!(!cat.is_design_subsection("11"));
    }

    #[test]
    fn sentence_punctuation_is_not_part_of_a_section_number() {
        let chars: Vec<char> = "11.4.".chars().collect();
        assert_eq!(section_number_at(&chars, 0).as_deref(), Some("11.4"));
        let chars: Vec<char> = "13.".chars().collect();
        assert_eq!(section_number_at(&chars, 0).as_deref(), Some("13"));
        let chars: Vec<char> = "IV".chars().collect();
        assert_eq!(section_number_at(&chars, 0), None);
    }
}
