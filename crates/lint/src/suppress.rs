//! Inline suppression comments.
//!
//! Grammar (one line comment, same line as the finding or the line above):
//!
//! ```text
//! // pnp-lint: allow(rule-a, rule-b) — reason text
//! ```
//!
//! The reason separator may be an em dash, `--`, `-`, or `:`; the reason is
//! mandatory. A comment that starts with the `pnp-lint:` marker but does not
//! parse — missing reason, missing rule list, unknown rule — is itself a
//! `suppression` violation, as is a suppression that matches no finding
//! (both are checked by the engine, which owns the rule registry and the
//! finding stream).

use crate::lexer::{Token, TokenKind};

/// One parsed suppression comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Line of the comment; suppresses findings on this line and the next.
    pub line: u32,
    /// Rules the comment waives.
    pub rules: Vec<String>,
    /// Mandatory justification.
    pub reason: String,
}

/// A suppression comment that failed to parse.
#[derive(Clone, Debug)]
pub struct BadSuppression {
    /// Line of the malformed comment.
    pub line: u32,
    /// What was wrong with it.
    pub message: String,
}

/// The marker every suppression comment starts with (after trimming).
pub const MARKER: &str = "pnp-lint:";

/// Extracts suppressions from a token stream. Only line comments are
/// honoured; a `pnp-lint:` marker inside a block comment is reported as
/// malformed rather than silently ignored.
pub fn extract(tokens: &[Token]) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for tok in tokens {
        let trimmed = tok.text.trim();
        if !trimmed.starts_with(MARKER) {
            continue;
        }
        match tok.kind {
            TokenKind::LineComment => match parse_marker(trimmed, tok.line) {
                Ok(s) => ok.push(s),
                Err(b) => bad.push(b),
            },
            TokenKind::BlockComment => bad.push(BadSuppression {
                line: tok.line,
                message: "suppressions must be `//` line comments, not block comments".into(),
            }),
            _ => {}
        }
    }
    (ok, bad)
}

fn parse_marker(trimmed: &str, line: u32) -> Result<Suppression, BadSuppression> {
    let err = |message: &str| BadSuppression {
        line,
        message: message.to_string(),
    };
    let rest = trimmed[MARKER.len()..].trim_start();
    let rest = rest
        .strip_prefix("allow")
        .ok_or_else(|| err("expected `allow(<rules>) — <reason>` after `pnp-lint:`"))?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| err("expected `(` after `allow`"))?;
    let close = rest
        .find(')')
        .ok_or_else(|| err("unclosed rule list: expected `)`"))?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err(err("empty rule list in `allow()`"));
    }
    let mut reason = rest[close + 1..].trim_start();
    for sep in ["—", "–", "--", "-", ":"] {
        if let Some(stripped) = reason.strip_prefix(sep) {
            reason = stripped.trim_start();
            break;
        }
    }
    let reason = reason.trim();
    if reason.is_empty() {
        return Err(err(
            "suppression reason is mandatory: `allow(<rules>) — <reason>`",
        ));
    }
    Ok(Suppression {
        line,
        rules,
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_a_well_formed_suppression() {
        let src = "let x = 1; // pnp-lint: allow(unwrap, slice-index) — bounded by construction\n";
        let (ok, bad) = extract(&lex(src));
        assert!(bad.is_empty());
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].rules, vec!["unwrap", "slice-index"]);
        assert_eq!(ok[0].reason, "bounded by construction");
        assert_eq!(ok[0].line, 1);
    }

    #[test]
    fn ascii_separators_work_too() {
        let (ok, _) = extract(&lex("// pnp-lint: allow(unwrap) -- checked above\n"));
        assert_eq!(ok[0].reason, "checked above");
        let (ok, _) = extract(&lex("// pnp-lint: allow(unwrap): checked above\n"));
        assert_eq!(ok[0].reason, "checked above");
    }

    #[test]
    fn missing_reason_is_malformed() {
        let (ok, bad) = extract(&lex("// pnp-lint: allow(unwrap)\n"));
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("mandatory"));
    }

    #[test]
    fn separator_with_no_text_is_still_missing_a_reason() {
        let (ok, bad) = extract(&lex("// pnp-lint: allow(unwrap) — \n"));
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn empty_rule_list_is_malformed() {
        let (ok, bad) = extract(&lex("// pnp-lint: allow() — because\n"));
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn block_comment_marker_is_malformed() {
        let (ok, bad) = extract(&lex("/* pnp-lint: allow(unwrap) — x */\n"));
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn marker_inside_string_literal_is_ignored() {
        let (ok, bad) = extract(&lex("let s = \"pnp-lint: allow(unwrap) — nope\";\n"));
        assert!(ok.is_empty());
        assert!(bad.is_empty());
    }
}
