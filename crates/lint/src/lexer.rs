//! A minimal token-level Rust lexer.
//!
//! The lint pass needs exactly enough lexical structure to avoid false
//! positives from text that *looks* like code but is not: string literals
//! (plain, raw, byte, byte-raw), character literals vs. lifetimes, and
//! line/block comments (including nested block comments). It deliberately
//! does not build an AST — see DESIGN.md §16 for why token-level analysis is
//! the right cost/benefit point for this workspace.
//!
//! Guarantees the rule engine relies on:
//!
//! * text inside string/char literals never produces `Ident`/`Punct` tokens,
//!   so `"call .unwrap() here"` in a fixture cannot trip the panic rules;
//! * comment text is preserved verbatim (with accurate line numbers), so the
//!   doc-contract rules and the suppression parser can read it;
//! * every token carries the 1-based line of its first character, so
//!   findings point at real source lines.

/// The lexical class of a [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers such as `r#type`).
    Ident,
    /// A single punctuation character.
    Punct,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// A string literal of any flavour; `text` is the body without quotes.
    Str,
    /// A character or byte literal; `text` is the body without quotes.
    Char,
    /// A lifetime such as `'a` (kept distinct from [`TokenKind::Char`]).
    Lifetime,
    /// A `//`-style comment; `text` excludes the leading slashes, so doc
    /// comments (`///`, `//!`) keep one leading `/` or `!` marker char.
    LineComment,
    /// A `/* ... */` comment (nesting handled); `text` excludes delimiters.
    BlockComment,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what is included per kind).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True when the token is a comment of either style.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True for an `Ident` token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a `Punct` token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes a complete source file. Total: malformed input (unterminated
/// strings or comments) produces best-effort tokens rather than an error —
/// the compiler is the authority on well-formedness, not the linter.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn slice(&self, from: usize, to: usize) -> String {
        self.chars[from.min(self.chars.len())..to.min(self.chars.len())]
            .iter()
            .collect()
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start_line = self.line;
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(start_line),
                '/' if self.peek(1) == Some('*') => self.block_comment(start_line),
                '"' => {
                    self.pos += 1;
                    self.string_body(start_line);
                }
                '\'' => self.lifetime_or_char(start_line),
                'r' | 'b' if self.raw_or_byte_literal(start_line) => {}
                _ if is_ident_start(c) => self.ident(start_line),
                _ if c.is_ascii_digit() => self.number(start_line),
                _ => {
                    self.push(TokenKind::Punct, c.to_string(), start_line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, start_line: u32) {
        let body_start = self.pos + 2;
        let mut j = body_start;
        while j < self.chars.len() && self.chars[j] != '\n' {
            j += 1;
        }
        let text = self.slice(body_start, j);
        self.push(TokenKind::LineComment, text, start_line);
        self.pos = j;
    }

    fn block_comment(&mut self, start_line: u32) {
        let body_start = self.pos + 2;
        let mut depth = 1usize;
        let mut j = body_start;
        while j < self.chars.len() && depth > 0 {
            match self.chars[j] {
                '\n' => {
                    self.line += 1;
                    j += 1;
                }
                '/' if self.chars.get(j + 1) == Some(&'*') => {
                    depth += 1;
                    j += 2;
                }
                '*' if self.chars.get(j + 1) == Some(&'/') => {
                    depth -= 1;
                    j += 2;
                }
                _ => j += 1,
            }
        }
        let body_end = if depth == 0 { j - 2 } else { j };
        let text = self.slice(body_start, body_end);
        self.push(TokenKind::BlockComment, text, start_line);
        self.pos = j;
    }

    /// Scans a plain (escaped) string body starting *after* the opening
    /// quote; emits the token and leaves the cursor after the closing quote.
    fn string_body(&mut self, start_line: u32) {
        let body_start = self.pos;
        let mut j = self.pos;
        while j < self.chars.len() {
            match self.chars[j] {
                '\\' => {
                    if self.chars.get(j + 1) == Some(&'\n') {
                        self.line += 1;
                    }
                    j += 2;
                }
                '"' => break,
                '\n' => {
                    self.line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        let text = self.slice(body_start, j);
        self.push(TokenKind::Str, text, start_line);
        self.pos = (j + 1).min(self.chars.len());
    }

    /// Scans a raw string body starting at the opening quote, with `hashes`
    /// trailing `#` markers required to close it.
    fn raw_string_body(&mut self, hashes: usize, start_line: u32) {
        let body_start = self.pos + 1;
        let mut j = body_start;
        while j < self.chars.len() {
            match self.chars[j] {
                '\n' => {
                    self.line += 1;
                    j += 1;
                }
                '"' => {
                    let mut k = 0usize;
                    while k < hashes && self.chars.get(j + 1 + k) == Some(&'#') {
                        k += 1;
                    }
                    if k == hashes {
                        let text = self.slice(body_start, j);
                        self.push(TokenKind::Str, text, start_line);
                        self.pos = j + 1 + hashes;
                        return;
                    }
                    j += 1;
                }
                _ => j += 1,
            }
        }
        // Unterminated raw string: emit what we have.
        let text = self.slice(body_start, j);
        self.push(TokenKind::Str, text, start_line);
        self.pos = j;
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`.
    /// Returns false when the cursor is actually at a plain identifier.
    fn raw_or_byte_literal(&mut self, start_line: u32) -> bool {
        let c = match self.peek(0) {
            Some(c) => c,
            None => return false,
        };
        if c == 'r' {
            let mut hashes = 0usize;
            while self.peek(1 + hashes) == Some('#') {
                hashes += 1;
            }
            match self.peek(1 + hashes) {
                Some('"') => {
                    self.pos += 1 + hashes;
                    self.raw_string_body(hashes, start_line);
                    return true;
                }
                Some(ch) if hashes == 1 && is_ident_start(ch) => {
                    // Raw identifier `r#type`: lex as an Ident (prefix kept).
                    let start = self.pos;
                    let mut j = self.pos + 2;
                    while j < self.chars.len() && is_ident_continue(self.chars[j]) {
                        j += 1;
                    }
                    let text = self.slice(start, j);
                    self.push(TokenKind::Ident, text, start_line);
                    self.pos = j;
                    return true;
                }
                _ => return false,
            }
        }
        // c == 'b'
        match self.peek(1) {
            Some('"') => {
                self.pos += 2;
                self.string_body(start_line);
                true
            }
            Some('\'') => {
                self.pos += 1;
                self.lifetime_or_char(start_line);
                true
            }
            Some('r') => {
                let mut hashes = 0usize;
                while self.peek(2 + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(2 + hashes) == Some('"') {
                    self.pos += 2 + hashes;
                    self.raw_string_body(hashes, start_line);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal).
    /// The cursor is on the opening quote.
    fn lifetime_or_char(&mut self, start_line: u32) {
        let next = self.peek(1);
        if let Some(ch) = next {
            if is_ident_continue(ch) && ch != '\\' {
                // Consume the identifier run after the quote.
                let mut j = self.pos + 1;
                while j < self.chars.len() && is_ident_continue(self.chars[j]) {
                    j += 1;
                }
                if self.chars.get(j) == Some(&'\'') {
                    // Closing quote: it was a char literal like 'a'.
                    let text = self.slice(self.pos + 1, j);
                    self.push(TokenKind::Char, text, start_line);
                    self.pos = j + 1;
                } else {
                    let text = self.slice(self.pos, j);
                    self.push(TokenKind::Lifetime, text, start_line);
                    self.pos = j;
                }
                return;
            }
        }
        // Escaped or punctuation char literal: scan to the closing quote.
        let body_start = self.pos + 1;
        let mut j = body_start;
        while j < self.chars.len() {
            match self.chars[j] {
                '\\' => j += 2,
                '\'' => break,
                '\n' => {
                    // Malformed; bail out so line counting stays correct.
                    break;
                }
                _ => j += 1,
            }
        }
        let text = self.slice(body_start, j);
        self.push(TokenKind::Char, text, start_line);
        self.pos = if self.chars.get(j) == Some(&'\'') {
            j + 1
        } else {
            j
        };
    }

    fn ident(&mut self, start_line: u32) {
        let start = self.pos;
        let mut j = self.pos;
        while j < self.chars.len() && is_ident_continue(self.chars[j]) {
            j += 1;
        }
        let text = self.slice(start, j);
        self.push(TokenKind::Ident, text, start_line);
        self.pos = j;
    }

    fn number(&mut self, start_line: u32) {
        let start = self.pos;
        let mut j = self.pos;
        let mut seen_dot = false;
        while j < self.chars.len() {
            let c = self.chars[j];
            if is_ident_continue(c) {
                j += 1;
            } else if c == '.'
                && !seen_dot
                && self
                    .chars
                    .get(j + 1)
                    .map(|d| d.is_ascii_digit())
                    .unwrap_or(false)
            {
                // A decimal point followed by a digit (so `0..n` ranges and
                // `x.method()` stay three separate tokens).
                seen_dot = true;
                j += 1;
            } else {
                break;
            }
        }
        let text = self.slice(start, j);
        self.push(TokenKind::Num, text, start_line);
        self.pos = j;
    }
}
