//! Per-path lint policy, loaded from the committed `pnp-lint.json`.
//!
//! The config is the *bulk* suppression channel: where a whole crate opts a
//! rule out (e.g. `slice-index` in the dense numeric kernels), one reasoned
//! entry covers it instead of hundreds of inline comments. Inline
//! suppressions (see [`crate::suppress`]) remain the channel for individual
//! sites. Both channels share the same hygiene contract:
//!
//! * every entry must carry a non-empty reason — an allow without a *why*
//!   is itself a violation;
//! * every entry must match at least one finding — a stale entry that no
//!   longer suppresses anything fails the run, so policy cannot rot;
//! * entries are counted per rule in the report, so the CI table shows how
//!   much hazard is being waived, not just that the tree is "clean".
//!
//! The format is JSON rather than TOML solely because the offline stand-in
//! dependency policy (DESIGN.md §8) provides a serde/serde_json stack and no
//! TOML parser; every other machine-readable file in this repository is
//! JSON for the same reason.

use serde::{Deserialize, Serialize};

/// Current config schema version (bump on incompatible layout change).
pub const CONFIG_VERSION: u64 = 1;

/// One path-scoped allow: `rule` findings under `path` are waived.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AllowEntry {
    /// Workspace-relative path prefix, `/`-separated (e.g.
    /// `crates/tensor/src/`). A finding matches when its file path starts
    /// with this prefix.
    pub path: String,
    /// Rule id the entry waives (must name a real rule).
    pub rule: String,
    /// Mandatory justification, shown in the report.
    pub reason: String,
}

/// The whole policy file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LintConfig {
    /// Schema version; must equal [`CONFIG_VERSION`].
    pub version: u64,
    /// Path-scoped waivers, most-specific-wins not required: any matching
    /// entry suppresses (all matches are marked used).
    pub allow: Vec<AllowEntry>,
}

impl LintConfig {
    /// A config with no waivers (every finding is a violation).
    pub fn empty() -> Self {
        LintConfig {
            version: CONFIG_VERSION,
            allow: Vec::new(),
        }
    }

    /// Parses and structurally validates a config against the rule registry.
    pub fn from_json(json: &str, known_rules: &[&str]) -> Result<Self, String> {
        let cfg: LintConfig =
            serde_json::from_str(json).map_err(|e| format!("config parse error: {e:?}"))?;
        cfg.validate(known_rules)?;
        Ok(cfg)
    }

    /// Checks version, rule names, and the mandatory-reason contract.
    pub fn validate(&self, known_rules: &[&str]) -> Result<(), String> {
        if self.version != CONFIG_VERSION {
            return Err(format!(
                "config version {} unsupported (expected {})",
                self.version, CONFIG_VERSION
            ));
        }
        for (i, entry) in self.allow.iter().enumerate() {
            if !known_rules.contains(&entry.rule.as_str()) {
                return Err(format!(
                    "allow[{i}]: unknown rule `{}` (known: {})",
                    entry.rule,
                    known_rules.join(", ")
                ));
            }
            if entry.reason.trim().is_empty() {
                return Err(format!(
                    "allow[{i}] ({} / {}): reason must not be empty",
                    entry.path, entry.rule
                ));
            }
            if entry.path.trim().is_empty() {
                return Err(format!(
                    "allow[{i}] ({}): path must not be empty",
                    entry.rule
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["unwrap", "slice-index"];

    #[test]
    fn valid_config_round_trips() {
        let json = r#"{
            "version": 1,
            "allow": [
                {"path": "crates/tensor/src/", "rule": "slice-index", "reason": "loop-bounded"}
            ]
        }"#;
        let cfg = LintConfig::from_json(json, RULES).unwrap();
        assert_eq!(cfg.allow.len(), 1);
        let back = serde_json::to_string(&cfg).unwrap();
        let cfg2 = LintConfig::from_json(&back, RULES).unwrap();
        assert_eq!(cfg2.allow[0].rule, "slice-index");
    }

    #[test]
    fn empty_reason_is_rejected() {
        let json =
            r#"{"version": 1, "allow": [{"path": "src/", "rule": "unwrap", "reason": "  "}]}"#;
        assert!(LintConfig::from_json(json, RULES).is_err());
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let json = r#"{"version": 1, "allow": [{"path": "src/", "rule": "nope", "reason": "x"}]}"#;
        assert!(LintConfig::from_json(json, RULES).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let json = r#"{"version": 2, "allow": []}"#;
        assert!(LintConfig::from_json(json, RULES).is_err());
    }
}
