//! The rule set (DESIGN.md §16 is the narrative catalogue).
//!
//! Three hazard classes, matching the guarantees the runtime tests enforce:
//!
//! **Nondeterminism** — anything that can make two runs of the same build
//! disagree, which breaks the bit-identity contracts (DESIGN.md §9, §10,
//! §14, §15) and the content-addressed byte-identity contract (§12):
//!
//! * `float-sort` — `partial_cmp(..).unwrap()/.expect(..)`: panics on NaN
//!   and, when "handled" with `unwrap_or`, silently order-unstable; the
//!   committee and tuner paths must use `total_cmp`.
//! * `hash-iter` — iterating a `HashMap`/`HashSet`: iteration order is
//!   randomized per instance, so any order-dependent output downstream
//!   (serialization, ranking, report rows) becomes run-dependent.
//! * `hash-serde` — a `#[derive(Serialize)]` type with a `HashMap`/`HashSet`
//!   field: byte output then depends on the serializer's ordering policy,
//!   which the content-addressed store must never do.
//! * `wall-clock` — `Instant::now` / `SystemTime` in library code: time is
//!   an input no deterministic pipeline may read (harness binaries measure
//!   wall time by design and are exempt by classification).
//!
//! **Panic-safety** — library crates steer toward the typed-error idiom of
//! PRs 4/6/8 instead of panicking on malformed input:
//!
//! * `unwrap` — `.unwrap()` / `.expect(..)` outside `#[cfg(test)]`.
//! * `panic` — `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//!   (`assert!` family is deliberately not flagged: asserted invariants are
//!   the documented alternative to unchecked UB, and clippy already walls
//!   off arithmetic/indexing misuse).
//! * `slice-index` — `expr[...]` indexing, which panics out of bounds; the
//!   dense numeric kernels waive this per-crate with a reasoned config
//!   entry rather than per-site noise.
//!
//! **Doc-contract** — rustdoc citations must resolve:
//!
//! * `design-ref` — every `§N`/`§N.M` citation in a comment resolves
//!   against DESIGN.md (or ARCHITECTURE.md when the comment names it).
//! * `xfail-ref` — every `ExpectedFailEntry { .. }` literal is preceded by
//!   a comment citing an existing DESIGN.md §11.x/§13.x subsection.
//!
//! Plus `suppression` (emitted by the engine): malformed, unknown-rule,
//! or unused suppressions and stale config entries.

use crate::catalogue::{section_number_at, Doc, DocCatalogue};
use crate::classify::{FileClass, FileKind};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;

/// Every rule id, in report order. `suppression` is engine-emitted.
pub const RULES: &[&str] = &[
    "float-sort",
    "hash-iter",
    "hash-serde",
    "wall-clock",
    "unwrap",
    "panic",
    "slice-index",
    "design-ref",
    "xfail-ref",
    "suppression",
];

/// One raw finding (pre-suppression).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id (an element of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the hazard at this site.
    pub message: String,
}

/// A lexed file prepared for rule checks.
pub struct FileView<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Rule-policy class.
    pub class: FileClass,
    /// Full token stream (comments included).
    pub tokens: &'a [Token],
    /// Indices into `tokens` of the non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Per-`code`-index flag: inside an outer `#[...]` / `#![...]` span.
    pub in_attr: Vec<bool>,
    /// Line ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl<'a> FileView<'a> {
    /// Prepares a view over a lexed file.
    pub fn new(path: &'a str, class: FileClass, tokens: &'a [Token]) -> Self {
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let in_attr = attr_mask(tokens, &code);
        let test_ranges = cfg_test_ranges(tokens, &code);
        FileView {
            path,
            class,
            tokens,
            code,
            in_attr,
            test_ranges,
        }
    }

    fn tok(&self, k: usize) -> &Token {
        &self.tokens[self.code[k]]
    }

    /// True when `line` falls inside a `#[cfg(test)]` item (or the whole
    /// file is test code).
    pub fn is_test_line(&self, line: u32) -> bool {
        self.class.kind == FileKind::Test
            || self
                .test_ranges
                .iter()
                .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    fn finding(&self, rule: &'static str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            file: self.path.to_string(),
            line,
            message,
        }
    }
}

/// Marks the code-token spans of outer/inner attributes `#[...]` / `#![...]`.
fn attr_mask(tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut k = 0usize;
    while k < code.len() {
        if tokens[code[k]].is_punct('#') {
            let mut open = k + 1;
            if open < code.len() && tokens[code[open]].is_punct('!') {
                open += 1;
            }
            if open < code.len() && tokens[code[open]].is_punct('[') {
                let mut depth = 0usize;
                let mut j = open;
                while j < code.len() {
                    let t = &tokens[code[j]];
                    if t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let end = j.min(code.len() - 1);
                for m in mask.iter_mut().take(end + 1).skip(k) {
                    *m = true;
                }
                k = end + 1;
                continue;
            }
        }
        k += 1;
    }
    mask
}

/// Finds `#[cfg(test)]`-gated items and returns their line spans.
fn cfg_test_ranges(tokens: &[Token], code: &[usize]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let at = |k: usize| -> Option<&Token> { code.get(k).map(|&i| &tokens[i]) };
    let mut k = 0usize;
    while k < code.len() {
        // Match `#[cfg(` with `test` anywhere inside the parens.
        let is_cfg_test = at(k).map(|t| t.is_punct('#')).unwrap_or(false)
            && at(k + 1).map(|t| t.is_punct('[')).unwrap_or(false)
            && at(k + 2).map(|t| t.is_ident("cfg")).unwrap_or(false)
            && at(k + 3).map(|t| t.is_punct('(')).unwrap_or(false);
        if !is_cfg_test {
            k += 1;
            continue;
        }
        let start_line = at(k).map(|t| t.line).unwrap_or(1);
        // Scan the attribute body to the matching `]`, noting `test`.
        let mut saw_test = false;
        let mut depth = 0usize;
        let mut j = k + 1;
        while j < code.len() {
            let Some(t) = at(j) else { break };
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("test") {
                saw_test = true;
            }
            j += 1;
        }
        if !saw_test {
            k = j + 1;
            continue;
        }
        // Skip any further attributes, then consume one item.
        let mut p = j + 1;
        while p + 1 < code.len()
            && at(p).map(|t| t.is_punct('#')).unwrap_or(false)
            && at(p + 1).map(|t| t.is_punct('[')).unwrap_or(false)
        {
            let mut depth = 0usize;
            let mut q = p + 1;
            while q < code.len() {
                let Some(t) = at(q) else { break };
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                q += 1;
            }
            p = q + 1;
        }
        // The item ends at `;` before any brace, or at the matching `}`.
        let mut depth = 0usize;
        let mut end_line = start_line;
        while p < code.len() {
            let Some(t) = at(p) else { break };
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    end_line = t.line;
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                end_line = t.line;
                break;
            }
            end_line = t.line;
            p += 1;
        }
        ranges.push((start_line, end_line));
        k = p + 1;
    }
    ranges
}

/// Runs every syntactic rule over one file.
pub fn check_file(view: &FileView<'_>, catalogue: &DocCatalogue) -> Vec<Finding> {
    let mut out = Vec::new();
    check_float_sort(view, &mut out);
    check_hash_iter(view, &mut out);
    check_hash_serde(view, &mut out);
    check_wall_clock(view, &mut out);
    check_unwrap(view, &mut out);
    check_panic(view, &mut out);
    check_slice_index(view, &mut out);
    check_design_ref(view, catalogue, &mut out);
    check_xfail_ref(view, catalogue, &mut out);
    out
}

/// Determinism rules apply to library and harness code alike (a harness
/// report row ordered by hash iteration is still a nondeterministic
/// artifact); panic rules apply to library code only.
fn determinism_applies(view: &FileView<'_>, line: u32) -> bool {
    view.class.kind != FileKind::Test && !view.is_test_line(line)
}

fn panic_rules_apply(view: &FileView<'_>, line: u32) -> bool {
    view.class.kind == FileKind::Library && !view.is_test_line(line)
}

fn check_float_sort(view: &FileView<'_>, out: &mut Vec<Finding>) {
    for k in 0..view.code.len() {
        if !view.tok(k).is_ident("partial_cmp") {
            continue;
        }
        let line = view.tok(k).line;
        if !determinism_applies(view, line) {
            continue;
        }
        // Look ahead for `.unwrap()` / `.expect(` in the same expression.
        let mut j = k + 1;
        let limit = (k + 40).min(view.code.len());
        while j < limit {
            let t = view.tok(j);
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            if (t.is_ident("unwrap") || t.is_ident("expect"))
                && j >= 1
                && view.tok(j - 1).is_punct('.')
            {
                out.push(
                    view.finding(
                        "float-sort",
                        line,
                        "`partial_cmp(..).unwrap()` panics on NaN and is order-unstable; \
                     use `total_cmp` in float comparators"
                            .into(),
                    ),
                );
                break;
            }
            j += 1;
        }
    }
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Collects identifiers declared (or assigned) with a hash-table type in
/// this file: `name: HashMap<..>` (lets, fields, params) and
/// `name = HashMap::new()` forms.
fn hash_names(view: &FileView<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for k in 0..view.code.len() {
        let t = view.tok(k);
        if t.kind != TokenKind::Ident {
            continue;
        }
        let Some(next) = view.code.get(k + 1).map(|_| view.tok(k + 1)) else {
            continue;
        };
        // `name :` but not `name ::` and not `:: name :`-style paths.
        let typed = next.is_punct(':')
            && view
                .code
                .get(k + 2)
                .map(|_| !view.tok(k + 2).is_punct(':'))
                .unwrap_or(false)
            && (k == 0 || !view.tok(k - 1).is_punct(':'));
        let assigned = next.is_punct('=');
        if !typed && !assigned {
            continue;
        }
        let stop_at_comma = typed;
        let limit = (k + 12).min(view.code.len());
        let mut j = k + 2;
        while j < limit {
            let u = view.tok(j);
            if u.is_punct(';') || u.is_punct('{') || (stop_at_comma && u.is_punct(',')) {
                break;
            }
            if u.kind == TokenKind::Ident && HASH_TYPES.contains(&u.text.as_str()) {
                names.insert(t.text.clone());
                break;
            }
            j += 1;
        }
    }
    names
}

fn check_hash_iter(view: &FileView<'_>, out: &mut Vec<Finding>) {
    let names = hash_names(view);
    if names.is_empty() {
        return;
    }
    for k in 0..view.code.len() {
        let t = view.tok(k);
        let line = t.line;
        if !determinism_applies(view, line) {
            continue;
        }
        // `name.iter()` and friends. Only bare `name` and `self.name`
        // receivers count: `other.name` is a field of a *different* struct
        // that merely shares the name, and its type is unknown here.
        if t.kind == TokenKind::Ident && names.contains(&t.text) {
            if k >= 1
                && view.tok(k - 1).is_punct('.')
                && !(k >= 2 && view.tok(k - 2).is_ident("self"))
            {
                continue;
            }
            if k + 2 < view.code.len()
                && view.tok(k + 1).is_punct('.')
                && view.tok(k + 2).kind == TokenKind::Ident
                && ITER_METHODS.contains(&view.tok(k + 2).text.as_str())
            {
                out.push(view.finding(
                    "hash-iter",
                    line,
                    format!(
                        "iteration over hash table `{}` is order-randomized; sort the \
                         items first or use a BTree collection",
                        t.text
                    ),
                ));
            }
            continue;
        }
        // `for pat in [&mut] name {`.
        if t.is_ident("for") {
            let limit = (k + 24).min(view.code.len());
            let mut depth = 0usize;
            let mut j = k + 1;
            while j < limit {
                let u = view.tok(j);
                if u.is_punct('(') || u.is_punct('[') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && u.is_ident("in") {
                    let mut m = j + 1;
                    while m < view.code.len()
                        && (view.tok(m).is_punct('&') || view.tok(m).is_ident("mut"))
                    {
                        m += 1;
                    }
                    if m + 1 < view.code.len()
                        && view.tok(m).kind == TokenKind::Ident
                        && names.contains(&view.tok(m).text)
                        && view.tok(m + 1).is_punct('{')
                    {
                        out.push(view.finding(
                            "hash-iter",
                            view.tok(m).line,
                            format!(
                                "`for .. in {}` iterates a hash table in randomized \
                                 order; sort the items first or use a BTree collection",
                                view.tok(m).text
                            ),
                        ));
                    }
                    break;
                }
                j += 1;
            }
        }
    }
}

fn check_hash_serde(view: &FileView<'_>, out: &mut Vec<Finding>) {
    let mut k = 0usize;
    while k < view.code.len() {
        // Find a `derive(.. Serialize|Deserialize ..)` attribute.
        if !(view.tok(k).is_ident("derive") && view.in_attr[k]) {
            k += 1;
            continue;
        }
        let attr_line = view.tok(k).line;
        let mut saw_serde = false;
        let mut j = k + 1;
        while j < view.code.len() && view.in_attr[j] {
            let t = view.tok(j);
            if t.is_ident("Serialize") || t.is_ident("Deserialize") {
                saw_serde = true;
            }
            j += 1;
        }
        if !saw_serde || !determinism_applies(view, attr_line) {
            k = j;
            continue;
        }
        // Skip any further attributes, then scan the following item body.
        let mut p = j;
        while p + 1 < view.code.len() && view.in_attr[p] {
            p += 1;
        }
        let mut depth = 0usize;
        while p < view.code.len() {
            let t = view.tok(p);
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                break;
            } else if t.kind == TokenKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
                out.push(view.finding(
                    "hash-serde",
                    t.line,
                    format!(
                        "`{}` field in a serializable type: byte output depends on the \
                         serializer's ordering policy; use a BTree collection so the \
                         content-addressed byte-identity contract (DESIGN.md §12) cannot \
                         depend on it",
                        t.text
                    ),
                ));
            }
            p += 1;
        }
        k = p + 1;
    }
}

fn check_wall_clock(view: &FileView<'_>, out: &mut Vec<Finding>) {
    for k in 0..view.code.len() {
        let t = view.tok(k);
        let line = t.line;
        if !panic_rules_apply(view, line) {
            // Wall-clock shares the library-only scope of the panic rules.
            continue;
        }
        if t.is_ident("SystemTime") {
            out.push(
                view.finding(
                    "wall-clock",
                    line,
                    "`SystemTime` in deterministic library code: time is an input no \
                 reproducible pipeline may read"
                        .into(),
                ),
            );
        } else if t.is_ident("Instant")
            && k + 3 < view.code.len()
            && view.tok(k + 1).is_punct(':')
            && view.tok(k + 2).is_punct(':')
            && view.tok(k + 3).is_ident("now")
        {
            out.push(
                view.finding(
                    "wall-clock",
                    line,
                    "`Instant::now` in deterministic library code: wall-clock reads belong \
                 in harness binaries (which are exempt by classification)"
                        .into(),
                ),
            );
        }
    }
}

fn check_unwrap(view: &FileView<'_>, out: &mut Vec<Finding>) {
    for k in 1..view.code.len() {
        let t = view.tok(k);
        if !(t.is_ident("unwrap") || t.is_ident("expect")) {
            continue;
        }
        if !view.tok(k - 1).is_punct('.') {
            continue;
        }
        if !(k + 1 < view.code.len() && view.tok(k + 1).is_punct('(')) {
            continue;
        }
        let line = t.line;
        if !panic_rules_apply(view, line) {
            continue;
        }
        out.push(view.finding(
            "unwrap",
            line,
            format!(
                "`.{}(..)` in library code panics on the error path; return a typed \
                 error instead (the PR 4/6/8 idiom)",
                t.text
            ),
        ));
    }
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn check_panic(view: &FileView<'_>, out: &mut Vec<Finding>) {
    for k in 0..view.code.len() {
        let t = view.tok(k);
        if t.kind != TokenKind::Ident || !PANIC_MACROS.contains(&t.text.as_str()) {
            continue;
        }
        if !(k + 1 < view.code.len() && view.tok(k + 1).is_punct('!')) {
            continue;
        }
        if view.in_attr[k] {
            continue;
        }
        let line = t.line;
        if !panic_rules_apply(view, line) {
            continue;
        }
        out.push(view.finding(
            "panic",
            line,
            format!(
                "`{}!` in library code; return a typed error instead (the PR 4/6/8 idiom)",
                t.text
            ),
        ));
    }
}

/// Keywords that may legally precede `[` without it being an indexing
/// expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "break", "continue", "in", "else", "mut", "ref", "move", "as", "dyn", "where",
    "unsafe", "use", "pub", "let", "const", "static", "enum", "struct", "union", "type", "impl",
    "match", "if", "while", "loop", "for",
];

fn check_slice_index(view: &FileView<'_>, out: &mut Vec<Finding>) {
    for k in 1..view.code.len() {
        let t = view.tok(k);
        if !t.is_punct('[') || view.in_attr[k] {
            continue;
        }
        let prev = view.tok(k - 1);
        let indexes = match prev.kind {
            TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
            _ => false,
        };
        if !indexes {
            continue;
        }
        let line = t.line;
        if !panic_rules_apply(view, line) {
            continue;
        }
        out.push(
            view.finding(
                "slice-index",
                line,
                "indexing panics out of bounds; prefer `get`/iterators, or waive per \
             crate where indices are bounded by construction"
                    .into(),
            ),
        );
    }
}

fn check_design_ref(view: &FileView<'_>, catalogue: &DocCatalogue, out: &mut Vec<Finding>) {
    for tok in view.tokens.iter().filter(|t| t.is_comment()) {
        let chars: Vec<char> = tok.text.chars().collect();
        for i in 0..chars.len() {
            if chars[i] != '§' {
                continue;
            }
            let Some(sec) = section_number_at(&chars, i + 1) else {
                continue; // Roman-numeral paper sections (§IV-B) are not ours.
            };
            // The governing document is the nearest preceding mention in the
            // same comment; bare citations default to DESIGN.md (the
            // repository convention, README "Documentation").
            let before: String = chars[..i].iter().collect();
            let doc = match (before.rfind("DESIGN"), before.rfind("ARCHITECTURE")) {
                (Some(d), Some(a)) if a > d => Doc::Architecture,
                (None, Some(_)) => Doc::Architecture,
                _ => Doc::Design,
            };
            if !catalogue.resolves(doc, &sec) {
                let line_offset = chars[..i].iter().filter(|&&c| c == '\n').count() as u32;
                let doc_name = match doc {
                    Doc::Design => "DESIGN.md",
                    Doc::Architecture => "ARCHITECTURE.md",
                };
                out.push(view.finding(
                    "design-ref",
                    tok.line + line_offset,
                    format!("citation `§{sec}` does not resolve to a section of {doc_name}"),
                ));
            }
        }
    }
}

/// Item keywords that mean `ExpectedFailEntry {` is a definition, not a
/// literal.
const DEFN_KEYWORDS: &[&str] = &["struct", "enum", "union", "trait", "impl", "mod", "for"];

fn check_xfail_ref(view: &FileView<'_>, catalogue: &DocCatalogue, out: &mut Vec<Finding>) {
    // Walk the *full* token stream so comment runs can be associated with
    // the entries that follow them.
    let mut last_comment_sections: Vec<String> = Vec::new();
    let mut prev_was_comment = false;
    let mut prev_code: Option<&Token> = None;
    for (i, tok) in view.tokens.iter().enumerate() {
        if tok.is_comment() {
            if !prev_was_comment {
                last_comment_sections.clear();
            }
            let chars: Vec<char> = tok.text.chars().collect();
            for c in 0..chars.len() {
                if chars[c] == '§' {
                    if let Some(sec) = section_number_at(&chars, c + 1) {
                        last_comment_sections.push(sec);
                    }
                }
            }
            prev_was_comment = true;
            continue;
        }
        prev_was_comment = false;
        let is_entry_literal = tok.is_ident("ExpectedFailEntry")
            && view
                .tokens
                .get(i + 1..)
                .and_then(|rest| rest.iter().find(|t| !t.is_comment()))
                .map(|t| t.is_punct('{'))
                .unwrap_or(false)
            && prev_code
                .map(|p| {
                    // Exclude definitions (`struct ExpectedFailEntry {`) and
                    // return-type positions (`-> ExpectedFailEntry {`).
                    !(p.is_punct('>')
                        || p.kind == TokenKind::Ident && DEFN_KEYWORDS.contains(&p.text.as_str()))
                })
                .unwrap_or(true);
        if is_entry_literal {
            let documented = last_comment_sections
                .iter()
                .any(|sec| catalogue.is_design_subsection(sec));
            if !documented {
                out.push(
                    view.finding(
                        "xfail-ref",
                        tok.line,
                        "`ExpectedFailEntry` must be preceded by a comment citing the \
                     DESIGN.md §11.x/§13.x subsection that documents the gap"
                            .into(),
                    ),
                );
            }
        }
        prev_code = Some(tok);
    }
}
