//! File classification: which rule sets apply where.
//!
//! The policy mirrors the workspace layout (README "Crate map"):
//!
//! * **Library** code — `crates/<name>/src/**` (excluding `src/bin/`) and the
//!   root facade `src/**` — carries every guarantee: panic-safety rules and
//!   determinism rules both apply.
//! * **Harness** code — `src/bin/**` and `examples/**` — is CLI /
//!   measurement tooling where a panic is an acceptable error report and
//!   wall-clock reads are the point; only the determinism-of-output rules
//!   (float ordering, hash iteration) and the doc-contract rules apply.
//! * **Test** code — any `tests/` or `benches/` directory, plus `#[cfg(test)]` regions
//!   inside library files (tracked separately by the engine) — is exempt
//!   from panic-safety and wall-clock rules, and from the determinism rules
//!   (a test sorting known values with `partial_cmp` is noise, not hazard);
//!   the doc-contract rules still apply so stale citations cannot hide in
//!   test rustdoc.

/// The coarse rule-policy class of one file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every rule applies.
    Library,
    /// Binaries, examples, criterion benches: determinism + doc rules only.
    Harness,
    /// Integration tests and bench fixtures: doc rules only.
    Test,
}

/// Classification of one scanned file.
#[derive(Clone, Debug)]
pub struct FileClass {
    /// Owning crate: the directory name under `crates/`, or `pnp` for the
    /// root facade's `src/`, `examples/`, and `tests/`.
    pub crate_name: String,
    /// Which rule sets apply.
    pub kind: FileKind,
}

/// Classifies a workspace-relative path (always `/`-separated).
pub fn classify(rel_path: &str) -> FileClass {
    let crate_name = match rel_path.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or("pnp").to_string(),
        None => "pnp".to_string(),
    };
    let kind = if rel_path.starts_with("tests/")
        || rel_path.contains("/tests/")
        || rel_path.starts_with("benches/")
        || rel_path.contains("/benches/")
    {
        FileKind::Test
    } else if rel_path.starts_with("examples/")
        || rel_path.contains("/examples/")
        || rel_path.starts_with("src/bin/")
        || rel_path.contains("/src/bin/")
    {
        FileKind::Harness
    } else {
        FileKind::Library
    };
    FileClass { crate_name, kind }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_the_workspace_layout() {
        assert_eq!(classify("src/lib.rs").kind, FileKind::Library);
        assert_eq!(classify("src/lib.rs").crate_name, "pnp");
        assert_eq!(classify("crates/core/src/pnp.rs").kind, FileKind::Library);
        assert_eq!(classify("crates/core/src/pnp.rs").crate_name, "core");
        assert_eq!(
            classify("crates/serve/src/bin/pnp_load.rs").kind,
            FileKind::Harness
        );
        assert_eq!(classify("examples/quickstart.rs").kind, FileKind::Harness);
        assert_eq!(
            classify("crates/gnn/benches/rgcn_forward.rs").kind,
            FileKind::Test
        );
        assert_eq!(classify("tests/store_roundtrip.rs").kind, FileKind::Test);
        assert_eq!(classify("src/bin/tool.rs").kind, FileKind::Harness);
        assert_eq!(classify("crates/store/tests/index.rs").kind, FileKind::Test);
    }
}
