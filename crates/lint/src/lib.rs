//! `pnp-lint`: the in-tree static-analysis pass (DESIGN.md §16).
//!
//! A dependency-free, token-level Rust scanner that enforces the three
//! invariant families this workspace's reproducibility claims rest on:
//!
//! * **determinism** — no NaN-unsafe float sorts, no iteration over
//!   `HashMap`/`HashSet` whose order can leak into results or serialized
//!   artifacts, no wall-clock reads (`Instant::now`, `SystemTime`) inside
//!   library crates;
//! * **panic-safety** — no `unwrap`/`expect`/`panic!`-family macros or bare
//!   slice indexing in library crates outside `#[cfg(test)]` code;
//! * **doc-contract** — every `DESIGN.md §N` / `ARCHITECTURE.md §N` citation
//!   in source comments resolves to a real section header, and every
//!   `EXPECTED_FAIL` entry cites a real DESIGN.md subsection.
//!
//! The scanner is deliberately token-level, not AST-based: the offline
//! stand-in policy (DESIGN.md §8) rules out `syn`, and the hazards above are
//! all expressible as short token patterns plus line-range context
//! (`#[cfg(test)]` spans, comment runs). The cost is a known, documented
//! set of approximations — see the per-rule notes in [`rules`].
//!
//! Findings are waived through two audited channels: inline
//! `// pnp-lint: allow(<rules>) — <reason>` comments ([`suppress`]) for
//! individual sites, and path-scoped entries in the committed
//! `pnp-lint.json` ([`config`]) for whole-crate policy. Both require a
//! reason, and both fail the run when stale, so the waiver set can only
//! shrink by accident, never grow.
//!
//! The `pnp_lint` binary wires this together: it walks `src/`, `crates/`,
//! `examples/`, and `tests/` under the workspace root and exits non-zero on
//! any unsuppressed violation. CI runs it in the `lint` job and publishes
//! the per-rule table from the JSON report.

pub mod catalogue;
pub mod classify;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;

pub use catalogue::DocCatalogue;
pub use classify::{classify, FileClass, FileKind};
pub use config::{AllowEntry, LintConfig, CONFIG_VERSION};
pub use engine::{FileOutcome, Linter};
pub use report::{Report, ReportedFinding, RuleStats, REPORT_SCHEMA_VERSION};
pub use rules::{Finding, RULES};
