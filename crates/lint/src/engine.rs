//! The lint driver: walk, lex, check, suppress, aggregate.
//!
//! [`Linter::lint_source`] is the single-file entry point the fixture tests
//! use; [`Linter::lint_root`] walks `src/`, `crates/`, `examples/`, and `tests/` under a
//! repository root (skipping `target/` and `vendor/` — the offline stand-ins
//! are not held to this workspace's guarantees) and produces the [`Report`]
//! the binary serializes.

use crate::catalogue::DocCatalogue;
use crate::classify::classify;
use crate::config::LintConfig;
use crate::lexer::lex;
use crate::report::{Report, ReportedFinding, RuleStats, REPORT_SCHEMA_VERSION};
use crate::rules::{check_file, FileView, Finding, RULES};
use crate::suppress;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A linter instance: policy + section catalogue.
pub struct Linter {
    config: LintConfig,
    catalogue: DocCatalogue,
}

/// Outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Findings that survived suppression (violations).
    pub violations: Vec<Finding>,
    /// (rule, count) waived by inline suppressions.
    pub suppressed: BTreeMap<String, u64>,
    /// (rule, count) waived by config entries, with the entry indices used.
    pub config_allowed: BTreeMap<String, u64>,
    /// Config entry indices that waived at least one finding here.
    pub config_entries_used: Vec<usize>,
}

impl Linter {
    /// Builds a linter from an already-validated config and catalogue.
    pub fn new(config: LintConfig, catalogue: DocCatalogue) -> Self {
        Linter { config, catalogue }
    }

    /// Lints one source string under a workspace-relative path (which
    /// drives classification and config matching).
    pub fn lint_source(&self, rel_path: &str, source: &str) -> FileOutcome {
        let tokens = lex(source);
        let class = classify(rel_path);
        let view = FileView::new(rel_path, class, &tokens);
        let mut findings = check_file(&view, &self.catalogue);

        let (suppressions, malformed) = suppress::extract(&tokens);
        // Malformed suppressions are violations in their own right.
        for bad in &malformed {
            findings.push(Finding {
                rule: "suppression",
                file: rel_path.to_string(),
                line: bad.line,
                message: bad.message.clone(),
            });
        }
        // Unknown rule names in otherwise well-formed suppressions too.
        for s in &suppressions {
            for r in &s.rules {
                if !RULES.contains(&r.as_str()) {
                    findings.push(Finding {
                        rule: "suppression",
                        file: rel_path.to_string(),
                        line: s.line,
                        message: format!(
                            "unknown rule `{r}` in suppression (known: {})",
                            RULES.join(", ")
                        ),
                    });
                }
            }
        }

        let mut outcome = FileOutcome::default();
        let mut suppression_used = vec![false; suppressions.len()];
        for f in findings {
            // `suppression` findings are hygiene checks and cannot
            // themselves be waived.
            if f.rule != "suppression" {
                let inline = suppressions.iter().position(|s| {
                    (s.line == f.line || s.line + 1 == f.line)
                        && s.rules.iter().any(|r| r == f.rule)
                });
                if let Some(i) = inline {
                    suppression_used[i] = true;
                    *outcome.suppressed.entry(f.rule.to_string()).or_insert(0) += 1;
                    continue;
                }
                let config = self
                    .config
                    .allow
                    .iter()
                    .position(|e| e.rule == f.rule && f.file.starts_with(&e.path));
                if let Some(i) = config {
                    if !outcome.config_entries_used.contains(&i) {
                        outcome.config_entries_used.push(i);
                    }
                    *outcome
                        .config_allowed
                        .entry(f.rule.to_string())
                        .or_insert(0) += 1;
                    continue;
                }
            }
            outcome.violations.push(f);
        }
        // A suppression that waived nothing is stale policy: fail it.
        for (i, s) in suppressions.iter().enumerate() {
            if !suppression_used[i] {
                outcome.violations.push(Finding {
                    rule: "suppression",
                    file: rel_path.to_string(),
                    line: s.line,
                    message: format!(
                        "unused suppression for ({}): it waives no finding — remove it",
                        s.rules.join(", ")
                    ),
                });
            }
        }
        outcome
    }

    /// Lints every workspace source file under `root` and aggregates the
    /// report. Stale config entries (waiving nothing anywhere) are reported
    /// as `suppression` violations against the config file itself.
    pub fn lint_root(&self, root: &Path) -> io::Result<Report> {
        let mut files = Vec::new();
        for top in ["src", "crates", "examples", "tests"] {
            let dir = root.join(top);
            if dir.is_dir() {
                collect_rs_files(&dir, &mut files)?;
            }
        }
        files.sort();

        fn stat<'m>(
            per_rule: &'m mut BTreeMap<String, RuleStats>,
            rule: &str,
        ) -> &'m mut RuleStats {
            per_rule
                .entry(rule.to_string())
                .or_insert_with(|| RuleStats {
                    rule: rule.to_string(),
                    violations: 0,
                    suppressed: 0,
                    config_allowed: 0,
                })
        }
        let mut violations: Vec<ReportedFinding> = Vec::new();
        let mut per_rule: BTreeMap<String, RuleStats> = BTreeMap::new();
        let mut config_used = vec![false; self.config.allow.len()];
        for path in &files {
            let source = fs::read_to_string(path)?;
            let rel = rel_path(root, path);
            let outcome = self.lint_source(&rel, &source);
            for f in &outcome.violations {
                stat(&mut per_rule, f.rule).violations += 1;
                violations.push(ReportedFinding {
                    rule: f.rule.to_string(),
                    file: f.file.clone(),
                    line: u64::from(f.line),
                    message: f.message.clone(),
                });
            }
            for (rule, n) in &outcome.suppressed {
                stat(&mut per_rule, rule).suppressed += n;
            }
            for (rule, n) in &outcome.config_allowed {
                stat(&mut per_rule, rule).config_allowed += n;
            }
            for &i in &outcome.config_entries_used {
                config_used[i] = true;
            }
        }
        for (i, used) in config_used.iter().enumerate() {
            if !used {
                let e = &self.config.allow[i];
                stat(&mut per_rule, "suppression").violations += 1;
                violations.push(ReportedFinding {
                    rule: "suppression".to_string(),
                    file: "pnp-lint.json".to_string(),
                    line: 0,
                    message: format!(
                        "stale config entry (path `{}`, rule `{}`): it waives no \
                         finding — remove it",
                        e.path, e.rule
                    ),
                });
            }
        }

        violations.sort_by(|a, b| {
            (&a.file, a.line, &a.rule)
                .cmp(&(&b.file, b.line, &b.rule))
                .then_with(|| a.message.cmp(&b.message))
        });
        // Registry order, active rules only.
        let rules: Vec<RuleStats> = RULES
            .iter()
            .filter_map(|r| per_rule.get(*r).cloned())
            .filter(|s| s.violations + s.suppressed + s.config_allowed > 0)
            .collect();
        let total = |f: fn(&RuleStats) -> u64| rules.iter().map(f).sum();
        Ok(Report {
            schema_version: REPORT_SCHEMA_VERSION,
            files_scanned: files.len() as u64,
            violations,
            total_violations: total(|r| r.violations),
            total_suppressed: total(|r| r.suppressed),
            total_config_allowed: total(|r| r.config_allowed),
            rules,
        })
    }
}

/// Recursively collects `.rs` files, skipping `target`, `vendor`, and
/// hidden directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
