//! The machine-readable lint report (`pnp_lint --format json`).
//!
//! The CI `lint` job publishes `rules[]` as a per-rule violation /
//! suppression / config-waiver table in `$GITHUB_STEP_SUMMARY`, and the
//! ROADMAP carries the waiver totals as a monotonically non-increasing
//! baseline — so the report exposes counts for *everything it waived*, not
//! just what it rejected.

use serde::{Deserialize, Serialize};

/// Report schema version (bump on incompatible layout change).
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// One unsuppressed violation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReportedFinding {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u64,
    /// Hazard description.
    pub message: String,
}

/// Per-rule outcome counts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RuleStats {
    /// Rule id.
    pub rule: String,
    /// Findings that survived both suppression channels.
    pub violations: u64,
    /// Findings waived by an inline `pnp-lint: allow(..)` comment.
    pub suppressed: u64,
    /// Findings waived by a `pnp-lint.json` allow entry.
    pub config_allowed: u64,
}

/// The whole run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    /// Equals [`REPORT_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
    /// Unsuppressed violations, sorted by (file, line, rule).
    pub violations: Vec<ReportedFinding>,
    /// Per-rule counts, in rule-registry order (only rules with activity).
    pub rules: Vec<RuleStats>,
    /// Sum of `violations` over `rules`.
    pub total_violations: u64,
    /// Sum of `suppressed` over `rules`.
    pub total_suppressed: u64,
    /// Sum of `config_allowed` over `rules`.
    pub total_config_allowed: u64,
}

impl Report {
    /// True when the tree passes under the active policy.
    pub fn clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Renders the human-readable verdict (violations first, then the
    /// per-rule table the CI summary mirrors).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                v.file, v.line, v.rule, v.message
            ));
        }
        if !self.violations.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "pnp-lint: {} file(s), {} violation(s), {} inline suppression(s), \
             {} config waiver(s)\n",
            self.files_scanned,
            self.total_violations,
            self.total_suppressed,
            self.total_config_allowed
        ));
        out.push_str("rule            violations  suppressed  config-allowed\n");
        for r in &self.rules {
            out.push_str(&format!(
                "{:<15} {:>10}  {:>10}  {:>14}\n",
                r.rule, r.violations, r.suppressed, r.config_allowed
            ));
        }
        out
    }
}
