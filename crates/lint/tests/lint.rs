//! Integration tests for the lint engine: lexer round-trips, per-rule
//! positive/negative fixtures, the two suppression channels, and the
//! workspace self-check that pins the zero-violation baseline (DESIGN.md
//! §16.4).
//!
//! Fixtures run through [`Linter::lint_source`] under synthetic
//! workspace-relative paths, so classification (library / harness / test)
//! is exercised exactly as on real files.

use pnp_lint::lexer::{lex, TokenKind};
use pnp_lint::{DocCatalogue, FileOutcome, LintConfig, Linter, RULES};

/// A hand-built catalogue: DESIGN sections 1 (subsection 1.1), 11
/// (subsection 11.1), and 13 (subsection 13.1); ARCHITECTURE sections 1
/// and 9. (Numbers spelled without the section sign on purpose — this
/// comment is itself linted against the *real* DESIGN.md.)
fn catalogue() -> DocCatalogue {
    DocCatalogue::from_markdown(
        "## §1 Overview\n**§1.1 Scope.** text\n\
         ## §11 Invariants\n**§11.1 One.** text\n\
         ## §13 OOD\n**§13.1 Gap.** text\n",
        "## 1. Layout\n## 9. Serving\n",
    )
}

fn lint(path: &str, source: &str) -> FileOutcome {
    Linter::new(LintConfig::empty(), catalogue()).lint_source(path, source)
}

fn rules_hit(outcome: &FileOutcome) -> Vec<&str> {
    outcome.violations.iter().map(|f| f.rule).collect()
}

const LIB: &str = "crates/foo/src/lib.rs";

// ---------------------------------------------------------------- lexer

#[test]
fn lexer_round_trips_token_content() {
    // Token text carries the *content* (delimiters stripped from strings
    // and comments); every construct must land in one token of the right
    // kind, and nothing may leak across delimiter boundaries.
    let src = r##"
fn main() {
    let s = "a string with // no comment";
    let r = r#"raw "quoted" text"#;
    let c = 'x';
    let lt: &'static str = s; // trailing comment
    /* block /* nested */ comment */
    let n = 0..42;
}
"##;
    let toks = lex(src);
    let one = |kind: TokenKind, content: &str| {
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == kind && t.text.contains(content))
                .count(),
            1,
            "expected one {kind:?} containing {content:?}"
        );
    };
    one(TokenKind::Str, "a string with // no comment");
    one(TokenKind::Str, r#"raw "quoted" text"#);
    one(TokenKind::Char, "x");
    one(TokenKind::Lifetime, "static");
    one(TokenKind::LineComment, "trailing comment");
    one(TokenKind::BlockComment, "block /* nested */ comment");
    one(TokenKind::Num, "42");
    // The string content must NOT have produced a comment token, and the
    // range `0..42` must not have lexed `.42` as a float.
    assert!(toks
        .iter()
        .filter(|t| t.is_comment())
        .all(|t| !t.text.contains("no comment")));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Num && t.text == "0"));
}

#[test]
fn lexer_line_numbers_are_one_based_and_accurate() {
    let toks = lex("a\nbb\n\nccc\n");
    let find = |txt: &str| toks.iter().find(|t| t.text == txt).unwrap().line;
    assert_eq!(find("a"), 1);
    assert_eq!(find("bb"), 2);
    assert_eq!(find("ccc"), 4);
}

#[test]
fn lexer_distinguishes_lifetimes_from_chars() {
    let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; }");
    assert_eq!(
        toks.iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count(),
        2
    );
    assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
}

// ------------------------------------------------------- determinism rules

#[test]
fn float_sort_fires_in_library_and_harness_but_not_tests() {
    let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
    assert_eq!(rules_hit(&lint(LIB, src)), ["float-sort", "unwrap"]);
    assert_eq!(rules_hit(&lint("examples/demo.rs", src)), ["float-sort"]);
    assert!(rules_hit(&lint("crates/foo/tests/t.rs", src)).is_empty());
}

#[test]
fn float_sort_does_not_fire_on_total_cmp() {
    let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
    assert!(rules_hit(&lint(LIB, src)).is_empty());
}

#[test]
fn hash_iter_fires_on_declared_maps_only() {
    let src = "use std::collections::HashMap;\n\
               struct S { m: HashMap<u32, u32>, v: Vec<u32> }\n\
               impl S {\n\
               fn f(&self) { for (k, v) in self.m.iter() { let _ = (k, v); } }\n\
               fn g(&self) { for x in self.v.iter() { let _ = x; } }\n\
               }\n";
    assert_eq!(rules_hit(&lint(LIB, src)), ["hash-iter"]);
}

#[test]
fn hash_iter_ignores_same_named_fields_of_other_structs() {
    // `other.m` is a field of a different struct that merely shares the
    // name `m` with a hash-typed local — its type is unknown, stay silent.
    let src = "use std::collections::HashMap;\n\
               struct S { m: HashMap<u32, u32> }\n\
               fn f(other: &Other) -> u32 { other.m.iter().sum() }\n";
    assert!(rules_hit(&lint(LIB, src)).is_empty());
}

#[test]
fn hash_serde_fires_on_serializable_hash_fields() {
    let src = "#[derive(Serialize)]\nstruct S { m: std::collections::HashMap<String, u32> }\n";
    assert_eq!(rules_hit(&lint(LIB, src)), ["hash-serde"]);
    let btree = "#[derive(Serialize)]\nstruct S { m: std::collections::BTreeMap<String, u32> }\n";
    assert!(rules_hit(&lint(LIB, btree)).is_empty());
}

#[test]
fn wall_clock_fires_in_library_but_not_harness() {
    let src = "fn f() -> std::time::Instant { Instant::now() }\n";
    assert_eq!(rules_hit(&lint(LIB, src)), ["wall-clock"]);
    assert!(rules_hit(&lint("src/bin/tool.rs", src)).is_empty());
    assert!(rules_hit(&lint("examples/demo.rs", src)).is_empty());
}

// ------------------------------------------------------- panic-safety rules

#[test]
fn panic_family_fires_in_library_code_only() {
    let src = "fn f(x: u32) -> u32 { if x > 3 { panic!(\"nope\") } else { todo!() } }\n";
    let out = lint(LIB, src);
    assert_eq!(rules_hit(&out), ["panic", "panic"]);
    assert!(rules_hit(&lint("examples/demo.rs", src)).is_empty());
}

#[test]
fn cfg_test_modules_are_exempt_from_panic_rules() {
    let src = "fn lib_fn() -> u32 { 1 }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn t() { assert_eq!(super::lib_fn(), vec![1][0]); vec![2][0]; Some(3).unwrap(); }\n\
               }\n";
    assert!(rules_hit(&lint(LIB, src)).is_empty());
}

#[test]
fn slice_index_fires_on_bare_indexing_but_not_attributes_or_types() {
    let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] }\n";
    assert_eq!(rules_hit(&lint(LIB, src)), ["slice-index"]);
    let ty = "fn g(v: [u32; 4]) -> Vec<[u32; 4]> { vec![v] }\n";
    assert!(rules_hit(&lint(LIB, ty)).is_empty());
    let attr = "#[cfg(feature = \"x\")]\nfn h() {}\n";
    assert!(rules_hit(&lint(LIB, attr)).is_empty());
}

#[test]
fn unwrap_and_expect_fire_but_unwrap_or_variants_do_not() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
               fn g(x: Option<u32>) -> u32 { x.expect(\"set\") }\n\
               fn h(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
               fn i(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n";
    assert_eq!(rules_hit(&lint(LIB, src)), ["unwrap", "unwrap"]);
}

// ---------------------------------------------------------- doc-contract

#[test]
fn design_refs_resolve_against_the_catalogue() {
    let good = "// The invariant is documented in DESIGN.md §11.1 and §13.\nfn f() {}\n";
    assert!(rules_hit(&lint(LIB, good)).is_empty());
    let bad = "// See DESIGN.md §99 for details.\nfn f() {}\n";
    assert_eq!(rules_hit(&lint(LIB, bad)), ["design-ref"]);
}

#[test]
fn architecture_refs_use_the_architecture_catalogue() {
    let good = "// Wire protocol: ARCHITECTURE.md §9.\nfn f() {}\n";
    assert!(rules_hit(&lint(LIB, good)).is_empty());
    let bad = "// Wire protocol: ARCHITECTURE.md §7.\nfn f() {}\n";
    assert_eq!(rules_hit(&lint(LIB, bad)), ["design-ref"]);
}

#[test]
fn roman_numeral_paper_citations_are_ignored() {
    let src = "// Mirrors the paper's Section III-D1 and §IV-B tables.\nfn f() {}\n";
    assert!(rules_hit(&lint(LIB, src)).is_empty());
}

#[test]
fn expected_fail_entries_need_a_dotted_design_citation() {
    let bare = "const EXPECTED_FAIL: &[ExpectedFailEntry] = &[\n\
                // Documented in DESIGN.md §13.\n\
                ExpectedFailEntry { id: \"x\", scope: SuiteScope::Any },\n\
                ];\n";
    assert_eq!(rules_hit(&lint(LIB, bare)), ["xfail-ref"]);
    let dotted = bare.replace("§13.", "§13.1.");
    assert!(rules_hit(&lint(LIB, &dotted)).is_empty());
}

// ----------------------------------------------------------- suppressions

#[test]
fn inline_suppression_waives_same_line_and_next_line_findings() {
    let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // pnp-lint: allow(unwrap) — bounded\n";
    let out = lint(LIB, same);
    assert!(out.violations.is_empty());
    assert_eq!(out.suppressed.get("unwrap"), Some(&1));

    let next = "fn f(x: Option<u32>) -> u32 {\n\
                // pnp-lint: allow(unwrap) — bounded\n\
                x.unwrap()\n}\n";
    assert!(lint(LIB, next).violations.is_empty());
}

#[test]
fn suppression_without_reason_is_a_violation() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               // pnp-lint: allow(unwrap)\n\
               x.unwrap()\n}\n";
    let out = lint(LIB, src);
    let hits = rules_hit(&out);
    // The malformed marker is reported AND the finding is not waived.
    assert!(hits.contains(&"suppression"));
    assert!(hits.contains(&"unwrap"));
}

#[test]
fn unused_suppression_is_a_violation() {
    let src = "// pnp-lint: allow(unwrap) — nothing here needs it\nfn f() {}\n";
    assert_eq!(rules_hit(&lint(LIB, src)), ["suppression"]);
}

#[test]
fn unknown_rule_in_suppression_is_a_violation() {
    let src = "// pnp-lint: allow(made-up-rule) — whatever\nfn f() {}\n";
    let out = lint(LIB, src);
    let hits = rules_hit(&out);
    assert!(hits.iter().all(|r| *r == "suppression"));
    assert!(!hits.is_empty());
}

#[test]
fn config_allow_waives_by_path_prefix() {
    let cfg = LintConfig::from_json(
        r#"{"version": 1, "allow": [
            {"path": "crates/foo/src/", "rule": "unwrap", "reason": "invariants hold"}
        ]}"#,
        RULES,
    )
    .unwrap();
    let linter = Linter::new(cfg, catalogue());
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let covered = linter.lint_source("crates/foo/src/lib.rs", src);
    assert!(covered.violations.is_empty());
    assert_eq!(covered.config_allowed.get("unwrap"), Some(&1));
    // A different crate is NOT covered by the entry.
    let uncovered = linter.lint_source("crates/bar/src/lib.rs", src);
    assert_eq!(rules_hit(&uncovered), ["unwrap"]);
}

#[test]
fn suppression_hygiene_findings_cannot_be_waived() {
    // A config entry for `suppression` parses, but the engine refuses to
    // apply it: hygiene findings always surface.
    let cfg = LintConfig::from_json(
        r#"{"version": 1, "allow": [
            {"path": "crates/foo/", "rule": "suppression", "reason": "trying to hide"}
        ]}"#,
        RULES,
    )
    .unwrap();
    let linter = Linter::new(cfg, catalogue());
    let src = "// pnp-lint: allow(unwrap) — nothing here needs it\nfn f() {}\n";
    let out = linter.lint_source("crates/foo/src/lib.rs", src);
    assert_eq!(rules_hit(&out), ["suppression"]);
}

// ------------------------------------------------------ workspace self-check

#[test]
fn workspace_is_clean_under_the_committed_policy() {
    // The zero-violation baseline of DESIGN.md §16.4: the committed tree
    // plus the committed pnp-lint.json must produce no violations. This is
    // the same invocation CI's lint job runs.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let config_json = std::fs::read_to_string(root.join("pnp-lint.json"))
        .expect("committed pnp-lint.json exists");
    let config = LintConfig::from_json(&config_json, RULES).expect("committed config is valid");
    let catalogue = DocCatalogue::from_root(&root).expect("DESIGN.md and ARCHITECTURE.md exist");
    let report = Linter::new(config, catalogue)
        .lint_root(&root)
        .expect("workspace scan succeeds");
    assert!(
        report.clean(),
        "committed tree must be lint-clean, got:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 100, "walker found the workspace");
}
