//! Quicksilver: Monte-Carlo particle transport proxy (Mercury surrogate).
//!
//! Particle histories have wildly different lengths (absorption vs. long
//! scattering chains), making the main tracking loop the most imbalanced
//! region in the suite.

use crate::builders::{fused_update_kernel, lookup_kernel, small_boundary_kernel};
use crate::region::Application;

/// The Quicksilver application (five regions).
pub fn app() -> Application {
    Application::new(
        "Quicksilver",
        vec![
            // Cycle tracking: the dominant, highly irregular particle loop.
            lookup_kernel(
                "Quicksilver_cycle_tracking",
                1_500_000,
                5.0e8,
                "segment_outcome",
                30,
                1.8,
            ),
            // Collision event processing.
            lookup_kernel(
                "Quicksilver_collision",
                700_000,
                2.0e8,
                "sample_collision",
                18,
                1.2,
            ),
            // Facet-crossing / tally updates.
            fused_update_kernel(
                "Quicksilver_tallies",
                500_000,
                3,
                4,
                Some(("tally_accum", 8)),
            ),
            // Population control (source/rr): medium-size cleanup passes.
            fused_update_kernel("Quicksilver_population", 300_000, 2, 3, None),
            // Per-cycle bookkeeping.
            small_boundary_kernel("Quicksilver_cycle_init", 5000, 4),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_openmp::ImbalanceShape;

    #[test]
    fn tracking_loop_is_the_most_imbalanced_region() {
        let app = app();
        assert_eq!(app.num_regions(), 5);
        let tracking = &app.regions[0];
        assert_eq!(
            tracking.profile.imbalance_shape,
            ImbalanceShape::RandomSpikes
        );
        assert!(tracking.profile.imbalance >= 1.5);
        assert!(app
            .regions
            .iter()
            .all(|r| r.profile.imbalance <= tracking.profile.imbalance));
    }
}
