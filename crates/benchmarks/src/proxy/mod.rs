//! The six proxy-/mini-applications of the paper's evaluation.

pub mod lulesh;
pub mod miniamr;
pub mod minife;
pub mod neutronics;
pub mod quicksilver;

use crate::region::Application;

/// All proxy applications, in the order the paper's figures list them.
pub fn apps() -> Vec<Application> {
    let mut v = Vec::new();
    v.extend(neutronics::apps()); // RSBench, XSBench
    v.push(minife::app());
    v.push(quicksilver::app());
    v.push(miniamr::app());
    v.push(lulesh::app());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_proxy_apps_with_thirty_two_regions() {
        let apps = apps();
        assert_eq!(apps.len(), 6);
        let regions: usize = apps.iter().map(|a| a.num_regions()).sum();
        assert_eq!(regions, 32);
    }

    #[test]
    fn lulesh_has_the_most_regions() {
        let apps = apps();
        let max = apps.iter().max_by_key(|a| a.num_regions()).unwrap();
        assert_eq!(max.name, "LULESH");
    }
}
