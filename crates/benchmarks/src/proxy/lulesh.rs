//! LULESH: the Livermore unstructured Lagrangian explicit shock
//! hydrodynamics proxy.
//!
//! LULESH contributes the largest number of OpenMP regions in the suite: a
//! mix of heavy per-element physics (force calculation, material EOS), medium
//! node-centred updates (acceleration/velocity/position integration), and
//! several very small boundary-condition fix-up loops. The
//! `ApplyAccelerationBoundaryConditionsForNodes` region is the motivating
//! example of Section I: it is so small that the default all-threads
//! configuration is dramatically slower than a few-thread configuration,
//! especially under a tight power cap.

use crate::builders::{
    fused_update_kernel, small_boundary_kernel, stencil2d_kernel, streaming_kernel,
};
use crate::region::Application;

/// Number of mesh elements in the modelled problem (≈ 90³ as in a typical
/// LULESH run).
const ELEMENTS: i64 = 729_000;
/// Number of mesh nodes (≈ 91³).
const NODES: i64 = 753_571;

/// The LULESH application (twelve regions).
pub fn app() -> Application {
    Application::new(
        "LULESH",
        vec![
            // Element-centred force calculation: the heaviest physics kernel.
            fused_update_kernel(
                "LULESH_CalcElemForce",
                ELEMENTS,
                6,
                12,
                Some(("elem_stress", 40)),
            ),
            // Hourglass-control force contribution: stencil-like neighbour access.
            stencil2d_kernel("LULESH_CalcHourglassForce", 900, 810, 8),
            // Node-centred integration chain.
            fused_update_kernel("LULESH_CalcAccelForNodes", NODES, 2, 2, None),
            fused_update_kernel("LULESH_CalcVelocityForNodes", NODES, 3, 3, None),
            fused_update_kernel("LULESH_CalcPositionForNodes", NODES, 2, 2, None),
            // Kinematics and monotonic-q gradient evaluation on elements.
            fused_update_kernel(
                "LULESH_CalcKinematics",
                ELEMENTS,
                5,
                8,
                Some(("shape_fn", 24)),
            ),
            fused_update_kernel("LULESH_CalcMonotonicQGradient", ELEMENTS, 4, 6, None),
            // Equation-of-state / sound-speed updates per material region.
            fused_update_kernel(
                "LULESH_EvalEOS",
                ELEMENTS / 2,
                4,
                10,
                Some(("eos_pressure", 32)),
            ),
            fused_update_kernel("LULESH_CalcSoundSpeed", ELEMENTS / 2, 2, 4, None),
            // Courant/hydro time-step constraint reductions.
            streaming_kernel("LULESH_CalcTimeConstraints", ELEMENTS, 2, 3.0),
            // Boundary-condition fix-ups: tiny loops over the symmetry planes
            // (~91² nodes). The first is the paper's motivating example.
            small_boundary_kernel("LULESH_ApplyAccelBoundary", 8_281, 2),
            small_boundary_kernel("LULESH_ApplySymmetryBoundary", 8_281, 3),
        ],
    )
}

/// The region name of the paper's motivating example
/// (`ApplyAccelerationBoundaryConditionsForNodes`).
pub const MOTIVATING_REGION: &str = "LULESH_ApplyAccelBoundary";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lulesh_has_twelve_regions_spanning_three_orders_of_magnitude() {
        let app = app();
        assert_eq!(app.num_regions(), 12);
        let min_iters = app
            .regions
            .iter()
            .map(|r| r.profile.iterations)
            .min()
            .unwrap();
        let max_iters = app
            .regions
            .iter()
            .map(|r| r.profile.iterations)
            .max()
            .unwrap();
        assert!(max_iters / min_iters > 50, "{max_iters} vs {min_iters}");
    }

    #[test]
    fn motivating_region_exists_and_is_tiny() {
        let app = app();
        let region = app
            .regions
            .iter()
            .find(|r| r.name() == MOTIVATING_REGION)
            .expect("motivating region present");
        assert!(region.profile.iterations < 10_000);
        assert!(region.profile.flops_per_iter < 20.0);
    }
}
