//! XSBench and RSBench: Monte-Carlo neutron cross-section lookup proxies.
//!
//! Both are dominated by data-dependent table lookups over very large energy
//! grids — latency-bound, branchy, and irregular. RSBench replaces the table
//! walk with on-the-fly multipole evaluation, trading memory pressure for
//! extra floating-point work.

use crate::builders::lookup_kernel;
use crate::region::Application;

/// RSBench and XSBench.
pub fn apps() -> Vec<Application> {
    vec![
        Application::new(
            "RSBench",
            vec![
                // Multipole cross-section evaluation: more math per lookup.
                lookup_kernel(
                    "RSBench_xs_eval",
                    1_700_000,
                    6.0e8,
                    "multipole_eval",
                    24,
                    0.8,
                ),
                // Sampling/tally pass.
                lookup_kernel("RSBench_tally", 900_000, 2.5e8, "tally_update", 10, 0.6),
            ],
        ),
        Application::new(
            "XSBench",
            vec![
                // Macroscopic cross-section lookup: binary search over the
                // unionized energy grid (huge, latency-bound).
                lookup_kernel("XSBench_macro_xs", 2_000_000, 1.2e9, "grid_search", 14, 1.0),
                // Per-nuclide micro cross-section accumulation.
                lookup_kernel(
                    "XSBench_micro_xs",
                    1_400_000,
                    4.0e8,
                    "interpolate_xs",
                    8,
                    0.7,
                ),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_machine::cache::AccessPattern;

    #[test]
    fn both_apps_are_irregular_and_large_footprint() {
        for app in apps() {
            for r in &app.regions {
                assert_eq!(r.profile.access_pattern, AccessPattern::Irregular);
                assert!(r.profile.working_set_bytes > 1.0e8);
                assert!(r.profile.branch_mispredict_rate > 0.05);
            }
        }
    }

    #[test]
    fn two_apps_four_regions() {
        let apps = apps();
        assert_eq!(apps.len(), 2);
        assert_eq!(apps.iter().map(|a| a.num_regions()).sum::<usize>(), 4);
    }
}
