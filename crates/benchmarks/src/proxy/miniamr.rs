//! miniAMR: adaptive mesh refinement proxy.
//!
//! Work is organized as sweeps over blocks whose cost depends on the (data-
//! dependent) refinement level, plus cheap ghost-exchange bookkeeping
//! regions — a mix of irregular block sweeps and tiny fix-up loops.

use crate::builders::{amr_block_kernel, small_boundary_kernel, stencil2d_kernel};
use crate::region::Application;

/// The miniAMR application (six regions).
pub fn app() -> Application {
    Application::new(
        "miniAMR",
        vec![
            // Main stencil sweep over all blocks (refined blocks cost more).
            amr_block_kernel("miniAMR_stencil_sweep", 6000, 512, 1.4),
            // Refinement-flagging pass.
            amr_block_kernel("miniAMR_refine_flags", 6000, 128, 1.0),
            // Checksum / reduction over blocks.
            amr_block_kernel("miniAMR_checksum", 6000, 64, 0.6),
            // Regular structured stencil inside uniformly refined patches.
            stencil2d_kernel("miniAMR_patch_stencil", 1500, 1500, 7),
            // Ghost-cell exchange bookkeeping: tiny loops.
            small_boundary_kernel("miniAMR_ghost_pack", 3000, 2),
            small_boundary_kernel("miniAMR_ghost_unpack", 3000, 2),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_openmp::ImbalanceShape;

    #[test]
    fn miniamr_mixes_irregular_and_tiny_regions() {
        let app = app();
        assert_eq!(app.num_regions(), 6);
        let sweep = &app.regions[0];
        assert_eq!(sweep.profile.imbalance_shape, ImbalanceShape::RandomSpikes);
        assert!(sweep.profile.imbalance > 1.0);
        let ghost = &app.regions[4];
        assert!(ghost.profile.iterations <= 3000);
    }
}
