//! miniFE: an implicit finite-element proxy (sparse CG solve).
//!
//! The OpenMP regions are the conjugate-gradient building blocks: sparse
//! matrix–vector products, dot products, vector updates, and the matrix
//! assembly pass.

use crate::builders::{fused_update_kernel, matvec_kernel, streaming_kernel};
use crate::region::Application;

/// The miniFE application (five regions).
pub fn app() -> Application {
    Application::new(
        "miniFE",
        vec![
            // Sparse matrix-vector product — the CG hot spot, bandwidth bound.
            matvec_kernel("miniFE_spmv", 1_100_000, 27, false),
            // waxpby vector updates (two flavours).
            streaming_kernel("miniFE_waxpby_1", 1_100_000, 2, 2.0),
            streaming_kernel("miniFE_waxpby_2", 1_100_000, 3, 1.0),
            // Dot product (reduction).
            streaming_kernel("miniFE_dot", 1_100_000, 2, 1.0),
            // Element-operator assembly: denser per-element arithmetic through
            // a diffusion-operator helper.
            fused_update_kernel("miniFE_assembly", 400_000, 4, 8, Some(("diffusion_op", 20))),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minife_has_five_regions_and_is_mostly_memory_bound() {
        let app = app();
        assert_eq!(app.num_regions(), 5);
        let spmv = &app.regions[0];
        let ai = spmv.profile.flops_per_iter / spmv.profile.bytes_per_iter;
        assert!(ai < 1.0, "spmv should be memory bound (AI {ai})");
        let assembly = app.regions.last().unwrap();
        let ai_a = assembly.profile.flops_per_iter / assembly.profile.bytes_per_iter;
        assert!(ai_a > ai, "assembly is denser than spmv");
    }
}
