//! PolyBench data-mining kernels.

use crate::builders::{column_stats_kernel, matmul_kernel};
use crate::region::Application;

/// The two data-mining applications. Both compute per-column statistics and
/// then a (triangular) pairwise matrix; correlation additionally normalizes
/// by standard deviations (the sqrt pass).
pub fn apps() -> Vec<Application> {
    vec![
        Application::new(
            "correlation",
            vec![
                column_stats_kernel("correlation_r0", 1400, 1200, true),
                matmul_kernel("correlation_r1", 1200, 1200, 1400),
            ],
        ),
        Application::new(
            "covariance",
            vec![
                column_stats_kernel("covariance_r0", 1500, 1300, false),
                matmul_kernel("covariance_r1", 1300, 1300, 1500),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_apps_four_regions() {
        let apps = apps();
        assert_eq!(apps.len(), 2);
        assert_eq!(apps.iter().map(|a| a.num_regions()).sum::<usize>(), 4);
    }

    #[test]
    fn correlation_stats_pass_uses_sqrt() {
        // The sqrt shows up as call.sqrt instruction nodes in the code graph.
        let apps = apps();
        let corr = apps.iter().find(|a| a.name == "correlation").unwrap();
        let graphs = corr.region_graphs();
        let (_, g0) = &graphs[0];
        assert!(g0.nodes.iter().any(|n| n.text.starts_with("call.sqrt")));
    }
}
