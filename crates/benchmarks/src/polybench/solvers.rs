//! PolyBench linear solvers and decompositions.

use crate::builders::{matvec_kernel, triangular_kernel};
use crate::region::{Application, BenchRegion};

/// Marks a region as poorly scalable (short dependent loops): caps its useful
/// parallelism and attributes part of the work to a serial prefix.
fn poorly_scalable(mut r: BenchRegion, limit: usize, serial_fraction: f64) -> BenchRegion {
    r.profile.scalability_limit = limit;
    r.profile.serial_fraction = serial_fraction;
    r
}

/// The five solver/decomposition applications.
pub fn apps() -> Vec<Application> {
    vec![
        // Cholesky factorization: triangular update sweep with a sqrt on the
        // diagonal.
        Application::new(
            "cholesky",
            vec![triangular_kernel("cholesky_r0", 1300, 1, true)],
        ),
        // LU decomposition: same triangular structure, no sqrt, more updates.
        Application::new("lu", vec![triangular_kernel("lu_r0", 1400, 2, false)]),
        // Durbin recursion (Toeplitz solver): short dependent vector sweeps —
        // very limited parallelism.
        Application::new(
            "durbin",
            vec![poorly_scalable(
                matvec_kernel("durbin_r0", 1200, 600, false),
                8,
                0.15,
            )],
        ),
        // Triangular solve: tiny dependent rows; the paper highlights it as an
        // outlier whose best configuration uses a single thread.
        Application::new(
            "trisolv",
            vec![poorly_scalable(
                triangular_kernel("trisolv_r0", 380, 0, false),
                2,
                0.35,
            )],
        ),
        // Gram–Schmidt orthogonalization: a norm/scale pass and a projection
        // update pass with growing inner trip counts.
        Application::new(
            "gramschmidt",
            vec![
                triangular_kernel("gramschmidt_r0", 1000, 1, true),
                matvec_kernel("gramschmidt_r1", 1000, 1100, true),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_openmp::ImbalanceShape;

    #[test]
    fn five_apps_six_regions() {
        let apps = apps();
        assert_eq!(apps.len(), 5);
        assert_eq!(apps.iter().map(|a| a.num_regions()).sum::<usize>(), 6);
    }

    #[test]
    fn factorizations_are_imbalanced_and_trisolv_is_serial_ish() {
        let apps = apps();
        let cholesky = &apps.iter().find(|a| a.name == "cholesky").unwrap().regions[0];
        assert_eq!(cholesky.profile.imbalance_shape, ImbalanceShape::Ramp);
        let trisolv = &apps.iter().find(|a| a.name == "trisolv").unwrap().regions[0];
        assert!(trisolv.profile.scalability_limit <= 2);
        assert!(trisolv.profile.serial_fraction > 0.2);
    }
}
