//! PolyBench stencil kernels.

use crate::builders::{stencil2d_kernel, streaming_kernel};
use crate::region::{Application, BenchRegion};

/// Seidel has a loop-carried dependence along both dimensions; its wavefront
/// parallelism is limited.
fn wavefront_limited(mut r: BenchRegion, limit: usize) -> BenchRegion {
    r.profile.scalability_limit = limit;
    r
}

/// The five stencil applications.
pub fn apps() -> Vec<Application> {
    vec![
        // Jacobi 2-D: two sweeps (A→B, B→A) per time step.
        Application::new(
            "jacobi-2d",
            vec![
                stencil2d_kernel("jacobi_2d_r0", 2800, 2800, 5),
                stencil2d_kernel("jacobi_2d_r1", 2800, 2800, 5),
            ],
        ),
        // Gauss–Seidel 2-D: in-place 9-point sweep with carried dependences.
        Application::new(
            "seidel-2d",
            vec![wavefront_limited(
                stencil2d_kernel("seidel_2d_r0", 2000, 2000, 9),
                16,
            )],
        ),
        // FDTD 2-D: separate field-update sweeps for E and H fields.
        Application::new(
            "fdtd-2d",
            vec![
                stencil2d_kernel("fdtd_2d_r0", 2000, 2600, 3),
                stencil2d_kernel("fdtd_2d_r1", 2600, 2000, 4),
            ],
        ),
        // FDTD with anisotropic perfectly matched layers: heavier per-point
        // update than plain FDTD.
        Application::new(
            "fdtd-apml",
            vec![stencil2d_kernel("fdtd_apml_r0", 1200, 1200, 9)],
        ),
        // Alternating direction implicit solver: row sweeps plus a
        // column-order sweep that streams through memory with large stride.
        Application::new(
            "adi",
            vec![
                stencil2d_kernel("adi_r0", 1800, 1800, 3),
                streaming_kernel("adi_r1", 3_000_000, 3, 2.0),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_machine::cache::AccessPattern;

    #[test]
    fn five_apps_eight_regions() {
        let apps = apps();
        assert_eq!(apps.len(), 5);
        assert_eq!(apps.iter().map(|a| a.num_regions()).sum::<usize>(), 8);
    }

    #[test]
    fn stencils_are_stencil_pattern_and_seidel_is_limited() {
        let apps = apps();
        let jacobi = &apps.iter().find(|a| a.name == "jacobi-2d").unwrap().regions[0];
        assert_eq!(jacobi.profile.access_pattern, AccessPattern::Stencil);
        let seidel = &apps.iter().find(|a| a.name == "seidel-2d").unwrap().regions[0];
        assert!(seidel.profile.scalability_limit <= 16);
    }
}
