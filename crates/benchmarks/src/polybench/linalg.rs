//! PolyBench dense linear-algebra kernels (BLAS-like and kernels categories).

use crate::builders::{matmul_kernel, matvec_kernel, streaming_kernel, triangular_kernel};
use crate::region::Application;

/// The twelve linear-algebra applications.
pub fn apps() -> Vec<Application> {
    vec![
        // C = beta·C + alpha·A·B — the canonical compute-bound kernel.
        Application::new("gemm", vec![matmul_kernel("gemm_r0", 900, 900, 1000)]),
        // Two chained matrix products: tmp = A·B, D = tmp·C.
        Application::new(
            "2mm",
            vec![
                matmul_kernel("2mm_r0", 800, 900, 1000),
                matmul_kernel("2mm_r1", 800, 1100, 900),
            ],
        ),
        // Symmetric rank-k update: only the lower triangle is touched.
        Application::new("syrk", vec![triangular_kernel("syrk_r0", 1100, 2, false)]),
        // Symmetric rank-2k update.
        Application::new("syr2k", vec![triangular_kernel("syr2k_r0", 1000, 3, false)]),
        // Triangular matrix multiply.
        Application::new("trmm", vec![triangular_kernel("trmm_r0", 900, 1, false)]),
        // Symmetric matrix multiply.
        Application::new("symm", vec![matmul_kernel("symm_r0", 800, 800, 800)]),
        // Vector generalizations: A = A + u1·v1ᵀ + u2·v2ᵀ; x = β·Aᵀ·y; w = α·A·x.
        Application::new(
            "gemver",
            vec![
                streaming_kernel("gemver_r0", 2_000_000, 4, 2.0),
                matvec_kernel("gemver_r1", 4000, 4000, false),
                matvec_kernel("gemver_r2", 4000, 4000, true),
            ],
        ),
        // y = α·A·x + β·B·x — two matrix–vector products fused.
        Application::new(
            "gesummv",
            vec![matvec_kernel("gesummv_r0", 2800, 2800, false)],
        ),
        // tmp = A·x ; y = Aᵀ·tmp.
        Application::new(
            "atax",
            vec![
                matvec_kernel("atax_r0", 3600, 4200, false),
                matvec_kernel("atax_r1", 4200, 3600, true),
            ],
        ),
        // s = Aᵀ·r ; q = A·p.
        Application::new(
            "bicg",
            vec![
                matvec_kernel("bicg_r0", 3900, 4100, true),
                matvec_kernel("bicg_r1", 4100, 3900, false),
            ],
        ),
        // x1 = x1 + A·y1 ; x2 = x2 + Aᵀ·y2.
        Application::new(
            "mvt",
            vec![
                matvec_kernel("mvt_r0", 4000, 4000, false),
                matvec_kernel("mvt_r1", 4000, 4000, true),
            ],
        ),
        // Multi-resolution analysis kernel: batched small matrix products.
        Application::new("doitgen", vec![matmul_kernel("doitgen_r0", 256, 256, 270)]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_apps_with_expected_region_counts() {
        let apps = apps();
        assert_eq!(apps.len(), 12);
        let regions: usize = apps.iter().map(|a| a.num_regions()).sum();
        assert_eq!(regions, 18);
    }

    #[test]
    fn gemm_is_compute_bound_and_gemver_first_region_is_memory_bound() {
        use pnp_machine::cache::AccessPattern;
        let apps = apps();
        let gemm = &apps.iter().find(|a| a.name == "gemm").unwrap().regions[0];
        let gemver = &apps.iter().find(|a| a.name == "gemver").unwrap().regions[0];
        assert_eq!(gemm.profile.access_pattern, AccessPattern::HighReuse);
        assert_eq!(gemver.profile.access_pattern, AccessPattern::Streaming);
        assert!(gemm.profile.flops_per_iter > 1000.0 * gemver.profile.flops_per_iter);
    }
}
