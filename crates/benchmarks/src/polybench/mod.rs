//! The 24 PolyBench kernels used in the paper's evaluation, grouped the same
//! way the PolyBench suite groups them.

pub mod datamining;
pub mod linalg;
pub mod solvers;
pub mod stencils;

use crate::region::Application;

/// All PolyBench applications, in the order they appear in the paper's
/// figures (grouped by category).
pub fn apps() -> Vec<Application> {
    let mut v = Vec::new();
    v.extend(stencils::apps());
    v.extend(linalg::apps());
    v.extend(solvers::apps());
    v.extend(datamining::apps());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_four_polybench_applications() {
        let apps = apps();
        assert_eq!(apps.len(), 24);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24, "application names must be unique");
    }

    #[test]
    fn every_region_name_is_prefixed_by_its_app() {
        for app in apps() {
            for r in &app.regions {
                assert!(
                    r.name().starts_with(&app.name.replace('-', "_")),
                    "region {} should be prefixed by app {}",
                    r.name(),
                    app.name
                );
            }
        }
    }
}
