//! # pnp-benchmarks
//!
//! The benchmark suite of the paper's evaluation: 30 applications with 68
//! OpenMP parallel regions in total —
//!
//! * 24 PolyBench kernels (dense linear algebra, solvers, data mining,
//!   stencils), and
//! * 6 proxy/mini applications: XSBench, RSBench, miniFE, miniAMR,
//!   Quicksilver, and LULESH.
//!
//! Each region is described twice, from the *same* source structure:
//!
//! 1. a [`pnp_ir::RegionSource`] kernel-DSL program — compiled to IR and then
//!    to a flow-aware code graph (the model's static features), and
//! 2. a [`pnp_openmp::RegionProfile`] workload profile — *derived from that
//!    DSL* by the static analyzer in [`analysis`], plus per-kernel traits
//!    that static analysis cannot see (data-dependent irregularity, serial
//!    fractions). The profile drives the execution simulator.
//!
//! Deriving the profile from the code keeps the learning task honest: the
//! graph the GNN sees and the behaviour the simulator produces are two views
//! of the same kernel, exactly as in the real system.

pub mod analysis;
pub mod builders;
pub mod polybench;
pub mod proxy;
pub mod region;
pub mod suite;
pub mod synthetic;

pub use analysis::{derive_profile, KernelTraits, ProblemSizes};
pub use region::{Application, BenchRegion};
pub use suite::{full_suite, suite_stats, SuiteStats};
pub use synthetic::synthetic_suite;
