//! Static analysis of kernel DSL sources.
//!
//! [`derive_profile`] walks a [`RegionSource`] and derives the workload
//! profile the execution simulator needs: per-iteration operation counts,
//! memory traffic, footprint, branching, and load-imbalance structure. The
//! analysis multiplies body costs through nested loop trip counts (using the
//! numeric [`ProblemSizes`] binding of the symbolic size parameters) and
//! recognizes triangular loops as the source of ramp-shaped imbalance.
//!
//! Characteristics that are invisible statically — data-dependent access
//! irregularity, serial fractions, branch-misprediction rates — are supplied
//! by [`KernelTraits`], mirroring how the paper's authors know which proxy
//! apps are table-lookup bound or Monte-Carlo irregular.

use pnp_ir::dsl::{Expr, LoopBound, RegionSource, Stmt};
use pnp_machine::cache::AccessPattern;
use pnp_openmp::{ImbalanceShape, RegionProfile};
use std::collections::HashMap;

/// Numeric bindings for the symbolic problem-size parameters (`N`, `M`, …).
#[derive(Clone, Debug, Default)]
pub struct ProblemSizes {
    values: HashMap<String, i64>,
}

impl ProblemSizes {
    /// Creates an empty binding set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds one parameter (builder style).
    pub fn with(mut self, name: &str, value: i64) -> Self {
        self.values.insert(name.to_string(), value);
        self
    }

    /// The value of a parameter (defaults to 1000 when unbound, so partially
    /// specified kernels still analyze).
    pub fn get(&self, name: &str) -> i64 {
        *self.values.get(name).unwrap_or(&1000)
    }
}

/// Kernel characteristics that static analysis cannot recover.
#[derive(Clone, Debug)]
pub struct KernelTraits {
    /// Overrides the inferred access pattern.
    pub access_pattern: Option<AccessPattern>,
    /// Overrides the inferred imbalance `(shape, magnitude)`.
    pub imbalance: Option<(ImbalanceShape, f64)>,
    /// Fraction of inherently serial work in the region.
    pub serial_fraction: f64,
    /// Branch misprediction rate.
    pub branch_mispredict_rate: f64,
    /// Maximum useful parallelism.
    pub scalability_limit: usize,
    /// Overrides the footprint-derived working set (bytes).
    pub working_set_override: Option<f64>,
}

impl Default for KernelTraits {
    fn default() -> Self {
        KernelTraits {
            access_pattern: None,
            imbalance: None,
            serial_fraction: 0.0,
            branch_mispredict_rate: 0.02,
            scalability_limit: usize::MAX,
            working_set_override: None,
        }
    }
}

/// Per-outer-iteration operation counts accumulated by the walker.
#[derive(Clone, Copy, Debug, Default)]
struct BodyCounts {
    flops: f64,
    int_ops: f64,
    loads: f64,
    stores: f64,
    branches: f64,
    helper_calls: f64,
    max_loop_depth: usize,
    has_triangular_loop: bool,
    has_conditional: bool,
}

fn count_expr(expr: &Expr, counts: &mut BodyCounts, scale: f64) {
    match expr {
        Expr::Const(_) | Expr::IntConst(_) | Expr::Scalar(_) | Expr::LoopVar(_) => {}
        Expr::Load(aref) => {
            counts.loads += scale;
            // index arithmetic
            counts.int_ops += scale * aref.indices.len() as f64;
        }
        Expr::Binary(_, l, r) => {
            counts.flops += scale;
            count_expr(l, counts, scale);
            count_expr(r, counts, scale);
        }
        Expr::Neg(e) => {
            counts.flops += scale;
            count_expr(e, counts, scale);
        }
        Expr::Math(_, args) => {
            // transcendental ≈ 10 flops
            counts.flops += 10.0 * scale;
            for a in args {
                count_expr(a, counts, scale);
            }
        }
        Expr::CallHelper(_, args) => {
            counts.helper_calls += scale;
            // a helper body is a short chain of fp ops
            counts.flops += 6.0 * scale;
            for a in args {
                count_expr(a, counts, scale);
            }
        }
    }
}

fn trip_count(bound: &LoopBound, sizes: &ProblemSizes, loop_trips: &HashMap<String, f64>) -> f64 {
    match bound {
        LoopBound::Const(c) => *c as f64,
        LoopBound::Param(p) => sizes.get(p) as f64,
        // Triangular: on average half of the referenced loop's trip count.
        LoopBound::Var(v) => loop_trips.get(v).copied().unwrap_or(1000.0) / 2.0,
        LoopBound::VarPlus(v, k) => loop_trips.get(v).copied().unwrap_or(1000.0) / 2.0 + *k as f64,
    }
}

fn count_stmts(
    stmts: &[Stmt],
    sizes: &ProblemSizes,
    loop_trips: &mut HashMap<String, f64>,
    counts: &mut BodyCounts,
    scale: f64,
    depth: usize,
) {
    counts.max_loop_depth = counts.max_loop_depth.max(depth);
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, value } => {
                counts.stores += scale;
                counts.int_ops += scale * target.indices.len() as f64;
                count_expr(value, counts, scale);
            }
            Stmt::Accumulate { target, value, .. } => {
                counts.loads += scale;
                counts.stores += scale;
                counts.flops += scale;
                counts.int_ops += scale * target.indices.len() as f64;
                count_expr(value, counts, scale);
            }
            Stmt::ScalarAssign { value, .. } => count_expr(value, counts, scale),
            Stmt::ScalarAccumulate { value, .. } => {
                counts.flops += scale;
                count_expr(value, counts, scale);
            }
            Stmt::If {
                lhs,
                rhs,
                then_body,
                else_body,
                ..
            } => {
                counts.branches += scale;
                counts.has_conditional = true;
                count_expr(lhs, counts, scale);
                count_expr(rhs, counts, scale);
                // Both sides taken half the time on average.
                count_stmts(then_body, sizes, loop_trips, counts, scale * 0.5, depth);
                count_stmts(else_body, sizes, loop_trips, counts, scale * 0.5, depth);
            }
            Stmt::Loop(inner) => {
                if matches!(inner.bound, LoopBound::Var(_) | LoopBound::VarPlus(..)) {
                    counts.has_triangular_loop = true;
                }
                let trips = trip_count(&inner.bound, sizes, loop_trips).max(1.0);
                counts.branches += scale * trips; // loop back-edge branches
                loop_trips.insert(inner.var.clone(), trips);
                count_stmts(
                    &inner.body,
                    sizes,
                    loop_trips,
                    counts,
                    scale * trips,
                    depth + 1,
                );
                loop_trips.remove(&inner.var);
            }
            Stmt::CallStmt { args, .. } => {
                counts.helper_calls += scale;
                counts.flops += 6.0 * scale;
                for a in args {
                    count_expr(a, counts, scale);
                }
            }
        }
    }
}

fn infer_access_pattern(source: &RegionSource, counts: &BodyCounts) -> AccessPattern {
    if counts.helper_calls > 0.0 && counts.has_conditional {
        return AccessPattern::Irregular;
    }
    let max_dims = source
        .arrays
        .iter()
        .map(|a| a.dims.len())
        .max()
        .unwrap_or(1);
    match (max_dims, counts.max_loop_depth) {
        (1, 1) => AccessPattern::Streaming,
        (1, _) => AccessPattern::Stencil,
        (_, d) if d >= 3 => AccessPattern::HighReuse,
        _ => AccessPattern::Stencil,
    }
}

/// Total declared array footprint in bytes.
fn footprint_bytes(source: &RegionSource, sizes: &ProblemSizes) -> f64 {
    source
        .arrays
        .iter()
        .map(|a| {
            let elems: f64 = a.dims.iter().map(|d| sizes.get(d) as f64).product();
            elems * 8.0
        })
        .sum()
}

/// Derives the workload profile of a region from its DSL source.
pub fn derive_profile(
    source: &RegionSource,
    sizes: &ProblemSizes,
    traits: &KernelTraits,
) -> RegionProfile {
    let outer = &source.parallel_loop;
    let iterations = trip_count(&outer.bound, sizes, &HashMap::new()).max(1.0) as usize;

    let mut loop_trips = HashMap::new();
    loop_trips.insert(outer.var.clone(), iterations as f64);
    let mut counts = BodyCounts::default();
    count_stmts(&outer.body, sizes, &mut loop_trips, &mut counts, 1.0, 1);

    let mem_ops = counts.loads + counts.stores;
    let instructions_per_iter =
        counts.flops + counts.int_ops + 1.5 * mem_ops + 2.0 * counts.branches + 8.0;

    let (imbalance_shape, imbalance) = traits.imbalance.unwrap_or(if counts.has_triangular_loop {
        (ImbalanceShape::Ramp, 1.0)
    } else {
        (ImbalanceShape::Uniform, 0.0)
    });

    let access_pattern = traits
        .access_pattern
        .unwrap_or_else(|| infer_access_pattern(source, &counts));

    let working_set_bytes = traits
        .working_set_override
        .unwrap_or_else(|| footprint_bytes(source, sizes));

    RegionProfile {
        name: source.name.clone(),
        iterations,
        flops_per_iter: counts.flops.max(1.0),
        instructions_per_iter: instructions_per_iter.max(4.0),
        bytes_per_iter: (mem_ops * 8.0).max(8.0),
        working_set_bytes: working_set_bytes.max(1024.0),
        access_pattern,
        branches_per_iter: counts.branches.max(1.0),
        branch_mispredict_rate: traits.branch_mispredict_rate,
        imbalance,
        imbalance_shape,
        serial_fraction: traits.serial_fraction,
        scalability_limit: traits.scalability_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_ir::dsl::*;

    fn gemm_source(name: &str) -> RegionSource {
        let inner_k = LoopNest::new(
            "k",
            LoopBound::Param("NK".into()),
            vec![Stmt::Accumulate {
                target: ArrayRef::d2("C", IndexExpr::var("i"), IndexExpr::var("j")),
                op: BinOp::Add,
                value: Expr::mul(
                    Expr::load2("A", IndexExpr::var("i"), IndexExpr::var("k")),
                    Expr::load2("B", IndexExpr::var("k"), IndexExpr::var("j")),
                ),
            }],
        );
        RegionSource {
            name: name.into(),
            pragma: OmpPragma::default(),
            arrays: vec![
                ArrayDecl::d2("A", "NI", "NK"),
                ArrayDecl::d2("B", "NK", "NJ"),
                ArrayDecl::d2("C", "NI", "NJ"),
            ],
            scalars: vec![],
            size_params: vec!["NI".into(), "NJ".into(), "NK".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("NI".into()),
                vec![Stmt::Loop(LoopNest::new(
                    "j",
                    LoopBound::Param("NJ".into()),
                    vec![Stmt::Loop(inner_k)],
                ))],
            ),
        }
    }

    fn triangular_source(name: &str) -> RegionSource {
        RegionSource {
            name: name.into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d2("A", "N", "N")],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Loop(LoopNest::new(
                    "j",
                    LoopBound::Var("i".into()),
                    vec![Stmt::Accumulate {
                        target: ArrayRef::d2("A", IndexExpr::var("i"), IndexExpr::var("j")),
                        op: BinOp::Add,
                        value: Expr::Const(1.0),
                    }],
                ))],
            ),
        }
    }

    #[test]
    fn gemm_profile_reflects_cubic_work() {
        let sizes = ProblemSizes::new()
            .with("NI", 400)
            .with("NJ", 400)
            .with("NK", 400);
        let p = derive_profile(&gemm_source("gemm_r0"), &sizes, &KernelTraits::default());
        assert_eq!(p.iterations, 400);
        // Per outer iteration: ~NJ*NK fused multiply-adds → ≥ 2*400*400 flops.
        assert!(
            p.flops_per_iter > 2.0 * 400.0 * 400.0 * 0.9,
            "{}",
            p.flops_per_iter
        );
        assert_eq!(p.access_pattern, AccessPattern::HighReuse);
        assert_eq!(p.imbalance_shape, ImbalanceShape::Uniform);
        // Footprint: 3 × 400×400 doubles
        assert!((p.working_set_bytes - 3.0 * 400.0 * 400.0 * 8.0).abs() < 1.0);
    }

    #[test]
    fn triangular_loops_produce_ramp_imbalance() {
        let sizes = ProblemSizes::new().with("N", 1000);
        let p = derive_profile(
            &triangular_source("lu_r0"),
            &sizes,
            &KernelTraits::default(),
        );
        assert_eq!(p.imbalance_shape, ImbalanceShape::Ramp);
        assert!(p.imbalance > 0.5);
        // average inner trip count is N/2
        assert!(p.flops_per_iter > 400.0);
    }

    #[test]
    fn problem_size_scales_the_profile() {
        let small = ProblemSizes::new()
            .with("NI", 100)
            .with("NJ", 100)
            .with("NK", 100);
        let large = ProblemSizes::new()
            .with("NI", 800)
            .with("NJ", 800)
            .with("NK", 800);
        let ps = derive_profile(&gemm_source("g"), &small, &KernelTraits::default());
        let pl = derive_profile(&gemm_source("g"), &large, &KernelTraits::default());
        assert_eq!(ps.iterations, 100);
        assert_eq!(pl.iterations, 800);
        assert!(pl.flops_per_iter > 50.0 * ps.flops_per_iter);
    }

    #[test]
    fn traits_override_inference() {
        let sizes = ProblemSizes::new()
            .with("NI", 100)
            .with("NJ", 100)
            .with("NK", 100);
        let traits = KernelTraits {
            access_pattern: Some(AccessPattern::Irregular),
            imbalance: Some((ImbalanceShape::RandomSpikes, 0.8)),
            serial_fraction: 0.05,
            scalability_limit: 16,
            working_set_override: Some(1e9),
            ..KernelTraits::default()
        };
        let p = derive_profile(&gemm_source("g"), &sizes, &traits);
        assert_eq!(p.access_pattern, AccessPattern::Irregular);
        assert_eq!(p.imbalance_shape, ImbalanceShape::RandomSpikes);
        assert_eq!(p.serial_fraction, 0.05);
        assert_eq!(p.scalability_limit, 16);
        assert_eq!(p.working_set_bytes, 1e9);
    }

    #[test]
    fn unbound_size_parameters_default_to_1000() {
        let p = derive_profile(
            &gemm_source("g"),
            &ProblemSizes::new(),
            &KernelTraits::default(),
        );
        assert_eq!(p.iterations, 1000);
    }
}
