//! The synthetic benchmark suite: generated kernels as first-class
//! applications (ISSUE 6 tentpole).
//!
//! [`synthetic_suite`] maps each [`pnp_ir::gen::corpus`] kernel onto a
//! single-region [`Application`], deriving its workload profile through the
//! same static analyzer every paper region uses — so generated kernels get
//! exhaustive sweep ground truth from the analytic machine models exactly
//! like the frozen 30-app suite, while remaining *out of distribution* for a
//! model trained on that suite. The synthetic suite is deliberately never
//! appended to [`crate::full_suite`]: the paper suite stays frozen.

use crate::analysis::{derive_profile, KernelTraits, ProblemSizes};
use crate::region::{Application, BenchRegion};
use pnp_ir::gen::{corpus, GeneratedKernel};

/// Builds one application from one generated kernel. The generator's
/// workload knobs (problem sizes, scalability ceiling, serial fraction) feed
/// the analyzer the same way hand-written benchmark traits do; everything
/// else — operation counts, footprints, imbalance shape — is derived from
/// the generated DSL source.
pub fn application_from(kernel: &GeneratedKernel) -> Application {
    let mut sizes = ProblemSizes::new();
    for (name, value) in &kernel.sizes {
        sizes = sizes.with(name, *value);
    }
    let traits = KernelTraits {
        serial_fraction: kernel.serial_fraction,
        scalability_limit: kernel.scalability_limit,
        ..KernelTraits::default()
    };
    let profile = derive_profile(&kernel.source, &sizes, &traits);
    // App name = region name minus the `_r0` suffix every generated region
    // carries, keeping app/region naming parallel to the paper suite.
    let app_name = kernel
        .source
        .name
        .strip_suffix("_r0")
        .unwrap_or(&kernel.source.name)
        .to_string();
    Application::new(
        app_name,
        vec![BenchRegion {
            source: kernel.source.clone(),
            profile,
        }],
    )
}

/// The deterministic synthetic suite: `count` generated single-region
/// applications for `seed`. Same seed → byte-identical suite (see
/// `pnp_ir::gen` for the per-kernel stream scheme); prefix-stable in
/// `count`.
pub fn synthetic_suite(seed: u64, count: usize) -> Vec<Application> {
    corpus(seed, count).iter().map(application_from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_suite_is_deterministic_and_sized() {
        let a = synthetic_suite(9, 6);
        let b = synthetic_suite(9, 6);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.regions[0].source, y.regions[0].source);
            assert_eq!(x.regions[0].profile, y.regions[0].profile);
        }
    }

    #[test]
    fn generated_profiles_are_physical() {
        for app in synthetic_suite(3, 12) {
            let p = &app.regions[0].profile;
            assert!(p.iterations > 0, "{}", app.name);
            assert!(p.instructions_per_iter > 0.0, "{}", app.name);
            assert!(p.bytes_per_iter >= 0.0, "{}", app.name);
            assert!(p.working_set_bytes > 0.0, "{}", app.name);
            assert!(
                p.serial_fraction >= 0.0 && p.serial_fraction < 1.0,
                "{}",
                app.name
            );
            assert!(p.scalability_limit >= 2, "{}", app.name);
        }
    }

    #[test]
    fn synthetic_apps_lower_and_graph() {
        for app in synthetic_suite(11, 6) {
            let graphs = app.region_graphs();
            assert_eq!(graphs.len(), 1, "{}", app.name);
            assert!(graphs[0].1.num_nodes() > 0, "{}", app.name);
        }
    }

    #[test]
    fn scalability_knob_reaches_the_profile() {
        // At least one corpus kernel draws a finite scalability limit, and it
        // must land in the derived profile unchanged.
        let kernels = corpus(3, 12);
        let limited: Vec<_> = kernels
            .iter()
            .filter(|k| k.scalability_limit != usize::MAX)
            .collect();
        assert!(!limited.is_empty());
        for k in limited {
            let app = application_from(k);
            assert_eq!(
                app.regions[0].profile.scalability_limit,
                k.scalability_limit
            );
        }
    }
}
