//! Parameterized kernel constructors.
//!
//! Every benchmark region is assembled from one of these builders. A builder
//! produces the kernel's DSL source (which determines its code graph) and
//! derives the matching workload profile, so structural parameters — how many
//! arrays are streamed, how many floating-point operations per element, how
//! deep the loop nest is, whether bounds are triangular, whether helper
//! routines are called — are visible to both the GNN and the simulator.

use crate::analysis::{derive_profile, KernelTraits, ProblemSizes};
use crate::region::BenchRegion;
use pnp_ir::dsl::{
    ArrayDecl, ArrayRef, BinOp, CmpOp, Expr, HelperFn, IndexExpr, LoopBound, LoopNest, MathFn,
    OmpPragma, RegionSource, Stmt,
};
use pnp_machine::cache::AccessPattern;
use pnp_openmp::ImbalanceShape;

fn region(
    name: &str,
    arrays: Vec<ArrayDecl>,
    scalars: Vec<&str>,
    size_params: Vec<&str>,
    helpers: Vec<HelperFn>,
    parallel_loop: LoopNest,
) -> RegionSource {
    RegionSource {
        name: name.to_string(),
        pragma: OmpPragma::default(),
        arrays,
        scalars: scalars.into_iter().map(String::from).collect(),
        size_params: size_params.into_iter().map(String::from).collect(),
        helpers,
        parallel_loop,
    }
}

fn build(source: RegionSource, sizes: ProblemSizes, traits: KernelTraits) -> BenchRegion {
    let profile = derive_profile(&source, &sizes, &traits);
    BenchRegion { source, profile }
}

/// A streaming elementwise kernel: `OUT[i] = f(IN0[i], IN1[i], …)` with
/// `flop_chain` arithmetic operations per element. Memory-bandwidth bound.
pub fn streaming_kernel(name: &str, n: i64, num_inputs: usize, flop_chain: f64) -> BenchRegion {
    let mut arrays = vec![ArrayDecl::d1("OUT", "N")];
    for k in 0..num_inputs.max(1) {
        arrays.push(ArrayDecl::d1(&format!("IN{k}"), "N"));
    }
    // value = IN0[i] op IN1[i] op ... followed by extra scalar multiplies.
    let mut value = Expr::load1("IN0", IndexExpr::var("i"));
    for k in 1..num_inputs.max(1) {
        value = Expr::add(value, Expr::load1(&format!("IN{k}"), IndexExpr::var("i")));
    }
    for _ in 0..(flop_chain as usize) {
        value = Expr::mul(value, Expr::Scalar("alpha".into()));
    }
    let body = vec![Stmt::Assign {
        target: ArrayRef::d1("OUT", IndexExpr::var("i")),
        value,
    }];
    let src = region(
        name,
        arrays,
        vec!["alpha"],
        vec!["N"],
        vec![],
        LoopNest::new("i", LoopBound::Param("N".into()), body),
    );
    build(
        src,
        ProblemSizes::new().with("N", n),
        KernelTraits::default(),
    )
}

/// A dense matrix-multiplication kernel (`C = beta·C + alpha·A·B`), the
/// classic compute-bound triple loop.
pub fn matmul_kernel(name: &str, ni: i64, nj: i64, nk: i64) -> BenchRegion {
    let inner_k = LoopNest::new(
        "k",
        LoopBound::Param("NK".into()),
        vec![Stmt::Accumulate {
            target: ArrayRef::d2("C", IndexExpr::var("i"), IndexExpr::var("j")),
            op: BinOp::Add,
            value: Expr::mul(
                Expr::mul(
                    Expr::Scalar("alpha".into()),
                    Expr::load2("A", IndexExpr::var("i"), IndexExpr::var("k")),
                ),
                Expr::load2("B", IndexExpr::var("k"), IndexExpr::var("j")),
            ),
        }],
    );
    let loop_j = LoopNest::new(
        "j",
        LoopBound::Param("NJ".into()),
        vec![
            Stmt::Assign {
                target: ArrayRef::d2("C", IndexExpr::var("i"), IndexExpr::var("j")),
                value: Expr::mul(
                    Expr::Scalar("beta".into()),
                    Expr::load2("C", IndexExpr::var("i"), IndexExpr::var("j")),
                ),
            },
            Stmt::Loop(inner_k),
        ],
    );
    let src = region(
        name,
        vec![
            ArrayDecl::d2("A", "NI", "NK"),
            ArrayDecl::d2("B", "NK", "NJ"),
            ArrayDecl::d2("C", "NI", "NJ"),
        ],
        vec!["alpha", "beta"],
        vec!["NI", "NJ", "NK"],
        vec![],
        LoopNest::new("i", LoopBound::Param("NI".into()), vec![Stmt::Loop(loop_j)]),
    );
    build(
        src,
        ProblemSizes::new()
            .with("NI", ni)
            .with("NJ", nj)
            .with("NK", nk),
        KernelTraits::default(),
    )
}

/// A matrix–vector style kernel `y[i] += A[i][j] · x[j]` (optionally with a
/// second accumulation against the transpose, as in atax/bicg).
pub fn matvec_kernel(name: &str, n: i64, m: i64, second_pass: bool) -> BenchRegion {
    let mut body = vec![
        Stmt::ScalarAssign {
            name: "acc".into(),
            value: Expr::Const(0.0),
        },
        Stmt::Loop(LoopNest::new(
            "j",
            LoopBound::Param("M".into()),
            vec![Stmt::ScalarAccumulate {
                name: "acc".into(),
                op: BinOp::Add,
                value: Expr::mul(
                    Expr::load2("A", IndexExpr::var("i"), IndexExpr::var("j")),
                    Expr::load1("x", IndexExpr::var("j")),
                ),
            }],
        )),
        Stmt::Assign {
            target: ArrayRef::d1("y", IndexExpr::var("i")),
            value: Expr::Scalar("acc".into()),
        },
    ];
    if second_pass {
        body.push(Stmt::Loop(LoopNest::new(
            "j",
            LoopBound::Param("M".into()),
            vec![Stmt::Accumulate {
                target: ArrayRef::d1("z", IndexExpr::var("j")),
                op: BinOp::Add,
                value: Expr::mul(
                    Expr::load2("A", IndexExpr::var("i"), IndexExpr::var("j")),
                    Expr::Scalar("acc".into()),
                ),
            }],
        )));
    }
    let mut arrays = vec![
        ArrayDecl::d2("A", "N", "M"),
        ArrayDecl::d1("x", "M"),
        ArrayDecl::d1("y", "N"),
    ];
    if second_pass {
        arrays.push(ArrayDecl::d1("z", "M"));
    }
    let src = region(
        name,
        arrays,
        vec![],
        vec!["N", "M"],
        vec![],
        LoopNest::new("i", LoopBound::Param("N".into()), body),
    );
    build(
        src,
        ProblemSizes::new().with("N", n).with("M", m),
        KernelTraits {
            // Row-streaming through A with reuse only on the vectors.
            access_pattern: Some(AccessPattern::Streaming),
            ..KernelTraits::default()
        },
    )
}

/// A 2-D stencil sweep: each row is updated from `points` neighbouring
/// elements of the previous grid.
pub fn stencil2d_kernel(name: &str, n: i64, m: i64, points: usize) -> BenchRegion {
    let offsets: Vec<(i64, i64)> = [
        (0, 0),
        (0, 1),
        (0, -1),
        (1, 0),
        (-1, 0),
        (1, 1),
        (-1, -1),
        (1, -1),
        (-1, 1),
    ]
    .into_iter()
    .take(points.clamp(3, 9))
    .collect();
    let mut value = Expr::load2(
        "GRID",
        IndexExpr::var_plus("i", offsets[0].0),
        IndexExpr::var_plus("j", offsets[0].1),
    );
    for &(di, dj) in &offsets[1..] {
        value = Expr::add(
            value,
            Expr::load2(
                "GRID",
                IndexExpr::var_plus("i", di),
                IndexExpr::var_plus("j", dj),
            ),
        );
    }
    value = Expr::mul(value, Expr::Scalar("coeff".into()));
    let inner = LoopNest::new(
        "j",
        LoopBound::Param("M".into()),
        vec![Stmt::Assign {
            target: ArrayRef::d2("OUT", IndexExpr::var("i"), IndexExpr::var("j")),
            value,
        }],
    );
    let src = region(
        name,
        vec![
            ArrayDecl::d2("GRID", "N", "M"),
            ArrayDecl::d2("OUT", "N", "M"),
        ],
        vec!["coeff"],
        vec!["N", "M"],
        vec![],
        LoopNest::new("i", LoopBound::Param("N".into()), vec![Stmt::Loop(inner)]),
    );
    build(
        src,
        ProblemSizes::new().with("N", n).with("M", m),
        KernelTraits {
            access_pattern: Some(AccessPattern::Stencil),
            ..KernelTraits::default()
        },
    )
}

/// A triangular-loop kernel (factorizations, triangular solves): the inner
/// trip count grows with the outer index, creating ramp-shaped imbalance.
pub fn triangular_kernel(name: &str, n: i64, extra_flops: usize, use_sqrt: bool) -> BenchRegion {
    let mut value = Expr::mul(
        Expr::load2("A", IndexExpr::var("i"), IndexExpr::var("j")),
        Expr::load2("A", IndexExpr::var("j"), IndexExpr::var("j")),
    );
    for _ in 0..extra_flops {
        value = Expr::add(
            value,
            Expr::load2("B", IndexExpr::var("i"), IndexExpr::var("j")),
        );
    }
    if use_sqrt {
        value = Expr::Math(MathFn::Sqrt, vec![Expr::Math(MathFn::Fabs, vec![value])]);
    }
    let inner = LoopNest::new(
        "j",
        LoopBound::Var("i".into()),
        vec![Stmt::Accumulate {
            target: ArrayRef::d2("A", IndexExpr::var("i"), IndexExpr::var("j")),
            op: BinOp::Sub,
            value,
        }],
    );
    let src = region(
        name,
        vec![ArrayDecl::d2("A", "N", "N"), ArrayDecl::d2("B", "N", "N")],
        vec![],
        vec!["N"],
        vec![],
        LoopNest::new("i", LoopBound::Param("N".into()), vec![Stmt::Loop(inner)]),
    );
    build(
        src,
        ProblemSizes::new().with("N", n),
        KernelTraits::default(),
    )
}

/// A column-statistics kernel (correlation/covariance): per column, a
/// reduction over all rows followed by a normalization, optionally with a
/// square root (standard deviation).
pub fn column_stats_kernel(name: &str, rows: i64, cols: i64, use_sqrt: bool) -> BenchRegion {
    let mut normalize = Expr::div(Expr::Scalar("acc".into()), Expr::Scalar("float_n".into()));
    if use_sqrt {
        normalize = Expr::Math(MathFn::Sqrt, vec![normalize]);
    }
    let body = vec![
        Stmt::ScalarAssign {
            name: "acc".into(),
            value: Expr::Const(0.0),
        },
        Stmt::Loop(LoopNest::new(
            "k",
            LoopBound::Param("ROWS".into()),
            vec![Stmt::ScalarAccumulate {
                name: "acc".into(),
                op: BinOp::Add,
                value: Expr::mul(
                    Expr::load2("DATA", IndexExpr::var("k"), IndexExpr::var("j")),
                    Expr::load2("DATA", IndexExpr::var("k"), IndexExpr::var("j")),
                ),
            }],
        )),
        Stmt::Assign {
            target: ArrayRef::d1("STAT", IndexExpr::var("j")),
            value: normalize,
        },
    ];
    let src = region(
        name,
        vec![
            ArrayDecl::d2("DATA", "ROWS", "COLS"),
            ArrayDecl::d1("STAT", "COLS"),
        ],
        vec!["float_n"],
        vec!["ROWS", "COLS"],
        vec![],
        LoopNest::new("j", LoopBound::Param("COLS".into()), body),
    );
    build(
        src,
        ProblemSizes::new().with("ROWS", rows).with("COLS", cols),
        KernelTraits {
            // Column-strided walk over a row-major array.
            access_pattern: Some(AccessPattern::Stencil),
            ..KernelTraits::default()
        },
    )
}

/// A Monte-Carlo / table-lookup kernel (XSBench, RSBench, Quicksilver):
/// data-dependent lookups through a helper routine, a branchy acceptance
/// test, and irregular per-iteration cost.
pub fn lookup_kernel(
    name: &str,
    lookups: i64,
    table_bytes: f64,
    helper: &str,
    helper_ops: usize,
    imbalance: f64,
) -> BenchRegion {
    let body = vec![
        Stmt::ScalarAssign {
            name: "xs".into(),
            value: Expr::CallHelper(
                helper.to_string(),
                vec![
                    Expr::load1("EGRID", IndexExpr::var("i")),
                    Expr::Scalar("seed".into()),
                ],
            ),
        },
        Stmt::If {
            lhs: Expr::Scalar("xs".into()),
            cmp: CmpOp::Gt,
            rhs: Expr::Scalar("threshold".into()),
            then_body: vec![Stmt::Accumulate {
                target: ArrayRef::d1("RESULT", IndexExpr::var("i")),
                op: BinOp::Add,
                value: Expr::mul(
                    Expr::Scalar("xs".into()),
                    Expr::load1("NUCLIDES", IndexExpr::var("i")),
                ),
            }],
            else_body: vec![Stmt::Assign {
                target: ArrayRef::d1("RESULT", IndexExpr::var("i")),
                value: Expr::Math(MathFn::Exp, vec![Expr::Scalar("xs".into())]),
            }],
        },
    ];
    let src = region(
        name,
        vec![
            ArrayDecl::d1("EGRID", "N"),
            ArrayDecl::d1("NUCLIDES", "N"),
            ArrayDecl::d1("RESULT", "N"),
        ],
        vec!["seed", "threshold"],
        vec!["N"],
        vec![HelperFn {
            name: helper.to_string(),
            num_params: 2,
            body_ops: helper_ops,
        }],
        LoopNest::new("i", LoopBound::Param("N".into()), body),
    );
    build(
        src,
        ProblemSizes::new().with("N", lookups),
        KernelTraits {
            access_pattern: Some(AccessPattern::Irregular),
            imbalance: Some((ImbalanceShape::RandomSpikes, imbalance)),
            branch_mispredict_rate: 0.12,
            working_set_override: Some(table_bytes),
            ..KernelTraits::default()
        },
    )
}

/// A tiny boundary/fix-up region (LULESH boundary conditions, miniAMR ghost
/// exchange bookkeeping): so little work that fork/join overhead dominates at
/// high thread counts.
pub fn small_boundary_kernel(name: &str, iters: i64, ops: usize) -> BenchRegion {
    let mut value = Expr::load1("FIELD", IndexExpr::var("i"));
    for _ in 0..ops.max(1) {
        value = Expr::add(value, Expr::Scalar("delta".into()));
    }
    let src = region(
        name,
        vec![ArrayDecl::d1("FIELD", "N")],
        vec!["delta"],
        vec!["N"],
        vec![],
        LoopNest::new(
            "i",
            LoopBound::Param("N".into()),
            vec![Stmt::Assign {
                target: ArrayRef::d1("FIELD", IndexExpr::var("i")),
                value,
            }],
        ),
    );
    build(
        src,
        ProblemSizes::new().with("N", iters),
        KernelTraits {
            scalability_limit: 16,
            ..KernelTraits::default()
        },
    )
}

/// A fused multi-array update (LULESH force/position integration, miniFE
/// vector updates): several streams with a moderate amount of arithmetic per
/// element, optionally through a physics helper routine.
pub fn fused_update_kernel(
    name: &str,
    n: i64,
    num_arrays: usize,
    math_ops: usize,
    helper: Option<(&str, usize)>,
) -> BenchRegion {
    let mut arrays = vec![ArrayDecl::d1("OUT", "N")];
    for k in 0..num_arrays.max(1) {
        arrays.push(ArrayDecl::d1(&format!("F{k}"), "N"));
    }
    let mut value = Expr::load1("F0", IndexExpr::var("i"));
    for k in 1..num_arrays.max(1) {
        value = Expr::add(value, Expr::load1(&format!("F{k}"), IndexExpr::var("i")));
    }
    for op_idx in 0..math_ops {
        value = match op_idx % 3 {
            0 => Expr::mul(value, Expr::Scalar("dt".into())),
            1 => Expr::add(value, Expr::Scalar("c0".into())),
            _ => Expr::Math(MathFn::Sqrt, vec![Expr::Math(MathFn::Fabs, vec![value])]),
        };
    }
    let mut helpers = Vec::new();
    if let Some((hname, hops)) = helper {
        value = Expr::CallHelper(hname.to_string(), vec![value, Expr::Scalar("dt".into())]);
        helpers.push(HelperFn {
            name: hname.to_string(),
            num_params: 2,
            body_ops: hops,
        });
    }
    let src = region(
        name,
        arrays,
        vec!["dt", "c0"],
        vec!["N"],
        helpers,
        LoopNest::new(
            "i",
            LoopBound::Param("N".into()),
            vec![Stmt::Assign {
                target: ArrayRef::d1("OUT", IndexExpr::var("i")),
                value,
            }],
        ),
    );
    build(
        src,
        ProblemSizes::new().with("N", n),
        KernelTraits::default(),
    )
}

/// An AMR-style block sweep (miniAMR): an outer loop over blocks whose inner
/// work per block is uneven (refined blocks do more work), with a conditional
/// refinement test.
pub fn amr_block_kernel(
    name: &str,
    blocks: i64,
    cells_per_block: i64,
    imbalance: f64,
) -> BenchRegion {
    let inner = LoopNest::new(
        "c",
        LoopBound::Param("CELLS".into()),
        vec![Stmt::If {
            lhs: Expr::load2("STATE", IndexExpr::var("b"), IndexExpr::var("c")),
            cmp: CmpOp::Gt,
            rhs: Expr::Scalar("refine_threshold".into()),
            then_body: vec![Stmt::Accumulate {
                target: ArrayRef::d2("STATE", IndexExpr::var("b"), IndexExpr::var("c")),
                op: BinOp::Add,
                value: Expr::mul(
                    Expr::load2("FLUX", IndexExpr::var("b"), IndexExpr::var("c")),
                    Expr::Scalar("dt".into()),
                ),
            }],
            else_body: vec![Stmt::Assign {
                target: ArrayRef::d2("STATE", IndexExpr::var("b"), IndexExpr::var("c")),
                value: Expr::mul(
                    Expr::load2("STATE", IndexExpr::var("b"), IndexExpr::var("c")),
                    Expr::Scalar("decay".into()),
                ),
            }],
        }],
    );
    let src = region(
        name,
        vec![
            ArrayDecl::d2("STATE", "BLOCKS", "CELLS"),
            ArrayDecl::d2("FLUX", "BLOCKS", "CELLS"),
        ],
        vec!["refine_threshold", "dt", "decay"],
        vec!["BLOCKS", "CELLS"],
        vec![],
        LoopNest::new(
            "b",
            LoopBound::Param("BLOCKS".into()),
            vec![Stmt::Loop(inner)],
        ),
    );
    build(
        src,
        ProblemSizes::new()
            .with("BLOCKS", blocks)
            .with("CELLS", cells_per_block),
        KernelTraits {
            imbalance: Some((ImbalanceShape::RandomSpikes, imbalance)),
            branch_mispredict_rate: 0.08,
            ..KernelTraits::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_graph::build_region_graph;
    use pnp_ir::lower_kernel;
    use pnp_ir::verify::verify_module;

    fn all_builders() -> Vec<BenchRegion> {
        vec![
            streaming_kernel("s", 1_000_000, 2, 1.0),
            matmul_kernel("mm", 500, 500, 500),
            matvec_kernel("mv", 2000, 2000, true),
            stencil2d_kernel("st", 1000, 1000, 5),
            triangular_kernel("tri", 1500, 1, true),
            column_stats_kernel("cs", 1200, 1200, true),
            lookup_kernel("lk", 500_000, 2.0e8, "xs_lookup", 8, 0.9),
            small_boundary_kernel("sb", 2000, 3),
            fused_update_kernel("fu", 300_000, 4, 5, Some(("eos", 10))),
            amr_block_kernel("amr", 4000, 512, 1.2),
        ]
    }

    #[test]
    fn every_builder_produces_verifiable_ir_and_a_graph() {
        for r in all_builders() {
            let m = lower_kernel("app", std::slice::from_ref(&r.source));
            assert!(
                verify_module(&m).is_ok(),
                "{}: {:?}",
                r.name(),
                verify_module(&m)
            );
            let g = build_region_graph(&m, r.name()).unwrap();
            assert!(g.num_nodes() > 15, "{} too small", r.name());
            assert!(g.is_well_formed());
        }
    }

    #[test]
    fn builders_produce_distinct_graphs() {
        let regions = all_builders();
        let mut sizes = Vec::new();
        for r in &regions {
            let m = lower_kernel("app", std::slice::from_ref(&r.source));
            let g = build_region_graph(&m, r.name()).unwrap();
            sizes.push((g.num_nodes(), g.num_edges()));
        }
        let mut dedup = sizes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert!(
            dedup.len() >= sizes.len() - 1,
            "graphs should be structurally distinct: {sizes:?}"
        );
    }

    #[test]
    fn profiles_reflect_builder_intent() {
        let mm = matmul_kernel("mm", 500, 500, 500);
        let st = streaming_kernel("s", 1_000_000, 2, 1.0);
        let tri = triangular_kernel("tri", 1500, 1, false);
        let lk = lookup_kernel("lk", 500_000, 2.0e8, "xs", 8, 0.9);
        let sb = small_boundary_kernel("sb", 2000, 3);

        // Compute- vs memory-bound: matmul does orders of magnitude more work
        // per outer iteration and keeps its reuse in cache, while the
        // streaming kernel touches each element once.
        assert!(mm.profile.flops_per_iter > 1000.0 * st.profile.flops_per_iter);
        assert_eq!(mm.profile.access_pattern, AccessPattern::HighReuse);
        assert_eq!(st.profile.access_pattern, AccessPattern::Streaming);

        // Imbalance classification.
        assert_eq!(tri.profile.imbalance_shape, ImbalanceShape::Ramp);
        assert_eq!(lk.profile.imbalance_shape, ImbalanceShape::RandomSpikes);
        assert_eq!(mm.profile.imbalance_shape, ImbalanceShape::Uniform);

        // Irregular access for the lookup kernel.
        assert_eq!(lk.profile.access_pattern, AccessPattern::Irregular);

        // The boundary kernel is tiny.
        assert!(sb.profile.iterations <= 2000);
        assert!(sb.profile.flops_per_iter < 20.0);
    }

    #[test]
    fn helper_builders_generate_call_flow() {
        let fu = fused_update_kernel("fu", 100_000, 3, 4, Some(("eos_helper", 12)));
        let m = lower_kernel("app", std::slice::from_ref(&fu.source));
        assert!(m.function("eos_helper").is_some());
        let g = build_region_graph(&m, "fu").unwrap();
        assert!(g.count_flow(pnp_graph::EdgeFlow::Call) >= 2);
    }
}
