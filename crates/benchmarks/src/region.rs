//! Benchmark regions and applications.

use pnp_graph::{build_region_graph, CodeGraph};
use pnp_ir::{lower_kernel, Module, RegionSource};
use pnp_openmp::RegionProfile;

/// One OpenMP parallel region of a benchmark: its source description and the
/// workload profile derived from it.
#[derive(Clone, Debug)]
pub struct BenchRegion {
    /// The kernel-DSL source of the region.
    pub source: RegionSource,
    /// The derived workload profile used by the execution simulator.
    pub profile: RegionProfile,
}

impl BenchRegion {
    /// The region's name (shared by source, profile, and code graph).
    pub fn name(&self) -> &str {
        &self.source.name
    }
}

/// A benchmark application: a named collection of OpenMP regions.
#[derive(Clone, Debug)]
pub struct Application {
    /// Application name as it appears in the paper's figures (e.g. `"gemm"`,
    /// `"LULESH"`).
    pub name: String,
    /// Its OpenMP regions.
    pub regions: Vec<BenchRegion>,
}

impl Application {
    /// Creates an application.
    pub fn new(name: impl Into<String>, regions: Vec<BenchRegion>) -> Self {
        let app = Application {
            name: name.into(),
            regions,
        };
        assert!(
            !app.regions.is_empty(),
            "application {} must have at least one region",
            app.name
        );
        app
    }

    /// Lowers every region of this application into one IR module.
    pub fn lower(&self) -> Module {
        let sources: Vec<RegionSource> = self.regions.iter().map(|r| r.source.clone()).collect();
        lower_kernel(&self.name, &sources)
    }

    /// Builds the flow-aware code graph of every region.
    ///
    /// Returns `(region name, graph)` pairs in region order.
    pub fn region_graphs(&self) -> Vec<(String, CodeGraph)> {
        let module = self.lower();
        self.regions
            .iter()
            .map(|r| {
                let g = build_region_graph(&module, r.name())
                    // pnp-lint: allow(panic) — every region in `self.regions` is lowered into `module` two lines up
                    .unwrap_or_else(|| panic!("region {} missing after lowering", r.name()));
                (r.name().to_string(), g)
            })
            .collect()
    }

    /// Number of OpenMP regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::streaming_kernel;

    #[test]
    fn application_lowers_and_builds_graphs() {
        let app = Application::new(
            "demo",
            vec![
                streaming_kernel("demo_r0", 100_000, 2, 1.0),
                streaming_kernel("demo_r1", 50_000, 3, 2.0),
            ],
        );
        assert_eq!(app.num_regions(), 2);
        let graphs = app.region_graphs();
        assert_eq!(graphs.len(), 2);
        assert!(graphs
            .iter()
            .all(|(_, g)| g.num_nodes() > 10 && g.is_well_formed()));
    }

    #[test]
    #[should_panic]
    fn empty_application_is_rejected() {
        Application::new("empty", vec![]);
    }
}
