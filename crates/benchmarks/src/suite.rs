//! The full benchmark suite and its summary statistics.

use crate::polybench;
use crate::proxy;
use crate::region::Application;
use serde::Serialize;

/// All 30 applications (24 PolyBench + 6 proxy apps) with 68 OpenMP regions,
/// in the order the paper's figures present them (proxy apps first).
pub fn full_suite() -> Vec<Application> {
    let mut apps = proxy::apps();
    apps.extend(polybench::apps());
    apps
}

/// Aggregate statistics of the suite, used in reports and tests.
#[derive(Clone, Debug, Default, Serialize)]
pub struct SuiteStats {
    /// Number of applications.
    pub applications: usize,
    /// Number of OpenMP regions.
    pub regions: usize,
    /// Minimum / maximum outer-loop trip counts across all regions.
    pub min_iterations: usize,
    /// Maximum outer-loop trip count across all regions.
    pub max_iterations: usize,
    /// Number of regions with noticeable load imbalance (> 0.3).
    pub imbalanced_regions: usize,
    /// Number of regions calling helper functions (call-flow edges present).
    pub regions_with_helpers: usize,
}

/// Computes [`SuiteStats`] for a set of applications.
pub fn suite_stats(apps: &[Application]) -> SuiteStats {
    let mut stats = SuiteStats {
        applications: apps.len(),
        min_iterations: usize::MAX,
        ..SuiteStats::default()
    };
    for app in apps {
        for r in &app.regions {
            stats.regions += 1;
            stats.min_iterations = stats.min_iterations.min(r.profile.iterations);
            stats.max_iterations = stats.max_iterations.max(r.profile.iterations);
            if r.profile.imbalance > 0.3 {
                stats.imbalanced_regions += 1;
            }
            if !r.source.helpers.is_empty() {
                stats.regions_with_helpers += 1;
            }
        }
    }
    if stats.regions == 0 {
        stats.min_iterations = 0;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_matches_the_paper_scale() {
        let apps = full_suite();
        let stats = suite_stats(&apps);
        assert_eq!(stats.applications, 30, "paper evaluates 30 applications");
        assert_eq!(stats.regions, 68, "paper evaluates 68 OpenMP regions");
    }

    #[test]
    fn region_names_are_globally_unique() {
        let apps = full_suite();
        let mut names = HashSet::new();
        for app in &apps {
            for r in &app.regions {
                assert!(
                    names.insert(r.name().to_string()),
                    "duplicate region name {}",
                    r.name()
                );
            }
        }
    }

    #[test]
    fn suite_spans_diverse_behaviour() {
        let apps = full_suite();
        let stats = suite_stats(&apps);
        assert!(stats.max_iterations > 100 * stats.min_iterations.max(1));
        assert!(stats.imbalanced_regions >= 10);
        assert!(stats.regions_with_helpers >= 8);
    }

    #[test]
    fn every_region_lowers_to_a_well_formed_graph() {
        for app in full_suite() {
            for (name, graph) in app.region_graphs() {
                assert!(graph.is_well_formed(), "{name}");
                assert!(
                    graph.num_nodes() >= 15,
                    "{name} has a suspiciously small graph"
                );
                assert!(graph.num_edges() >= graph.num_nodes(), "{name} too sparse");
            }
        }
    }

    #[test]
    fn graphs_are_structurally_diverse_across_the_suite() {
        let mut signatures = HashSet::new();
        let mut total = 0;
        for app in full_suite() {
            for (_, g) in app.region_graphs() {
                signatures.insert((g.num_nodes(), g.num_edges()));
                total += 1;
            }
        }
        // At least half of the 68 regions must have structurally distinct
        // (node, edge) signatures — the GNN needs variety to learn from.
        assert!(
            signatures.len() * 2 >= total,
            "only {} distinct signatures over {total} regions",
            signatures.len()
        );
    }
}
