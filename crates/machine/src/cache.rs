//! Cache hierarchy description and an analytic miss model.
//!
//! The miss model is deliberately simple: it estimates per-level miss ratios
//! from the working-set size of a kernel relative to each cache level's
//! capacity and from the kernel's access pattern (streaming vs. reusing).
//! That is enough to (a) produce PAPI-like counter values for the dynamic
//! tuner and (b) make memory-bound kernels respond differently to thread
//! count and frequency than compute-bound ones.

use serde::{Deserialize, Serialize};

/// Sizes and latencies of the three cache levels.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheHierarchy {
    /// L1 data cache size per core, in KiB.
    pub l1_kib: f64,
    /// L2 cache size per core, in KiB.
    pub l2_kib: f64,
    /// Shared L3 size per socket, in MiB.
    pub l3_mib: f64,
    /// Cache line size in bytes.
    pub line_bytes: f64,
    /// L1 hit latency in cycles.
    pub l1_latency_cycles: f64,
    /// L2 hit latency in cycles.
    pub l2_latency_cycles: f64,
    /// L3 hit latency in cycles.
    pub l3_latency_cycles: f64,
    /// DRAM latency in nanoseconds.
    pub dram_latency_ns: f64,
}

/// How much temporal reuse a kernel's memory accesses exhibit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Pure streaming (every element touched once, e.g. vector add, copy).
    Streaming,
    /// Strided or stencil-style access with short-range reuse.
    Stencil,
    /// Blocked/tiled reuse (dense linear algebra with cache-resident tiles).
    HighReuse,
    /// Data-dependent, irregular access (table look-ups, Monte Carlo).
    Irregular,
}

impl AccessPattern {
    /// Fraction of accesses that *cannot* be captured by a cache even when
    /// the working set fits — models conflict/irregularity effects.
    pub fn irreducible_miss_fraction(self) -> f64 {
        match self {
            AccessPattern::Streaming => 0.9,
            AccessPattern::Stencil => 0.25,
            AccessPattern::HighReuse => 0.05,
            AccessPattern::Irregular => 0.6,
        }
    }
}

/// Estimated miss ratios (relative to all memory accesses) at each level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MissProfile {
    /// Fraction of accesses missing L1.
    pub l1_miss_ratio: f64,
    /// Fraction of accesses missing L2.
    pub l2_miss_ratio: f64,
    /// Fraction of accesses missing L3 (i.e. going to DRAM).
    pub l3_miss_ratio: f64,
}

impl MissProfile {
    /// Bytes transferred from DRAM per memory access of `access_bytes` size.
    pub fn dram_bytes_per_access(&self, line_bytes: f64) -> f64 {
        self.l3_miss_ratio * line_bytes
    }
}

impl CacheHierarchy {
    /// Estimates miss ratios for a kernel whose *per-thread* working set is
    /// `working_set_bytes`, running with `threads_per_socket` threads sharing
    /// the socket's L3, using the given access pattern.
    ///
    /// The model: a level captures reuse when the working set fits in the
    /// capacity available to the thread; the captured fraction decays as the
    /// working set exceeds capacity (capacity misses), floored by the
    /// pattern's irreducible miss fraction.
    pub fn miss_profile(
        &self,
        working_set_bytes: f64,
        threads_per_socket: usize,
        pattern: AccessPattern,
    ) -> MissProfile {
        let l1 = self.l1_kib * 1024.0;
        let l2 = self.l2_kib * 1024.0;
        let l3_share = self.l3_mib * 1024.0 * 1024.0 / threads_per_socket.max(1) as f64;
        let irreducible = pattern.irreducible_miss_fraction();

        let miss_at = |capacity: f64| -> f64 {
            if working_set_bytes <= 0.0 {
                return 0.0;
            }
            // Fraction of the working set that does NOT fit in this level.
            let overflow = ((working_set_bytes - capacity) / working_set_bytes).max(0.0);
            // Misses = irreducible streaming component scaled by overflow,
            // plus a small floor for cold misses.
            let cold = 0.002;
            (irreducible * overflow + cold).min(1.0)
        };

        let l1_miss = miss_at(l1).max(0.01 * irreducible);
        let l2_miss = (miss_at(l2)).min(l1_miss);
        let l3_miss = (miss_at(l3_share)).min(l2_miss);
        MissProfile {
            l1_miss_ratio: l1_miss,
            l2_miss_ratio: l2_miss,
            l3_miss_ratio: l3_miss,
        }
    }

    /// Average memory access latency in cycles implied by a miss profile at a
    /// given core frequency.
    pub fn average_access_latency_cycles(&self, miss: &MissProfile, freq_ghz: f64) -> f64 {
        let dram_cycles = self.dram_latency_ns * freq_ghz;
        let l1_hit = 1.0 - miss.l1_miss_ratio;
        let l2_hit = miss.l1_miss_ratio - miss.l2_miss_ratio;
        let l3_hit = miss.l2_miss_ratio - miss.l3_miss_ratio;
        l1_hit * self.l1_latency_cycles
            + l2_hit * self.l2_latency_cycles
            + l3_hit * self.l3_latency_cycles
            + miss.l3_miss_ratio * dram_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::haswell;

    #[test]
    fn tiny_working_set_mostly_hits_l1() {
        let c = haswell().cache;
        let m = c.miss_profile(8.0 * 1024.0, 1, AccessPattern::HighReuse);
        assert!(m.l1_miss_ratio < 0.05);
        assert!(m.l3_miss_ratio < 0.01);
    }

    #[test]
    fn huge_streaming_working_set_goes_to_dram() {
        let c = haswell().cache;
        let m = c.miss_profile(4.0e9, 1, AccessPattern::Streaming);
        assert!(m.l3_miss_ratio > 0.5);
        assert!(m.l1_miss_ratio >= m.l2_miss_ratio);
        assert!(m.l2_miss_ratio >= m.l3_miss_ratio);
    }

    #[test]
    fn sharing_l3_with_more_threads_increases_l3_misses() {
        let c = haswell().cache;
        let ws = 2.0 * 1024.0 * 1024.0; // 2 MiB per thread
        let alone = c.miss_profile(ws, 1, AccessPattern::Stencil);
        let crowded = c.miss_profile(ws, 16, AccessPattern::Stencil);
        assert!(crowded.l3_miss_ratio > alone.l3_miss_ratio);
    }

    #[test]
    fn reuse_pattern_misses_less_than_streaming() {
        let c = haswell().cache;
        let ws = 64.0 * 1024.0 * 1024.0;
        let stream = c.miss_profile(ws, 8, AccessPattern::Streaming);
        let reuse = c.miss_profile(ws, 8, AccessPattern::HighReuse);
        assert!(reuse.l3_miss_ratio < stream.l3_miss_ratio);
    }

    #[test]
    fn latency_grows_with_misses() {
        let c = haswell().cache;
        let low = MissProfile {
            l1_miss_ratio: 0.02,
            l2_miss_ratio: 0.01,
            l3_miss_ratio: 0.001,
        };
        let high = MissProfile {
            l1_miss_ratio: 0.9,
            l2_miss_ratio: 0.8,
            l3_miss_ratio: 0.7,
        };
        let freq = 2.5;
        assert!(
            c.average_access_latency_cycles(&high, freq)
                > 10.0 * c.average_access_latency_cycles(&low, freq)
        );
    }

    #[test]
    fn miss_ratios_are_probabilities() {
        let c = haswell().cache;
        for &ws in &[1e3, 1e5, 1e7, 1e9, 1e11] {
            for &pat in &[
                AccessPattern::Streaming,
                AccessPattern::Stencil,
                AccessPattern::HighReuse,
                AccessPattern::Irregular,
            ] {
                let m = c.miss_profile(ws, 4, pat);
                for v in [m.l1_miss_ratio, m.l2_miss_ratio, m.l3_miss_ratio] {
                    assert!((0.0..=1.0).contains(&v), "ws={ws} pat={pat:?} v={v}");
                }
            }
        }
    }
}
