//! The DVFS power/frequency model.
//!
//! Under RAPL, the package firmware keeps average power below the cap by
//! lowering the core frequency (and voltage). We model package power as
//!
//! ```text
//! P(f, n, u) = P_static + n_eff · (α·f + β·f³) · (0.55 + 0.45·u)
//! ```
//!
//! where `f` is the core frequency, `n_eff` the number of effectively active
//! cores (hyper-threads count fractionally), and `u` the average execution
//! utilization (memory-stalled cores draw less power). `α` and `β` are
//! calibrated per machine so that all cores at the base frequency draw TDP
//! and all cores at the minimum frequency draw roughly the minimum supported
//! power cap — matching how the real testbeds behave at their RAPL limits.
//!
//! [`PowerModel::freq_at_cap`] inverts the model: the highest sustainable
//! frequency under a cap. This is the mechanism that makes power-constrained
//! tuning interesting: compute-bound kernels lose performance proportionally
//! to the frequency drop, while memory-bound kernels barely notice it.

use crate::machine::MachineSpec;
use serde::{Deserialize, Serialize};

/// Calibrated package power model for one machine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static (idle/uncore/leakage) power in watts.
    pub static_power: f64,
    /// Linear dynamic-power coefficient (W per GHz per core).
    pub alpha: f64,
    /// Cubic dynamic-power coefficient (W per GHz³ per core).
    pub beta: f64,
    /// Physical core count.
    pub cores: usize,
    /// Hardware threads per core.
    pub threads_per_core: usize,
    /// Frequency bounds in GHz.
    pub min_freq: f64,
    /// Maximum (turbo) frequency in GHz.
    pub max_freq: f64,
    /// Base frequency in GHz.
    pub base_freq: f64,
    /// TDP in watts.
    pub tdp: f64,
}

impl PowerModel {
    /// Calibrates the model for a machine.
    pub fn for_machine(spec: &MachineSpec) -> Self {
        let n = spec.total_cores() as f64;
        let fb = spec.base_freq_ghz;
        let fm = spec.min_freq_ghz;
        // Two calibration points:
        //   all cores @ base freq, full utilization  → TDP
        //   all cores @ min freq,  full utilization  → ~min supported cap
        let p_hi = (spec.tdp_watts - spec.static_power_watts) / n;
        let p_lo = (spec.min_power_watts * 0.96 - spec.static_power_watts) / n;
        // Solve  α·fb + β·fb³ = p_hi ;  α·fm + β·fm³ = p_lo
        let det = fb * fm.powi(3) - fm * fb.powi(3);
        let (alpha, beta) = if det.abs() < 1e-12 {
            (p_hi / fb, 0.0)
        } else {
            let beta = (fb * p_lo - fm * p_hi) / det;
            let alpha = (p_hi - beta * fb.powi(3)) / fb;
            (alpha.max(0.0), beta.max(0.0))
        };
        PowerModel {
            static_power: spec.static_power_watts,
            alpha,
            beta,
            cores: spec.total_cores(),
            threads_per_core: spec.threads_per_core,
            min_freq: spec.min_freq_ghz,
            max_freq: spec.max_freq_ghz,
            base_freq: spec.base_freq_ghz,
            tdp: spec.tdp_watts,
        }
    }

    /// Number of effectively active cores for a thread count: hyper-threads
    /// sharing a core add only a fraction of a core's power.
    pub fn effective_cores(&self, threads: usize) -> f64 {
        let physical = threads.min(self.cores) as f64;
        let ht_extra = threads.saturating_sub(self.cores) as f64;
        physical + 0.18 * ht_extra
    }

    /// Package power in watts at frequency `freq_ghz` with `threads` busy
    /// threads at average utilization `utilization ∈ [0, 1]`.
    pub fn package_power(&self, freq_ghz: f64, threads: usize, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let n_eff = self.effective_cores(threads);
        let per_core = self.alpha * freq_ghz + self.beta * freq_ghz.powi(3);
        self.static_power + n_eff * per_core * (0.55 + 0.45 * u)
    }

    /// The highest frequency (GHz) sustainable under `cap_watts` with
    /// `threads` busy threads at the given utilization. Clamped to the
    /// machine's frequency range; if even the minimum frequency exceeds the
    /// cap the minimum frequency is returned (RAPL cannot go lower and will
    /// simply run at the floor).
    pub fn freq_at_cap(&self, cap_watts: f64, threads: usize, utilization: f64) -> f64 {
        if self.package_power(self.max_freq, threads, utilization) <= cap_watts {
            return self.max_freq;
        }
        if self.package_power(self.min_freq, threads, utilization) >= cap_watts {
            return self.min_freq;
        }
        // Bisection on the monotone power curve.
        let (mut lo, mut hi) = (self.min_freq, self.max_freq);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.package_power(mid, threads, utilization) > cap_watts {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        lo
    }

    /// Actual average package power drawn when running under a cap: the
    /// model power at the throttled frequency, never above the cap unless the
    /// frequency floor forces it.
    pub fn power_under_cap(&self, cap_watts: f64, threads: usize, utilization: f64) -> f64 {
        let f = self.freq_at_cap(cap_watts, threads, utilization);
        self.package_power(f, threads, utilization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{haswell, skylake};

    #[test]
    fn calibration_hits_tdp_at_base_frequency() {
        for spec in [haswell(), skylake()] {
            let pm = PowerModel::for_machine(&spec);
            let p = pm.package_power(spec.base_freq_ghz, spec.total_cores(), 1.0);
            assert!(
                (p - spec.tdp_watts).abs() / spec.tdp_watts < 0.02,
                "{}: {p} vs TDP {}",
                spec.name,
                spec.tdp_watts
            );
        }
    }

    #[test]
    fn power_is_monotone_in_frequency_threads_and_utilization() {
        let pm = PowerModel::for_machine(&haswell());
        assert!(pm.package_power(2.0, 16, 1.0) > pm.package_power(1.5, 16, 1.0));
        assert!(pm.package_power(2.0, 16, 1.0) > pm.package_power(2.0, 8, 1.0));
        assert!(pm.package_power(2.0, 16, 1.0) > pm.package_power(2.0, 16, 0.3));
    }

    #[test]
    fn lower_caps_give_lower_frequencies() {
        let spec = haswell();
        let pm = PowerModel::for_machine(&spec);
        let f40 = pm.freq_at_cap(40.0, 32, 1.0);
        let f60 = pm.freq_at_cap(60.0, 32, 1.0);
        let f85 = pm.freq_at_cap(85.0, 32, 1.0);
        assert!(f40 < f60 && f60 < f85, "{f40} {f60} {f85}");
        assert!(f40 >= spec.min_freq_ghz);
        assert!(f85 <= spec.max_freq_ghz);
    }

    #[test]
    fn fewer_threads_run_faster_under_the_same_cap() {
        let pm = PowerModel::for_machine(&skylake());
        let few = pm.freq_at_cap(75.0, 8, 1.0);
        let many = pm.freq_at_cap(75.0, 64, 1.0);
        assert!(few > many, "{few} vs {many}");
    }

    #[test]
    fn power_under_cap_respects_the_cap_when_feasible() {
        let pm = PowerModel::for_machine(&skylake());
        for cap in [75.0, 100.0, 120.0, 150.0] {
            for threads in [1usize, 8, 32, 64] {
                let p = pm.power_under_cap(cap, threads, 1.0);
                assert!(
                    p <= cap * 1.001
                        || (pm.freq_at_cap(cap, threads, 1.0) - pm.min_freq).abs() < 1e-9,
                    "cap {cap} threads {threads} power {p}"
                );
            }
        }
    }

    #[test]
    fn at_tdp_single_thread_reaches_turbo() {
        let spec = skylake();
        let pm = PowerModel::for_machine(&spec);
        let f = pm.freq_at_cap(spec.tdp_watts, 1, 1.0);
        assert!((f - spec.max_freq_ghz).abs() < 1e-6);
    }

    #[test]
    fn hyperthreads_add_fractional_power() {
        let pm = PowerModel::for_machine(&haswell());
        let p16 = pm.package_power(2.0, 16, 1.0);
        let p32 = pm.package_power(2.0, 32, 1.0);
        assert!(p32 > p16);
        assert!(p32 - p16 < (p16 - pm.static_power) * 0.5);
    }
}
