//! Energy and energy-delay-product accounting.

use serde::{Deserialize, Serialize};

/// The outcome of executing one region under one configuration: time, energy,
/// and average power.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergySample {
    /// Wall-clock execution time in seconds.
    pub time_s: f64,
    /// Package energy in joules.
    pub energy_j: f64,
}

impl EnergySample {
    /// Creates a sample.
    pub fn new(time_s: f64, energy_j: f64) -> Self {
        EnergySample { time_s, energy_j }
    }

    /// Average power in watts.
    pub fn average_power_w(&self) -> f64 {
        if self.time_s <= 0.0 {
            0.0
        } else {
            self.energy_j / self.time_s
        }
    }

    /// Energy-delay product in joule-seconds (the paper's fused metric,
    /// `E · T` with equal weight on both).
    pub fn edp(&self) -> f64 {
        self.energy_j * self.time_s
    }

    /// Speedup of this sample relative to a baseline (baseline time / this
    /// time).
    pub fn speedup_over(&self, baseline: &EnergySample) -> f64 {
        baseline.time_s / self.time_s
    }

    /// Greenup relative to a baseline (baseline energy / this energy), the
    /// metric of Choi et al. used in the paper.
    pub fn greenup_over(&self, baseline: &EnergySample) -> f64 {
        baseline.energy_j / self.energy_j
    }

    /// EDP improvement factor relative to a baseline (>1 means better).
    pub fn edp_improvement_over(&self, baseline: &EnergySample) -> f64 {
        baseline.edp() / self.edp()
    }
}

/// Energy-delay product of a `(time, energy)` pair.
pub fn edp(time_s: f64, energy_j: f64) -> f64 {
    time_s * energy_j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_power_and_edp() {
        let s = EnergySample::new(2.0, 100.0);
        assert_eq!(s.average_power_w(), 50.0);
        assert_eq!(s.edp(), 200.0);
        assert_eq!(edp(2.0, 100.0), 200.0);
    }

    #[test]
    fn zero_time_does_not_divide_by_zero() {
        let s = EnergySample::new(0.0, 10.0);
        assert_eq!(s.average_power_w(), 0.0);
    }

    #[test]
    fn speedup_greenup_and_edp_improvement() {
        let baseline = EnergySample::new(4.0, 200.0);
        let tuned = EnergySample::new(2.0, 100.0);
        assert_eq!(tuned.speedup_over(&baseline), 2.0);
        assert_eq!(tuned.greenup_over(&baseline), 2.0);
        assert_eq!(tuned.edp_improvement_over(&baseline), 4.0);
    }

    #[test]
    fn race_to_halt_counterexample_is_expressible() {
        // Faster is not always greener: tuned is quicker but uses more power.
        let baseline = EnergySample::new(4.0, 200.0); // 50 W
        let tuned = EnergySample::new(3.0, 240.0); // 80 W
        assert!(tuned.speedup_over(&baseline) > 1.0);
        assert!(tuned.greenup_over(&baseline) < 1.0);
    }
}
