//! Machine descriptions.

use crate::cache::CacheHierarchy;
use serde::{Deserialize, Serialize};

/// A description of a multi-core, multi-socket machine — the static facts the
/// performance and power models need.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable name (e.g. `"skylake"`).
    pub name: String,
    /// Number of sockets (packages).
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Hardware threads per core.
    pub threads_per_core: usize,
    /// Minimum sustainable core frequency in GHz.
    pub min_freq_ghz: f64,
    /// Nominal (base) frequency in GHz.
    pub base_freq_ghz: f64,
    /// Maximum (turbo) frequency in GHz.
    pub max_freq_ghz: f64,
    /// Package thermal design power in watts (per machine, both sockets).
    pub tdp_watts: f64,
    /// Minimum supported package power cap in watts.
    pub min_power_watts: f64,
    /// Idle/static power in watts (uncore, DRAM refresh, leakage).
    pub static_power_watts: f64,
    /// Peak double-precision FLOPs per cycle per core (SIMD width × FMA).
    pub flops_per_cycle: f64,
    /// Sustained memory bandwidth in GB/s (whole machine).
    pub mem_bandwidth_gbs: f64,
    /// Cache hierarchy.
    pub cache: CacheHierarchy,
    /// Per-chunk scheduling overhead of the OpenMP runtime in microseconds
    /// (cost of one dynamic/guided dispatch).
    pub sched_overhead_us: f64,
    /// Fork/join + barrier overhead per thread in microseconds.
    pub fork_join_us_per_thread: f64,
}

impl MachineSpec {
    /// Total physical core count.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total hardware thread count.
    pub fn total_hw_threads(&self) -> usize {
        self.total_cores() * self.threads_per_core
    }

    /// The power-cap levels used by the paper's search space for this
    /// machine (Table I): four levels from the minimum cap to TDP.
    pub fn default_power_levels(&self) -> Vec<f64> {
        match self.name.as_str() {
            "haswell" => vec![40.0, 60.0, 70.0, 85.0],
            "skylake" => vec![75.0, 100.0, 120.0, 150.0],
            _ => {
                // Generic: min, ~2/3, ~5/6, TDP.
                let lo = self.min_power_watts;
                let hi = self.tdp_watts;
                vec![lo, lo + (hi - lo) * 0.45, lo + (hi - lo) * 0.7, hi]
            }
        }
    }

    /// The thread counts exposed in the tuning search space for this machine
    /// (Table I): powers of two up to the hardware thread count.
    pub fn default_thread_counts(&self) -> Vec<usize> {
        match self.name.as_str() {
            "haswell" => vec![1, 2, 4, 8, 16, 32],
            "skylake" => vec![1, 4, 8, 16, 32, 64],
            _ => {
                let mut v = vec![1];
                let mut t = 2;
                while t <= self.total_hw_threads() {
                    v.push(t);
                    t *= 2;
                }
                v
            }
        }
    }

    /// The default OpenMP thread count (`OMP_NUM_THREADS` unset): every
    /// hardware thread.
    pub fn default_threads(&self) -> usize {
        self.total_hw_threads()
    }

    /// Peak double-precision GFLOP/s at a given frequency with `cores` active.
    pub fn peak_gflops(&self, cores: usize, freq_ghz: f64) -> f64 {
        cores as f64 * freq_ghz * self.flops_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use crate::presets::{haswell, skylake};

    #[test]
    fn core_counts_match_the_paper() {
        let h = haswell();
        let s = skylake();
        assert_eq!(h.total_cores(), 16);
        assert_eq!(h.total_hw_threads(), 32);
        assert_eq!(s.total_cores(), 32);
        assert_eq!(s.total_hw_threads(), 64);
    }

    #[test]
    fn power_levels_match_table_one() {
        assert_eq!(
            haswell().default_power_levels(),
            vec![40.0, 60.0, 70.0, 85.0]
        );
        assert_eq!(
            skylake().default_power_levels(),
            vec![75.0, 100.0, 120.0, 150.0]
        );
    }

    #[test]
    fn thread_counts_match_table_one() {
        assert_eq!(haswell().default_thread_counts(), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(skylake().default_thread_counts(), vec![1, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn default_threads_is_all_hw_threads() {
        assert_eq!(haswell().default_threads(), 32);
        assert_eq!(skylake().default_threads(), 64);
    }

    #[test]
    fn peak_gflops_scales_with_cores_and_frequency() {
        let s = skylake();
        let one = s.peak_gflops(1, 2.0);
        let many = s.peak_gflops(32, 2.0);
        assert!((many / one - 32.0).abs() < 1e-9);
        assert!(s.peak_gflops(1, 3.0) > one);
    }

    #[test]
    fn generic_machine_power_levels_are_monotone() {
        let mut m = haswell();
        m.name = "custom".into();
        let levels = m.default_power_levels();
        assert_eq!(levels.len(), 4);
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
        assert!((levels[3] - m.tdp_watts).abs() < 1e-9);
    }
}
