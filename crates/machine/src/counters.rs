//! PAPI-style hardware performance counters.
//!
//! The dynamic variant of the PnP tuner feeds five counters to the dense
//! layers: L1, L2, and L3 cache misses, retired instructions, and
//! mispredicted branches (Section IV-B). The simulator produces these from
//! the kernel's workload profile and the cache model; this module defines the
//! counter set and the normalization applied before they enter the model.

use serde::{Deserialize, Serialize};

/// One region execution's counter readings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterSet {
    /// `PAPI_L1_DCM` — L1 data-cache misses.
    pub l1_misses: f64,
    /// `PAPI_L2_TCM` — L2 cache misses.
    pub l2_misses: f64,
    /// `PAPI_L3_TCM` — L3 cache misses.
    pub l3_misses: f64,
    /// `PAPI_TOT_INS` — retired instructions.
    pub instructions: f64,
    /// `PAPI_BR_MSP` — mispredicted branches.
    pub branch_mispredictions: f64,
}

impl CounterSet {
    /// Number of counters (the feature width contributed to the model).
    pub const WIDTH: usize = 5;

    /// Miss rates and misprediction rate per thousand instructions, log-
    /// compressed — the normalized feature vector handed to the classifier.
    /// Normalizing per-instruction makes the features problem-size invariant,
    /// which is what lets the model generalize across regions.
    pub fn normalized_features(&self) -> Vec<f32> {
        let per_kilo = |x: f64| {
            if self.instructions <= 0.0 {
                0.0
            } else {
                (1.0 + x * 1000.0 / self.instructions).ln() as f32
            }
        };
        vec![
            per_kilo(self.l1_misses),
            per_kilo(self.l2_misses),
            per_kilo(self.l3_misses),
            // Instructions themselves are log-scaled to stay in a small range.
            ((1.0 + self.instructions).ln() / 30.0) as f32,
            per_kilo(self.branch_mispredictions),
        ]
    }

    /// Element-wise sum (aggregating counters over threads or sub-regions).
    pub fn combine(&self, other: &CounterSet) -> CounterSet {
        CounterSet {
            l1_misses: self.l1_misses + other.l1_misses,
            l2_misses: self.l2_misses + other.l2_misses,
            l3_misses: self.l3_misses + other.l3_misses,
            instructions: self.instructions + other.instructions,
            branch_mispredictions: self.branch_mispredictions + other.branch_mispredictions,
        }
    }

    /// Misses per kilo-instruction at each level, a common derived metric.
    pub fn mpki(&self) -> (f64, f64, f64) {
        if self.instructions <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        let k = 1000.0 / self.instructions;
        (self.l1_misses * k, self.l2_misses * k, self.l3_misses * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CounterSet {
        CounterSet {
            l1_misses: 1.0e6,
            l2_misses: 4.0e5,
            l3_misses: 1.0e5,
            instructions: 1.0e8,
            branch_mispredictions: 2.0e5,
        }
    }

    #[test]
    fn normalized_features_have_expected_width_and_are_finite() {
        let f = sample().normalized_features();
        assert_eq!(f.len(), CounterSet::WIDTH);
        assert!(f.iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    #[test]
    fn zero_instructions_do_not_produce_nan() {
        let f = CounterSet::default().normalized_features();
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn normalization_is_scale_invariant() {
        let a = sample();
        let b = CounterSet {
            l1_misses: a.l1_misses * 10.0,
            l2_misses: a.l2_misses * 10.0,
            l3_misses: a.l3_misses * 10.0,
            instructions: a.instructions * 10.0,
            branch_mispredictions: a.branch_mispredictions * 10.0,
        };
        let fa = a.normalized_features();
        let fb = b.normalized_features();
        // Per-instruction ratios (features 0,1,2,4) are unchanged; only the
        // log-instruction feature (index 3) moves.
        for i in [0usize, 1, 2, 4] {
            assert!((fa[i] - fb[i]).abs() < 1e-6);
        }
        assert!(fb[3] > fa[3]);
    }

    #[test]
    fn combine_adds_counters() {
        let c = sample().combine(&sample());
        assert_eq!(c.instructions, 2.0e8);
        assert_eq!(c.l3_misses, 2.0e5);
    }

    #[test]
    fn mpki_matches_hand_computation() {
        let (l1, l2, l3) = sample().mpki();
        assert!((l1 - 10.0).abs() < 1e-9);
        assert!((l2 - 4.0).abs() < 1e-9);
        assert!((l3 - 1.0).abs() < 1e-9);
    }
}
