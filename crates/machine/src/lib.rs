//! # pnp-machine
//!
//! The hardware substrate the paper's experiments run on, rebuilt as an
//! analytic simulator:
//!
//! * [`MachineSpec`] — descriptions of the two testbeds (a 16-core dual-socket
//!   Haswell and a 32-core dual-socket Skylake) with core counts, frequency
//!   ranges, cache hierarchy, memory bandwidth, and package power limits.
//! * [`rapl`] / [`variorum`] — a Running-Average-Power-Limit style interface
//!   for applying package power caps and reading energy counters, wrapped in
//!   a Variorum-like facade (the tool the paper uses).
//! * [`dvfs`] — the power/frequency model: under a package power cap the
//!   sustained frequency drops as more cores are active; compute-bound code
//!   therefore slows down more than memory-bound code, which is the central
//!   mechanism behind power-constrained tuning.
//! * [`cache`] / [`counters`] — an analytic cache-miss model and PAPI-style
//!   counter set (L1/L2/L3 misses, instructions, branch mispredictions) used
//!   as the *dynamic features* of the PnP tuner.
//! * [`energy`] — energy/EDP accounting.
//!
//! This substitutes for real RAPL/Variorum/PAPI access (unavailable in a
//! container), while preserving the qualitative behaviour the paper's tuning
//! problem depends on; see DESIGN.md for the substitution argument.

pub mod cache;
pub mod counters;
pub mod dvfs;
pub mod energy;
pub mod machine;
pub mod presets;
pub mod rapl;
pub mod variorum;

pub use cache::CacheHierarchy;
pub use counters::CounterSet;
pub use dvfs::PowerModel;
pub use energy::{edp, EnergySample};
pub use machine::MachineSpec;
pub use presets::{haswell, skylake};
pub use rapl::{PowerCapError, RaplDomain, RaplPackage};
pub use variorum::Variorum;
