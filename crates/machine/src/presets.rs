//! The two testbed machines used in the paper's evaluation.

use crate::cache::CacheHierarchy;
use crate::machine::MachineSpec;

/// The Haswell testbed: a dual-socket Intel Xeon E5-2630 v3 — 16 cores,
/// 2 hyper-threads per core, package power range 40–85 W (Section IV-A).
pub fn haswell() -> MachineSpec {
    MachineSpec {
        name: "haswell".into(),
        sockets: 2,
        cores_per_socket: 8,
        threads_per_core: 2,
        min_freq_ghz: 1.2,
        base_freq_ghz: 2.4,
        max_freq_ghz: 3.2,
        tdp_watts: 85.0,
        min_power_watts: 40.0,
        static_power_watts: 18.0,
        // 4-wide AVX2 FMA: 2 × 4 × 2 = 16 DP flops/cycle is the theoretical
        // peak; sustained codes reach far less, use a realistic 8.
        flops_per_cycle: 8.0,
        mem_bandwidth_gbs: 59.0,
        cache: CacheHierarchy {
            l1_kib: 32.0,
            l2_kib: 256.0,
            l3_mib: 20.0,
            line_bytes: 64.0,
            l1_latency_cycles: 4.0,
            l2_latency_cycles: 12.0,
            l3_latency_cycles: 34.0,
            dram_latency_ns: 90.0,
        },
        sched_overhead_us: 0.35,
        fork_join_us_per_thread: 0.9,
    }
}

/// The Skylake testbed: a dual-socket Intel Xeon Gold 6142 — 32 cores,
/// 2 hyper-threads per core, package power range 75–150 W (Section IV-A).
pub fn skylake() -> MachineSpec {
    MachineSpec {
        name: "skylake".into(),
        sockets: 2,
        cores_per_socket: 16,
        threads_per_core: 2,
        min_freq_ghz: 1.0,
        base_freq_ghz: 2.6,
        max_freq_ghz: 3.7,
        tdp_watts: 150.0,
        min_power_watts: 75.0,
        static_power_watts: 28.0,
        // AVX-512 FMA peak is 32 DP flops/cycle; sustained realistic value.
        flops_per_cycle: 12.0,
        mem_bandwidth_gbs: 119.0,
        cache: CacheHierarchy {
            l1_kib: 32.0,
            l2_kib: 1024.0,
            l3_mib: 22.0,
            line_bytes: 64.0,
            l1_latency_cycles: 4.0,
            l2_latency_cycles: 14.0,
            l3_latency_cycles: 44.0,
            dram_latency_ns: 85.0,
        },
        sched_overhead_us: 0.3,
        fork_join_us_per_thread: 0.7,
    }
}

/// Both testbeds, in the order the paper reports them.
pub fn all_machines() -> Vec<MachineSpec> {
    vec![skylake(), haswell()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdp_and_min_power_match_the_paper() {
        let h = haswell();
        assert_eq!(h.tdp_watts, 85.0);
        assert_eq!(h.min_power_watts, 40.0);
        let s = skylake();
        assert_eq!(s.tdp_watts, 150.0);
        assert_eq!(s.min_power_watts, 75.0);
    }

    #[test]
    fn skylake_is_bigger_than_haswell() {
        let h = haswell();
        let s = skylake();
        assert!(s.total_cores() > h.total_cores());
        assert!(s.mem_bandwidth_gbs > h.mem_bandwidth_gbs);
        assert!(
            s.peak_gflops(s.total_cores(), s.base_freq_ghz)
                > h.peak_gflops(h.total_cores(), h.base_freq_ghz)
        );
    }

    #[test]
    fn all_machines_lists_both() {
        let ms = all_machines();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].name, "skylake");
        assert_eq!(ms[1].name, "haswell");
    }

    #[test]
    fn frequencies_are_ordered() {
        for m in all_machines() {
            assert!(m.min_freq_ghz < m.base_freq_ghz);
            assert!(m.base_freq_ghz < m.max_freq_ghz);
            assert!(m.static_power_watts < m.min_power_watts);
        }
    }
}
