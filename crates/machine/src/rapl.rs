//! A RAPL-style power capping and energy metering interface.
//!
//! On the real testbeds the paper constrains package power through the
//! Running Average Power Limit MSRs (via Variorum) and reads energy through
//! the RAPL energy status counters (via PAPI). This module models the same
//! interface: per-package domains with a settable power limit and a
//! monotonically increasing energy counter, including the counter's 32-bit
//! wraparound behaviour.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from power-cap operations.
#[derive(Clone, Debug, PartialEq)]
pub enum PowerCapError {
    /// Requested cap below the platform minimum.
    BelowMinimum {
        /// Requested watts.
        requested: f64,
        /// Minimum supported watts.
        minimum: f64,
    },
    /// Requested cap above TDP.
    AboveMaximum {
        /// Requested watts.
        requested: f64,
        /// Maximum supported watts (TDP).
        maximum: f64,
    },
}

impl fmt::Display for PowerCapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerCapError::BelowMinimum { requested, minimum } => write!(
                f,
                "requested power cap {requested:.1} W is below the platform minimum {minimum:.1} W"
            ),
            PowerCapError::AboveMaximum { requested, maximum } => write!(
                f,
                "requested power cap {requested:.1} W is above the platform maximum {maximum:.1} W"
            ),
        }
    }
}

impl std::error::Error for PowerCapError {}

/// One RAPL package domain (a socket).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RaplDomain {
    /// Socket index.
    pub socket: usize,
    /// Current package power limit in watts.
    pub power_limit_watts: f64,
    /// Minimum settable limit in watts.
    pub min_watts: f64,
    /// Maximum settable limit (TDP share) in watts.
    pub max_watts: f64,
    /// Energy counter in micro-joules (wraps like the real 32-bit MSR).
    energy_uj: u64,
    /// Total energy ever accumulated, for convenience (no wraparound).
    total_energy_j: f64,
}

/// Wraparound limit of the energy status counter (32-bit micro-joules).
const ENERGY_WRAP_UJ: u64 = u32::MAX as u64;

impl RaplDomain {
    /// Creates a domain with the limit set to its maximum (no constraint).
    pub fn new(socket: usize, min_watts: f64, max_watts: f64) -> Self {
        RaplDomain {
            socket,
            power_limit_watts: max_watts,
            min_watts,
            max_watts,
            energy_uj: 0,
            total_energy_j: 0.0,
        }
    }

    /// Sets the package power limit.
    pub fn set_power_limit(&mut self, watts: f64) -> Result<(), PowerCapError> {
        if watts < self.min_watts {
            return Err(PowerCapError::BelowMinimum {
                requested: watts,
                minimum: self.min_watts,
            });
        }
        if watts > self.max_watts {
            return Err(PowerCapError::AboveMaximum {
                requested: watts,
                maximum: self.max_watts,
            });
        }
        self.power_limit_watts = watts;
        Ok(())
    }

    /// Accumulates `joules` of consumed energy into the counter.
    pub fn add_energy(&mut self, joules: f64) {
        assert!(joules >= 0.0, "energy cannot decrease");
        self.total_energy_j += joules;
        let uj = (joules * 1e6) as u64;
        self.energy_uj = (self.energy_uj + uj) % ENERGY_WRAP_UJ;
    }

    /// Raw energy counter in micro-joules (wraps around like hardware).
    pub fn energy_counter_uj(&self) -> u64 {
        self.energy_uj
    }

    /// Total energy in joules since creation (never wraps).
    pub fn total_energy_joules(&self) -> f64 {
        self.total_energy_j
    }
}

/// All RAPL package domains of a machine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RaplPackage {
    /// One domain per socket.
    pub domains: Vec<RaplDomain>,
}

impl RaplPackage {
    /// Creates one domain per socket; `min_watts`/`max_watts` are machine
    /// totals split evenly across sockets.
    pub fn new(sockets: usize, min_watts: f64, max_watts: f64) -> Self {
        let per = sockets.max(1) as f64;
        RaplPackage {
            domains: (0..sockets)
                .map(|s| RaplDomain::new(s, min_watts / per, max_watts / per))
                .collect(),
        }
    }

    /// Sets a machine-wide power limit by splitting it evenly across sockets.
    pub fn set_node_power_limit(&mut self, watts: f64) -> Result<(), PowerCapError> {
        let per = watts / self.domains.len().max(1) as f64;
        for d in &mut self.domains {
            d.set_power_limit(per)?;
        }
        Ok(())
    }

    /// Current machine-wide limit (sum over sockets).
    pub fn node_power_limit(&self) -> f64 {
        self.domains.iter().map(|d| d.power_limit_watts).sum()
    }

    /// Adds machine-wide energy, split evenly across sockets.
    pub fn add_node_energy(&mut self, joules: f64) {
        let per = joules / self.domains.len().max(1) as f64;
        for d in &mut self.domains {
            d.add_energy(per);
        }
    }

    /// Total machine energy in joules.
    pub fn total_energy_joules(&self) -> f64 {
        self.domains.iter().map(|d| d.total_energy_joules()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_limit_within_range_succeeds() {
        let mut d = RaplDomain::new(0, 20.0, 42.5);
        assert!(d.set_power_limit(30.0).is_ok());
        assert_eq!(d.power_limit_watts, 30.0);
    }

    #[test]
    fn out_of_range_limits_are_rejected() {
        let mut d = RaplDomain::new(0, 20.0, 42.5);
        assert!(matches!(
            d.set_power_limit(10.0),
            Err(PowerCapError::BelowMinimum { .. })
        ));
        assert!(matches!(
            d.set_power_limit(50.0),
            Err(PowerCapError::AboveMaximum { .. })
        ));
        // limit unchanged after failed attempts
        assert_eq!(d.power_limit_watts, 42.5);
    }

    #[test]
    fn energy_counter_wraps_but_total_does_not() {
        let mut d = RaplDomain::new(0, 10.0, 50.0);
        // 5000 J = 5e9 µJ > 2^32 µJ, so the raw counter must wrap.
        d.add_energy(5000.0);
        assert!(d.energy_counter_uj() < ENERGY_WRAP_UJ);
        assert!((d.total_energy_joules() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn node_limit_splits_across_sockets() {
        let mut p = RaplPackage::new(2, 40.0, 85.0);
        p.set_node_power_limit(60.0).unwrap();
        assert!((p.node_power_limit() - 60.0).abs() < 1e-9);
        for d in &p.domains {
            assert!((d.power_limit_watts - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn node_energy_accumulates_over_domains() {
        let mut p = RaplPackage::new(2, 40.0, 85.0);
        p.add_node_energy(100.0);
        p.add_node_energy(50.0);
        assert!((p.total_energy_joules() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = PowerCapError::BelowMinimum {
            requested: 10.0,
            minimum: 20.0,
        };
        assert!(e.to_string().contains("below"));
    }
}
