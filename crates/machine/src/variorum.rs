//! A Variorum-like facade over the RAPL model.
//!
//! The paper uses LLNL's Variorum library to apply power caps and read power
//! data without touching MSRs directly. This facade provides the same small
//! API surface over [`crate::rapl`]: node-level best-effort power capping and
//! power/energy queries, bound to one machine's [`PowerModel`].

use crate::dvfs::PowerModel;
use crate::machine::MachineSpec;
use crate::rapl::{PowerCapError, RaplPackage};
use serde::{Deserialize, Serialize};

/// Handle for applying power caps and reading power on one (simulated) node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Variorum {
    /// The machine being controlled.
    pub machine: MachineSpec,
    /// Calibrated power model.
    pub power_model: PowerModel,
    rapl: RaplPackage,
}

impl Variorum {
    /// Opens a handle on a machine, with the cap initially at TDP.
    pub fn new(machine: MachineSpec) -> Self {
        let power_model = PowerModel::for_machine(&machine);
        let rapl = RaplPackage::new(machine.sockets, machine.min_power_watts, machine.tdp_watts);
        Variorum {
            machine,
            power_model,
            rapl,
        }
    }

    /// `variorum_cap_best_effort_node_power_limit`: applies a node-wide cap.
    pub fn cap_node_power_limit(&mut self, watts: f64) -> Result<(), PowerCapError> {
        self.rapl.set_node_power_limit(watts)
    }

    /// The currently applied node power cap in watts.
    pub fn node_power_limit(&self) -> f64 {
        self.rapl.node_power_limit()
    }

    /// The sustained core frequency under the current cap for a workload
    /// using `threads` threads at the given utilization.
    pub fn sustained_frequency_ghz(&self, threads: usize, utilization: f64) -> f64 {
        self.power_model
            .freq_at_cap(self.node_power_limit(), threads, utilization)
    }

    /// Average node power drawn by such a workload under the current cap.
    pub fn node_power_watts(&self, threads: usize, utilization: f64) -> f64 {
        self.power_model
            .power_under_cap(self.node_power_limit(), threads, utilization)
    }

    /// Records that a region ran for `seconds` at `threads`/`utilization`,
    /// charging the corresponding energy to the RAPL counters and returning
    /// the energy in joules.
    pub fn record_execution(&mut self, seconds: f64, threads: usize, utilization: f64) -> f64 {
        let power = self.node_power_watts(threads, utilization);
        let energy = power * seconds;
        self.rapl.add_node_energy(energy);
        energy
    }

    /// Total energy charged so far, in joules.
    pub fn total_energy_joules(&self) -> f64 {
        self.rapl.total_energy_joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::haswell;

    #[test]
    fn capping_reduces_sustained_frequency() {
        let mut v = Variorum::new(haswell());
        let f_tdp = v.sustained_frequency_ghz(32, 1.0);
        v.cap_node_power_limit(40.0).unwrap();
        let f_low = v.sustained_frequency_ghz(32, 1.0);
        assert!(f_low < f_tdp);
    }

    #[test]
    fn invalid_caps_are_rejected() {
        let mut v = Variorum::new(haswell());
        assert!(v.cap_node_power_limit(10.0).is_err());
        assert!(v.cap_node_power_limit(500.0).is_err());
        assert!(v.cap_node_power_limit(60.0).is_ok());
        assert!((v.node_power_limit() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn recorded_energy_equals_power_times_time() {
        let mut v = Variorum::new(haswell());
        v.cap_node_power_limit(70.0).unwrap();
        let p = v.node_power_watts(16, 0.8);
        let e = v.record_execution(2.0, 16, 0.8);
        assert!((e - 2.0 * p).abs() < 1e-9);
        assert!((v.total_energy_joules() - e).abs() < 1e-9);
    }

    #[test]
    fn power_never_exceeds_cap_when_feasible() {
        let mut v = Variorum::new(haswell());
        for cap in [40.0, 60.0, 70.0, 85.0] {
            v.cap_node_power_limit(cap).unwrap();
            let p = v.node_power_watts(32, 1.0);
            let at_floor =
                (v.sustained_frequency_ghz(32, 1.0) - v.power_model.min_freq).abs() < 1e-9;
            assert!(p <= cap * 1.001 || at_floor, "cap {cap}: power {p}");
        }
    }
}
