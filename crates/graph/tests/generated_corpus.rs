//! Encode-path hardening over the generated kernel corpus (ISSUE 6): every
//! kernel the `pnp_ir::gen` generator can emit must flow through
//! lower → region graph → vocabulary encode with zero out-of-vocabulary
//! nodes and a structurally valid [`EncodedGraph`]. The closed-over-the-IR
//! vocabulary is only sound if *novel* shapes — not just the frozen paper
//! suite — stay fully in-vocabulary.

use pnp_graph::builder::build_region_graph;
use pnp_graph::vocab::{EncodedGraph, Vocabulary};
use pnp_ir::gen::corpus;
use pnp_ir::lower::try_lower_kernel;
use pnp_ir::verify::verify_module;

#[test]
fn generated_corpus_encodes_with_zero_oov() {
    let vocab = Vocabulary::standard();
    for (i, k) in corpus(0xC0FFEE, 32).iter().enumerate() {
        let m = try_lower_kernel("gen_app", std::slice::from_ref(&k.source))
            .unwrap_or_else(|e| panic!("kernel {i}: {e}"));
        verify_module(&m).unwrap_or_else(|e| panic!("kernel {i}: {e:?}"));
        let g = build_region_graph(&m, &k.source.name)
            .unwrap_or_else(|| panic!("kernel {i}: no region graph for {}", k.source.name));
        assert_eq!(
            vocab.oov_rate(&g),
            0.0,
            "kernel {i} ({}) produced out-of-vocabulary node texts",
            k.source.name
        );
        let enc = EncodedGraph::encode(&g, &vocab);
        enc.validate(vocab.len())
            .unwrap_or_else(|e| panic!("kernel {i}: {e}"));
        assert!(enc.num_instruction_nodes() > 0, "kernel {i}");
    }
}

#[test]
fn encoded_graph_validate_catches_corruption() {
    let vocab = Vocabulary::standard();
    let k = &corpus(1, 1)[0];
    let m = try_lower_kernel("gen_app", std::slice::from_ref(&k.source)).unwrap();
    let g = build_region_graph(&m, &k.source.name).unwrap();
    let enc = EncodedGraph::encode(&g, &vocab);
    assert!(enc.validate(vocab.len()).is_ok());

    // Token id past the vocabulary.
    let mut bad = enc.clone();
    bad.tokens[0] = vocab.len();
    assert!(bad.validate(vocab.len()).unwrap_err().contains("token id"));

    // Kind index past the kind count.
    let mut bad = enc.clone();
    bad.kinds[0] = 3;
    assert!(bad
        .validate(vocab.len())
        .unwrap_err()
        .contains("kind index"));

    // Dangling edge endpoint.
    let mut bad = enc.clone();
    let n = bad.num_nodes();
    bad.relations[0].push((0, n));
    assert!(bad.validate(vocab.len()).unwrap_err().contains("edge"));

    // Length mismatch between tokens and kinds.
    let mut bad = enc.clone();
    bad.kinds.pop();
    assert!(bad.validate(vocab.len()).unwrap_err().contains("kinds"));
}
