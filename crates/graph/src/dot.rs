//! Graphviz DOT export for visual inspection of code graphs.

use crate::edge::EdgeFlow;
use crate::graph::CodeGraph;
use crate::node::NodeKind;
use std::fmt::Write;

/// Renders a code graph in Graphviz DOT format.
///
/// Instruction nodes are boxes, variables are ellipses, constants are
/// diamonds; control edges are solid, data edges dashed, call edges dotted —
/// the same visual conventions as the PROGRAML paper's figures.
pub fn to_dot(graph: &CodeGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name.replace('"', "'"));
    let _ = writeln!(out, "  rankdir=TB;");
    for node in &graph.nodes {
        let shape = match node.kind {
            NodeKind::Instruction => "box",
            NodeKind::Variable => "ellipse",
            NodeKind::Constant => "diamond",
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", shape={}];",
            node.id,
            node.text.replace('"', "'"),
            shape
        );
    }
    for edge in &graph.edges {
        let style = match edge.flow {
            EdgeFlow::Control => "solid",
            EdgeFlow::Data => "dashed",
            EdgeFlow::Call => "dotted",
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [style={}, label=\"{}\"];",
            edge.src, edge.dst, style, edge.position
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_contains_all_nodes_and_edges() {
        let mut g = CodeGraph::new("tiny");
        let a = g.add_node(NodeKind::Instruction, "load double", "f");
        let b = g.add_node(NodeKind::Variable, "double", "f");
        let c = g.add_node(NodeKind::Constant, "i32", "f");
        g.add_edge(a, b, EdgeFlow::Data, 0);
        g.add_edge(c, a, EdgeFlow::Data, 1);
        g.add_edge(a, a, EdgeFlow::Control, 0);

        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("shape=box").count(), 1);
        assert_eq!(dot.matches("shape=ellipse").count(), 1);
        assert_eq!(dot.matches("shape=diamond").count(), 1);
        assert_eq!(dot.matches("->").count(), 3);
        assert!(dot.contains("style=dashed"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let mut g = CodeGraph::new("has\"quote");
        g.add_node(NodeKind::Instruction, "text\"with quote", "f");
        let dot = to_dot(&g);
        assert!(!dot.contains("\"\"")); // no raw double quotes breaking syntax
    }
}
