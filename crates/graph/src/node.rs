//! Graph nodes.

use serde::{Deserialize, Serialize};

/// The three PROGRAML node kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An IR instruction.
    Instruction,
    /// An SSA value or function argument.
    Variable,
    /// A literal constant operand.
    Constant,
}

impl NodeKind {
    /// Number of distinct node kinds (valid indices are `0..COUNT`).
    pub const COUNT: usize = 3;

    /// Small integer encoding fed to the model alongside the text token.
    pub fn index(self) -> usize {
        match self {
            NodeKind::Instruction => 0,
            NodeKind::Variable => 1,
            NodeKind::Constant => 2,
        }
    }
}

/// A node in the code graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Dense node id (index into `CodeGraph::nodes`).
    pub id: usize,
    /// Node kind.
    pub kind: NodeKind,
    /// Node text — the string that is tokenized by the vocabulary
    /// (e.g. `"fadd double"` for instructions, `"double*"` for variables,
    /// `"i32 0"` for constants).
    pub text: String,
    /// Name of the IR function this node came from (regions and their helper
    /// callees live in one graph).
    pub function: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_distinct() {
        assert_eq!(NodeKind::Instruction.index(), 0);
        assert_eq!(NodeKind::Variable.index(), 1);
        assert_eq!(NodeKind::Constant.index(), 2);
    }
}
