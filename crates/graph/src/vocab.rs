//! The node-text vocabulary.
//!
//! Node texts (instruction mnemonics with types, variable types, constant
//! types) are mapped to dense token ids. The embedding layer of the GNN model
//! turns these ids into vectors — the "embedding that maps IR text to
//! tensors" of Section III-D1.
//!
//! The vocabulary is *closed over the IR definition*, not learned from data:
//! it enumerates every opcode × result-type combination the lowering can
//! produce, plus variable/constant type strings, plus an `<unk>` fallback.
//! This keeps token ids stable across machines and experiments, which is what
//! makes the transfer-learning experiment (reusing GNN weights across
//! systems) possible.

use pnp_ir::{Opcode, Type};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::graph::CodeGraph;
use crate::node::NodeKind;

/// A bidirectional mapping between node text and token ids.
///
/// `token_to_id` is a `BTreeMap` so the serialized artifact bytes are a
/// function of the vocabulary contents alone, never of the map's internal
/// ordering — registry records hash the artifact, so byte stability is a
/// contract, not a nicety.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vocabulary {
    token_to_id: BTreeMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Vocabulary {
    /// Builds the standard PROGRAML-style vocabulary over the IR definition.
    pub fn standard() -> Self {
        let mut v = Vocabulary {
            token_to_id: BTreeMap::new(),
            id_to_token: Vec::new(),
        };
        let types = [
            Type::I1,
            Type::I32,
            Type::I64,
            Type::F32,
            Type::F64,
            Type::I32.ptr(),
            Type::I64.ptr(),
            Type::F32.ptr(),
            Type::F64.ptr(),
        ];

        // Instruction node texts: mnemonic alone (void results) and mnemonic
        // with each result type.
        for op in Opcode::all() {
            v.intern(op.mnemonic());
            for ty in &types {
                v.intern(&format!("{} {}", op.mnemonic(), ty));
            }
        }
        // Variable node texts: type strings.
        for ty in &types {
            v.intern(&ty.to_string());
        }
        v.intern("void");
        // Constant node texts are also type strings (already interned), but
        // keep the unknown token last by convention.
        v.intern("<unk>");
        v
    }

    fn intern(&mut self, token: &str) -> usize {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len();
        self.token_to_id.insert(token.to_string(), id);
        self.id_to_token.push(token.to_string());
        id
    }

    /// Number of tokens (including `<unk>`).
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when the vocabulary is empty (never the case for `standard`).
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// The id of the `<unk>` token.
    pub fn unk_id(&self) -> usize {
        self.token_to_id["<unk>"]
    }

    /// Looks up a token, falling back to `<unk>`.
    pub fn id_of(&self, token: &str) -> usize {
        *self
            .token_to_id
            .get(token)
            .unwrap_or(&self.token_to_id["<unk>"])
    }

    /// The token text of an id.
    pub fn token(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// Encodes every node of a graph into a token id sequence (indexed by
    /// node id).
    pub fn encode_graph(&self, graph: &CodeGraph) -> Vec<usize> {
        graph.nodes.iter().map(|n| self.id_of(&n.text)).collect()
    }

    /// Fraction of nodes in a graph that map to `<unk>` — a data-quality
    /// diagnostic used in tests.
    pub fn oov_rate(&self, graph: &CodeGraph) -> f64 {
        if graph.nodes.is_empty() {
            return 0.0;
        }
        let unk = self.unk_id();
        let n = graph
            .nodes
            .iter()
            .filter(|node| self.id_of(&node.text) == unk)
            .count();
        n as f64 / graph.nodes.len() as f64
    }
}

impl Default for Vocabulary {
    fn default() -> Self {
        Self::standard()
    }
}

/// Per-node model inputs: the text token id plus the node-kind index.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EncodedGraph {
    /// Graph name.
    pub name: String,
    /// Token id per node.
    pub tokens: Vec<usize>,
    /// Node-kind index per node (instruction/variable/constant).
    pub kinds: Vec<usize>,
    /// Edge lists per relation, as `(src, dst)` pairs.
    pub relations: Vec<Vec<(usize, usize)>>,
}

impl EncodedGraph {
    /// Encodes a graph with a vocabulary.
    pub fn encode(graph: &CodeGraph, vocab: &Vocabulary) -> Self {
        EncodedGraph {
            name: graph.name.clone(),
            tokens: vocab.encode_graph(graph),
            kinds: graph.nodes.iter().map(|n| n.kind.index()).collect(),
            relations: graph.edges_by_relation(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.tokens.len()
    }

    /// Number of instruction nodes.
    pub fn num_instruction_nodes(&self) -> usize {
        self.kinds
            .iter()
            .filter(|&&k| k == NodeKind::Instruction.index())
            .count()
    }

    /// Structural self-check, used to harden the encode path against unseen
    /// graph shapes (e.g. generated kernels): token/kind lists must be
    /// parallel, kind indices must name a real [`NodeKind`], token ids must
    /// fit `vocab_len`, and every edge endpoint must be a real node.
    pub fn validate(&self, vocab_len: usize) -> Result<(), String> {
        if self.tokens.len() != self.kinds.len() {
            return Err(format!(
                "{}: {} tokens but {} kinds",
                self.name,
                self.tokens.len(),
                self.kinds.len()
            ));
        }
        if let Some(&t) = self.tokens.iter().find(|&&t| t >= vocab_len) {
            return Err(format!(
                "{}: token id {t} out of range for vocabulary of {vocab_len}",
                self.name
            ));
        }
        if let Some(&k) = self.kinds.iter().find(|&&k| k >= NodeKind::COUNT) {
            return Err(format!(
                "{}: node kind index {k} out of range (max {})",
                self.name,
                NodeKind::COUNT - 1
            ));
        }
        let n = self.num_nodes();
        for (rel, edges) in self.relations.iter().enumerate() {
            if let Some(&(s, d)) = edges.iter().find(|&&(s, d)| s >= n || d >= n) {
                return Err(format!(
                    "{}: relation {rel} edge ({s}, {d}) out of range for {n} nodes",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_region_graph;
    use pnp_ir::dsl::*;
    use pnp_ir::lower_kernel;

    #[test]
    fn standard_vocab_is_reasonably_sized_and_stable() {
        let v1 = Vocabulary::standard();
        let v2 = Vocabulary::standard();
        assert!(v1.len() > 100);
        assert!(v1.len() < 1000);
        assert_eq!(v1.len(), v2.len());
        assert_eq!(v1.id_of("fadd double"), v2.id_of("fadd double"));
    }

    #[test]
    fn serialized_vocabulary_bytes_are_deterministic() {
        // Byte-identical output across independently built instances is what
        // lets the artifact store content-address trained models. BTreeMap
        // guarantees this regardless of serializer behavior; the round trip
        // must also preserve every id.
        let v1 = Vocabulary::standard();
        let v2 = Vocabulary::standard();
        let b1 = serde_json::to_string(&v1).unwrap();
        let b2 = serde_json::to_string(&v2).unwrap();
        assert_eq!(b1, b2);
        let back: Vocabulary = serde_json::from_str(&b1).unwrap();
        assert_eq!(back.len(), v1.len());
        assert_eq!(back.id_of("fadd double"), v1.id_of("fadd double"));
        assert_eq!(back.unk_id(), v1.unk_id());
    }

    #[test]
    fn unknown_tokens_map_to_unk() {
        let v = Vocabulary::standard();
        assert_eq!(v.id_of("definitely not a token"), v.unk_id());
        assert_eq!(v.token(v.unk_id()), "<unk>");
    }

    #[test]
    fn lowered_region_has_zero_oov_rate() {
        let region = RegionSource {
            name: "r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d2("A", "N", "N")],
            scalars: vec!["alpha".into()],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Loop(LoopNest::new(
                    "j",
                    LoopBound::Param("N".into()),
                    vec![Stmt::Accumulate {
                        target: ArrayRef::d2("A", IndexExpr::var("i"), IndexExpr::var("j")),
                        op: BinOp::Add,
                        value: Expr::Math(MathFn::Sqrt, vec![Expr::Scalar("alpha".into())]),
                    }],
                ))],
            ),
        };
        let m = lower_kernel("app", &[region]);
        let g = build_region_graph(&m, "r0").unwrap();
        let v = Vocabulary::standard();
        assert_eq!(
            v.oov_rate(&g),
            0.0,
            "every generated node text must be in-vocabulary"
        );
    }

    #[test]
    fn encoded_graph_preserves_structure() {
        let region = RegionSource {
            name: "r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d1("A", "N")],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Assign {
                    target: ArrayRef::d1("A", IndexExpr::var("i")),
                    value: Expr::Const(1.0),
                }],
            ),
        };
        let m = lower_kernel("app", &[region]);
        let g = build_region_graph(&m, "r0").unwrap();
        let v = Vocabulary::standard();
        let enc = EncodedGraph::encode(&g, &v);
        assert_eq!(enc.num_nodes(), g.num_nodes());
        assert_eq!(enc.relations.len(), 3);
        let total_edges: usize = enc.relations.iter().map(|r| r.len()).sum();
        assert_eq!(total_edges, g.num_edges());
        assert!(enc.num_instruction_nodes() > 0);
    }
}
