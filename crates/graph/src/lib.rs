//! # pnp-graph
//!
//! Flow-aware code graphs in the PROGRAML schema, built from `pnp-ir`
//! modules. These graphs are the *static features* of the PnP tuner: every
//! OpenMP region is represented as a multigraph with
//!
//! * **instruction** nodes (one per IR instruction),
//! * **variable** nodes (one per SSA value / function argument), and
//! * **constant** nodes (one per literal operand),
//!
//! connected by **control-flow**, **data-flow**, and **call-flow** edges —
//! the three edge relations the paper's RGCN consumes.
//!
//! The [`vocab::Vocabulary`] maps node text (e.g. `"fadd double"`) to token
//! ids which the GNN embeds; [`features::GraphFeatures`] additionally exposes
//! coarse structural statistics used in tests and ablations.

pub mod builder;
pub mod dot;
pub mod edge;
pub mod features;
pub mod graph;
pub mod node;
pub mod vocab;

pub use builder::{build_graph, build_region_graph};
pub use edge::{Edge, EdgeFlow};
pub use features::GraphFeatures;
pub use graph::CodeGraph;
pub use node::{Node, NodeKind};
pub use vocab::{EncodedGraph, Vocabulary};
