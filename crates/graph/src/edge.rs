//! Graph edges.

use serde::{Deserialize, Serialize};

/// The three PROGRAML edge relations. The RGCN learns one weight matrix per
/// relation (and direction), which is exactly why typed edges matter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeFlow {
    /// Control flow between instructions.
    Control,
    /// Data flow between values/constants and instructions.
    Data,
    /// Call flow between call sites and callee entry/exit instructions.
    Call,
}

impl EdgeFlow {
    /// Dense relation index (0..[`EdgeFlow::COUNT`]).
    pub fn index(self) -> usize {
        match self {
            EdgeFlow::Control => 0,
            EdgeFlow::Data => 1,
            EdgeFlow::Call => 2,
        }
    }

    /// Number of edge relations.
    pub const COUNT: usize = 3;

    /// All relations in index order.
    pub fn all() -> [EdgeFlow; EdgeFlow::COUNT] {
        [EdgeFlow::Control, EdgeFlow::Data, EdgeFlow::Call]
    }
}

/// A directed, typed edge.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node id.
    pub src: usize,
    /// Destination node id.
    pub dst: usize,
    /// Relation type.
    pub flow: EdgeFlow,
    /// Position (operand index for data edges, successor index for control
    /// edges) — PROGRAML keeps this to disambiguate operand order.
    pub position: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_indices_cover_count() {
        let all = EdgeFlow::all();
        assert_eq!(all.len(), EdgeFlow::COUNT);
        for (i, f) in all.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }
}
