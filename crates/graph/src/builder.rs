//! Construction of PROGRAML-style graphs from `pnp-ir` modules.
//!
//! The construction follows Cummins et al. (PROGRAML):
//!
//! * one **instruction node** per IR instruction, labelled with its mnemonic
//!   and result type;
//! * one **variable node** per SSA value and per function argument, labelled
//!   with its type;
//! * one **constant node** per literal operand occurrence, labelled with its
//!   type and value;
//! * **control edges** between consecutive instructions and from terminators
//!   to the first instruction of each successor block (position = successor
//!   index);
//! * **data edges** from a defining instruction to its value node and from
//!   value/constant nodes to the instructions that use them (position =
//!   operand index);
//! * **call edges** from call instructions to the entry instruction of the
//!   callee, and from the callee's `ret` instructions back to the call site.

use crate::edge::EdgeFlow;
use crate::graph::CodeGraph;
use crate::node::NodeKind;
use pnp_ir::{extract_region, Module, Opcode, Operand};
// Determinism audit: every HashMap below (`inst_node`, `entry_node`,
// `ret_nodes`, `arg_node`, `value_node`) is lookup-only — node and edge
// emission order is driven entirely by the module's function / block /
// instruction vectors, so hash ordering never reaches the graph. Switch to
// BTreeMap before iterating any of them.
use std::collections::HashMap;

/// Builds the code graph of one OpenMP region of a lowered application
/// module. Returns `None` when the region does not exist.
pub fn build_region_graph(module: &Module, region_name: &str) -> Option<CodeGraph> {
    let extracted = extract_region(module, region_name)?;
    let mut g = build_graph(&extracted);
    g.name = format!("{}:{}", module.name, region_name);
    Some(g)
}

/// Builds the code graph of an entire module (all functions it contains).
pub fn build_graph(module: &Module) -> CodeGraph {
    let mut g = CodeGraph::new(module.name.clone());

    // First pass: instruction nodes, plus per-function bookkeeping.
    // Keyed by (function name, inst id) → node id.
    let mut inst_node: HashMap<(String, u32), usize> = HashMap::new();
    // Function name → node id of its entry instruction.
    let mut entry_node: HashMap<String, usize> = HashMap::new();
    // Function name → node ids of its `ret` instructions.
    let mut ret_nodes: HashMap<String, Vec<usize>> = HashMap::new();

    for func in &module.functions {
        let mut first = true;
        for block in &func.blocks {
            for inst in &block.insts {
                let id = g.add_node(NodeKind::Instruction, inst.node_text(), &func.name);
                inst_node.insert((func.name.clone(), inst.id), id);
                if first {
                    entry_node.insert(func.name.clone(), id);
                    first = false;
                }
                if inst.opcode == Opcode::Ret {
                    ret_nodes.entry(func.name.clone()).or_default().push(id);
                }
            }
        }
    }

    // Second pass: variable nodes for SSA values and arguments, constant
    // nodes, and all edges.
    for func in &module.functions {
        // Variable node per argument.
        let mut arg_node: HashMap<usize, usize> = HashMap::new();
        for (idx, (_, ty)) in func.params.iter().enumerate() {
            let id = g.add_node(NodeKind::Variable, ty.to_string(), &func.name);
            arg_node.insert(idx, id);
        }

        // Variable node per value-defining instruction, with a data edge
        // from the defining instruction to the value node.
        let mut value_node: HashMap<u32, usize> = HashMap::new();
        for inst in func.insts() {
            if inst.defines_value() {
                let vid = g.add_node(NodeKind::Variable, inst.ty.to_string(), &func.name);
                value_node.insert(inst.id, vid);
                let src = inst_node[&(func.name.clone(), inst.id)];
                g.add_edge(src, vid, EdgeFlow::Data, 0);
            }
        }

        // Control-flow edges and operand (data/call) edges.
        for block in &func.blocks {
            // Consecutive instructions within the block.
            for pair in block.insts.windows(2) {
                let a = inst_node[&(func.name.clone(), pair[0].id)];
                let b = inst_node[&(func.name.clone(), pair[1].id)];
                g.add_edge(a, b, EdgeFlow::Control, 0);
            }
            // Terminator to first instruction of each successor block.
            if let Some(term) = block.terminator() {
                let t = inst_node[&(func.name.clone(), term.id)];
                for (pos, succ) in block.successors().iter().enumerate() {
                    if let Some(succ_block) = func.block(*succ) {
                        if let Some(first) = succ_block.insts.first() {
                            let s = inst_node[&(func.name.clone(), first.id)];
                            g.add_edge(t, s, EdgeFlow::Control, pos);
                        }
                    }
                }
            }

            for inst in &block.insts {
                let dst = inst_node[&(func.name.clone(), inst.id)];
                for (pos, op) in inst.operands.iter().enumerate() {
                    match op {
                        Operand::Inst(vid) => {
                            if let Some(&vnode) = value_node.get(vid) {
                                g.add_edge(vnode, dst, EdgeFlow::Data, pos);
                            }
                        }
                        Operand::Arg(idx) => {
                            if let Some(&anode) = arg_node.get(idx) {
                                g.add_edge(anode, dst, EdgeFlow::Data, pos);
                            }
                        }
                        Operand::Const(c) => {
                            let cnode =
                                g.add_node(NodeKind::Constant, c.ty.to_string(), &func.name);
                            g.add_edge(cnode, dst, EdgeFlow::Data, pos);
                        }
                        Operand::Func(callee) => {
                            // Call edge to the callee entry, and return edges
                            // from the callee's rets back to the call site.
                            if let Some(&entry) = entry_node.get(callee) {
                                g.add_edge(dst, entry, EdgeFlow::Call, 0);
                            }
                            if let Some(rets) = ret_nodes.get(callee) {
                                for &r in rets {
                                    g.add_edge(r, dst, EdgeFlow::Call, 1);
                                }
                            }
                        }
                        Operand::Block(_) | Operand::Global(_) => {}
                    }
                }
            }
        }
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;
    use pnp_ir::dsl::*;
    use pnp_ir::lower_kernel;

    fn saxpy_module() -> Module {
        let region = RegionSource {
            name: "saxpy_r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d1("X", "N"), ArrayDecl::d1("Y", "N")],
            scalars: vec!["a".into()],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Assign {
                    target: ArrayRef::d1("Y", IndexExpr::var("i")),
                    value: Expr::add(
                        Expr::mul(
                            Expr::Scalar("a".into()),
                            Expr::load1("X", IndexExpr::var("i")),
                        ),
                        Expr::load1("Y", IndexExpr::var("i")),
                    ),
                }],
            ),
        };
        lower_kernel("saxpy", &[region])
    }

    fn helper_module() -> Module {
        let region = RegionSource {
            name: "qs_r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d1("E", "N")],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![HelperFn {
                name: "cross_section".into(),
                num_params: 2,
                body_ops: 5,
            }],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Assign {
                    target: ArrayRef::d1("E", IndexExpr::var("i")),
                    value: Expr::CallHelper(
                        "cross_section".into(),
                        vec![Expr::load1("E", IndexExpr::var("i")), Expr::Const(0.5)],
                    ),
                }],
            ),
        };
        lower_kernel("qs", &[region])
    }

    #[test]
    fn region_graph_has_all_three_node_kinds() {
        let m = saxpy_module();
        let g = build_region_graph(&m, "saxpy_r0").unwrap();
        assert!(g.is_well_formed());
        assert!(g.count_kind(NodeKind::Instruction) > 10);
        assert!(g.count_kind(NodeKind::Variable) > 5);
        assert!(g.count_kind(NodeKind::Constant) > 0);
        assert_eq!(g.name, "saxpy:saxpy_r0");
    }

    #[test]
    fn region_graph_has_control_and_data_edges() {
        let m = saxpy_module();
        let g = build_region_graph(&m, "saxpy_r0").unwrap();
        assert!(g.count_flow(EdgeFlow::Control) > 5);
        assert!(g.count_flow(EdgeFlow::Data) > 10);
        // no helpers → no call edges in the extracted region
        assert_eq!(g.count_flow(EdgeFlow::Call), 0);
    }

    #[test]
    fn helper_calls_create_call_edges_in_both_directions() {
        let m = helper_module();
        let g = build_region_graph(&m, "qs_r0").unwrap();
        let call_edges: Vec<_> = g
            .edges
            .iter()
            .filter(|e| e.flow == EdgeFlow::Call)
            .collect();
        // one edge to callee entry (position 0) and one back from ret (position 1)
        assert_eq!(call_edges.len(), 2);
        assert!(call_edges.iter().any(|e| e.position == 0));
        assert!(call_edges.iter().any(|e| e.position == 1));
    }

    #[test]
    fn whole_module_graph_includes_host_call_edges() {
        let m = saxpy_module();
        let g = build_graph(&m);
        // host calls the outlined region → at least one call edge
        assert!(g.count_flow(EdgeFlow::Call) >= 1);
    }

    #[test]
    fn missing_region_returns_none() {
        let m = saxpy_module();
        assert!(build_region_graph(&m, "nope").is_none());
    }

    #[test]
    fn instruction_nodes_are_reachable_from_entry() {
        let m = saxpy_module();
        let g = build_region_graph(&m, "saxpy_r0").unwrap();
        // Node 0 is the first instruction of the outlined function (entry).
        let reach = g.reachable_from(0);
        let unreachable_insts = g
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Instruction && !reach[n.id])
            .count();
        assert_eq!(unreachable_insts, 0);
    }

    #[test]
    fn graphs_differ_between_different_kernels() {
        let g1 = build_region_graph(&saxpy_module(), "saxpy_r0").unwrap();
        let g2 = build_region_graph(&helper_module(), "qs_r0").unwrap();
        assert_ne!(g1.num_nodes(), g2.num_nodes());
    }
}
