//! The code-graph container.

use crate::edge::{Edge, EdgeFlow};
use crate::node::{Node, NodeKind};
use serde::{Deserialize, Serialize};

/// A flow-aware multigraph over one extracted OpenMP region (plus its helper
/// callees).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CodeGraph {
    /// Graph name, conventionally `"<app>:<region>"`.
    pub name: String,
    /// Nodes, indexed by their `id`.
    pub nodes: Vec<Node>,
    /// Directed typed edges.
    pub edges: Vec<Edge>,
}

impl CodeGraph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        CodeGraph {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, text: impl Into<String>, function: &str) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            kind,
            text: text.into(),
            function: function.to_string(),
        });
        id
    }

    /// Adds a directed typed edge.
    pub fn add_edge(&mut self, src: usize, dst: usize, flow: EdgeFlow, position: usize) {
        debug_assert!(src < self.nodes.len() && dst < self.nodes.len());
        self.edges.push(Edge {
            src,
            dst,
            flow,
            position,
        });
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes of a given kind.
    pub fn count_kind(&self, kind: NodeKind) -> usize {
        self.nodes.iter().filter(|n| n.kind == kind).count()
    }

    /// Number of edges of a given relation.
    pub fn count_flow(&self, flow: EdgeFlow) -> usize {
        self.edges.iter().filter(|e| e.flow == flow).count()
    }

    /// Edges grouped by relation: `out[r]` holds `(src, dst)` pairs for
    /// relation `r`. This is the layout the RGCN layers consume.
    pub fn edges_by_relation(&self) -> Vec<Vec<(usize, usize)>> {
        let mut out = vec![Vec::new(); EdgeFlow::COUNT];
        for e in &self.edges {
            out[e.flow.index()].push((e.src, e.dst));
        }
        out
    }

    /// In-degree of each node counting all relations.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.nodes.len()];
        for e in &self.edges {
            deg[e.dst] += 1;
        }
        deg
    }

    /// True when every edge endpoint references an existing node.
    pub fn is_well_formed(&self) -> bool {
        let n = self.nodes.len();
        self.edges.iter().all(|e| e.src < n && e.dst < n)
            && self.nodes.iter().enumerate().all(|(i, node)| node.id == i)
    }

    /// Returns the set of node ids reachable from `start` following edges of
    /// any relation (used to test connectivity of generated graphs).
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            adj[e.src].push(e.dst);
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CodeGraph {
        let mut g = CodeGraph::new("t");
        let a = g.add_node(NodeKind::Instruction, "a", "f");
        let b = g.add_node(NodeKind::Instruction, "b", "f");
        let c = g.add_node(NodeKind::Variable, "double", "f");
        g.add_edge(a, b, EdgeFlow::Control, 0);
        g.add_edge(a, c, EdgeFlow::Data, 0);
        g.add_edge(c, b, EdgeFlow::Data, 1);
        g
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.count_kind(NodeKind::Instruction), 2);
        assert_eq!(g.count_flow(EdgeFlow::Data), 2);
        assert_eq!(g.count_flow(EdgeFlow::Call), 0);
    }

    #[test]
    fn edges_by_relation_layout() {
        let g = triangle();
        let rels = g.edges_by_relation();
        assert_eq!(rels.len(), 3);
        assert_eq!(rels[EdgeFlow::Control.index()], vec![(0, 1)]);
        assert_eq!(rels[EdgeFlow::Data.index()].len(), 2);
    }

    #[test]
    fn well_formedness_and_reachability() {
        let g = triangle();
        assert!(g.is_well_formed());
        let reach = g.reachable_from(0);
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn in_degree() {
        let g = triangle();
        assert_eq!(g.in_degrees(), vec![0, 2, 1]);
    }
}
