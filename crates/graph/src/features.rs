//! Coarse structural features of code graphs.
//!
//! These are not fed to the RGCN (which sees the full graph); they are used
//! for dataset sanity checks, for the ablation that replaces the GNN with a
//! flat feature vector, and as human-readable summaries in reports.

use crate::edge::EdgeFlow;
use crate::graph::CodeGraph;
use crate::node::NodeKind;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one code graph.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphFeatures {
    /// Total node count.
    pub num_nodes: usize,
    /// Total edge count.
    pub num_edges: usize,
    /// Instruction node count.
    pub num_instructions: usize,
    /// Variable node count.
    pub num_variables: usize,
    /// Constant node count.
    pub num_constants: usize,
    /// Control-flow edge count.
    pub control_edges: usize,
    /// Data-flow edge count.
    pub data_edges: usize,
    /// Call-flow edge count.
    pub call_edges: usize,
    /// Count of floating-point instruction nodes (by node-text prefix).
    pub flop_instructions: usize,
    /// Count of memory instruction nodes (load/store/gep/alloca).
    pub memory_instructions: usize,
    /// Count of branch instruction nodes.
    pub branch_instructions: usize,
    /// Mean in-degree over all nodes.
    pub mean_in_degree: f64,
}

impl GraphFeatures {
    /// Computes the features of a graph.
    pub fn of(graph: &CodeGraph) -> Self {
        let flop_prefixes = [
            "fadd",
            "fsub",
            "fmul",
            "fdiv",
            "fneg",
            "call.sqrt",
            "call.exp",
            "call.log",
            "call.fabs",
            "call.pow",
            "call.sin",
            "call.cos",
        ];
        let mem_prefixes = ["load", "store", "getelementptr", "alloca"];
        let branch_prefixes = ["br", "br.cond"];

        let starts_with_any = |text: &str, prefixes: &[&str]| {
            prefixes
                .iter()
                .any(|p| text == *p || text.starts_with(&format!("{p} ")))
        };

        let instr_nodes: Vec<&str> = graph
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Instruction)
            .map(|n| n.text.as_str())
            .collect();

        let in_deg = graph.in_degrees();
        let mean_in_degree = if graph.num_nodes() == 0 {
            0.0
        } else {
            in_deg.iter().sum::<usize>() as f64 / graph.num_nodes() as f64
        };

        GraphFeatures {
            num_nodes: graph.num_nodes(),
            num_edges: graph.num_edges(),
            num_instructions: graph.count_kind(NodeKind::Instruction),
            num_variables: graph.count_kind(NodeKind::Variable),
            num_constants: graph.count_kind(NodeKind::Constant),
            control_edges: graph.count_flow(EdgeFlow::Control),
            data_edges: graph.count_flow(EdgeFlow::Data),
            call_edges: graph.count_flow(EdgeFlow::Call),
            flop_instructions: instr_nodes
                .iter()
                .filter(|t| starts_with_any(t, &flop_prefixes))
                .count(),
            memory_instructions: instr_nodes
                .iter()
                .filter(|t| starts_with_any(t, &mem_prefixes))
                .count(),
            branch_instructions: instr_nodes
                .iter()
                .filter(|t| starts_with_any(t, &branch_prefixes))
                .count(),
            mean_in_degree,
        }
    }

    /// Flattens the features into a fixed-length vector (used by the
    /// "no-GNN" ablation baseline).
    pub fn to_vec(&self) -> Vec<f32> {
        vec![
            self.num_nodes as f32,
            self.num_edges as f32,
            self.num_instructions as f32,
            self.num_variables as f32,
            self.num_constants as f32,
            self.control_edges as f32,
            self.data_edges as f32,
            self.call_edges as f32,
            self.flop_instructions as f32,
            self.memory_instructions as f32,
            self.branch_instructions as f32,
            self.mean_in_degree as f32,
        ]
    }

    /// Ratio of floating-point to memory instructions — a crude arithmetic-
    /// intensity proxy visible purely from the static graph.
    pub fn flop_to_mem_ratio(&self) -> f64 {
        if self.memory_instructions == 0 {
            return 0.0;
        }
        self.flop_instructions as f64 / self.memory_instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_region_graph;
    use pnp_ir::dsl::*;
    use pnp_ir::lower_kernel;

    fn gemm_graph() -> CodeGraph {
        let inner_k = LoopNest::new(
            "k",
            LoopBound::Param("N".into()),
            vec![Stmt::Accumulate {
                target: ArrayRef::d2("C", IndexExpr::var("i"), IndexExpr::var("j")),
                op: BinOp::Add,
                value: Expr::mul(
                    Expr::load2("A", IndexExpr::var("i"), IndexExpr::var("k")),
                    Expr::load2("B", IndexExpr::var("k"), IndexExpr::var("j")),
                ),
            }],
        );
        let region = RegionSource {
            name: "gemm_r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![
                ArrayDecl::d2("A", "N", "N"),
                ArrayDecl::d2("B", "N", "N"),
                ArrayDecl::d2("C", "N", "N"),
            ],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Loop(LoopNest::new(
                    "j",
                    LoopBound::Param("N".into()),
                    vec![Stmt::Loop(inner_k)],
                ))],
            ),
        };
        let m = lower_kernel("gemm", &[region]);
        build_region_graph(&m, "gemm_r0").unwrap()
    }

    #[test]
    fn feature_totals_are_consistent() {
        let g = gemm_graph();
        let f = GraphFeatures::of(&g);
        assert_eq!(
            f.num_nodes,
            f.num_instructions + f.num_variables + f.num_constants
        );
        assert_eq!(f.num_edges, f.control_edges + f.data_edges + f.call_edges);
        assert!(f.mean_in_degree > 0.5);
    }

    #[test]
    fn gemm_has_flops_and_memory_ops() {
        let f = GraphFeatures::of(&gemm_graph());
        assert!(f.flop_instructions >= 2); // fmul + fadd
        assert!(f.memory_instructions >= 6); // geps, loads, store
        assert!(f.branch_instructions >= 6); // 3 loops × (br + cond br)
        assert!(f.flop_to_mem_ratio() > 0.0);
    }

    #[test]
    fn to_vec_has_fixed_length() {
        let f = GraphFeatures::of(&gemm_graph());
        assert_eq!(f.to_vec().len(), 12);
        let empty = GraphFeatures::default();
        assert_eq!(empty.to_vec().len(), 12);
        assert_eq!(empty.flop_to_mem_ratio(), 0.0);
    }
}
