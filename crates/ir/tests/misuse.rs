//! Fuzz-style misuse tests for `FunctionBuilder` / `lower_kernel`
//! (ISSUE 6, satellite 3): every panic the lowering path could hit on
//! malformed DSL input is surfaced as a typed [`LowerError`] by
//! `try_lower_kernel`, and builder misuse is reported as a typed
//! [`BuildError`] by the `try_*` twins. Degenerate-but-valid shapes
//! (zero-trip loops, empty bodies, empty else arms) must keep lowering.

use pnp_ir::builder::BuildError;
use pnp_ir::dsl::{
    ArrayDecl, ArrayRef, BinOp, CmpOp, Expr, HelperFn, IndexExpr, LoopBound, LoopNest, OmpPragma,
    RegionSource, Stmt,
};
use pnp_ir::lower::{check_region, try_lower_kernel, LowerError};
use pnp_ir::verify::verify_module;
use pnp_ir::{FunctionBuilder, Opcode, Operand, Type};

/// A minimal valid region: `OUT[i] = IN[i] * alpha`.
fn valid_region(name: &str) -> RegionSource {
    RegionSource {
        name: name.to_string(),
        pragma: OmpPragma::default(),
        arrays: vec![ArrayDecl::d1("OUT", "N"), ArrayDecl::d1("IN", "N")],
        scalars: vec!["alpha".into()],
        size_params: vec!["N".into()],
        helpers: vec![],
        parallel_loop: LoopNest::new(
            "i",
            LoopBound::Param("N".into()),
            vec![Stmt::Assign {
                target: ArrayRef::d1("OUT", IndexExpr::var("i")),
                value: Expr::mul(
                    Expr::load1("IN", IndexExpr::var("i")),
                    Expr::Scalar("alpha".into()),
                ),
            }],
        ),
    }
}

#[test]
fn valid_region_passes_checks() {
    let r = valid_region("ok_r0");
    assert_eq!(check_region(&r), Ok(()));
    let m = try_lower_kernel("ok", &[r]).expect("valid region lowers");
    assert!(verify_module(&m).is_ok());
}

#[test]
fn unknown_array_is_a_typed_error() {
    let mut r = valid_region("bad_r0");
    r.arrays.retain(|a| a.name != "IN");
    assert_eq!(
        try_lower_kernel("bad", &[r]).unwrap_err(),
        LowerError::UnknownArray {
            region: "bad_r0".into(),
            array: "IN".into(),
        }
    );
}

#[test]
fn index_arity_mismatch_is_a_typed_error() {
    let mut r = valid_region("bad_r0");
    r.parallel_loop.body[0] = Stmt::Assign {
        target: ArrayRef::d2("OUT", IndexExpr::var("i"), IndexExpr::var("i")),
        value: Expr::Const(0.0),
    };
    assert_eq!(
        try_lower_kernel("bad", &[r]).unwrap_err(),
        LowerError::IndexArityMismatch {
            region: "bad_r0".into(),
            array: "OUT".into(),
            got: 2,
            want: 1,
        }
    );
}

#[test]
fn unknown_size_param_bound_is_a_typed_error() {
    let mut r = valid_region("bad_r0");
    r.parallel_loop.bound = LoopBound::Param("M".into());
    assert_eq!(
        try_lower_kernel("bad", &[r]).unwrap_err(),
        LowerError::UnknownSizeParam {
            region: "bad_r0".into(),
            param: "M".into(),
        }
    );
}

#[test]
fn triangular_bound_on_missing_outer_var_is_a_typed_error() {
    let mut r = valid_region("bad_r0");
    r.parallel_loop.bound = LoopBound::Var("j".into());
    assert_eq!(
        try_lower_kernel("bad", &[r]).unwrap_err(),
        LowerError::UnknownLoopVar {
            region: "bad_r0".into(),
            var: "j".into(),
        }
    );
    // The loop's own variable is NOT in scope for its own bound.
    let mut self_bound = valid_region("self_r0");
    self_bound.parallel_loop.bound = LoopBound::VarPlus("i".into(), 1);
    assert!(matches!(
        check_region(&self_bound),
        Err(LowerError::UnknownLoopVar { .. })
    ));
}

#[test]
fn out_of_scope_loop_var_in_expr_is_a_typed_error() {
    let mut r = valid_region("bad_r0");
    r.parallel_loop.body[0] = Stmt::Assign {
        target: ArrayRef::d1("OUT", IndexExpr::var("i")),
        value: Expr::LoopVar("k".into()),
    };
    assert_eq!(
        try_lower_kernel("bad", &[r]).unwrap_err(),
        LowerError::UnknownLoopVar {
            region: "bad_r0".into(),
            var: "k".into(),
        }
    );
}

#[test]
fn unknown_index_var_is_a_typed_error() {
    let mut r = valid_region("bad_r0");
    r.parallel_loop.body[0] = Stmt::Assign {
        target: ArrayRef::d1("OUT", IndexExpr::var("nope")),
        value: Expr::Const(1.0),
    };
    assert_eq!(
        try_lower_kernel("bad", &[r]).unwrap_err(),
        LowerError::UnknownIndexVar {
            region: "bad_r0".into(),
            var: "nope".into(),
        }
    );
}

#[test]
fn non_size_param_inner_dimension_is_a_typed_error() {
    let mut r = valid_region("bad_r0");
    r.arrays.push(ArrayDecl::d2("G", "N", "Q"));
    assert_eq!(
        check_region(&r),
        Err(LowerError::UnknownDimParam {
            region: "bad_r0".into(),
            array: "G".into(),
            param: "Q".into(),
        })
    );
}

#[test]
fn undeclared_helper_call_is_a_typed_error() {
    // `lower_kernel` itself would not panic here — the module would fail
    // verification with an unknown call target — so the static check has to
    // catch it up front.
    let mut r = valid_region("bad_r0");
    r.parallel_loop.body[0] = Stmt::Assign {
        target: ArrayRef::d1("OUT", IndexExpr::var("i")),
        value: Expr::CallHelper("ghost".into(), vec![Expr::Const(1.0)]),
    };
    assert_eq!(
        try_lower_kernel("bad", &[r]).unwrap_err(),
        LowerError::UnknownHelper {
            region: "bad_r0".into(),
            helper: "ghost".into(),
        }
    );
}

#[test]
fn helper_arity_mismatch_is_a_typed_error() {
    let mut r = valid_region("bad_r0");
    r.helpers.push(HelperFn {
        name: "f".into(),
        num_params: 2,
        body_ops: 3,
    });
    r.parallel_loop.body.push(Stmt::CallStmt {
        name: "f".into(),
        args: vec![Expr::Const(1.0)],
    });
    assert_eq!(
        try_lower_kernel("bad", &[r]).unwrap_err(),
        LowerError::HelperArityMismatch {
            region: "bad_r0".into(),
            helper: "f".into(),
            got: 1,
            want: 2,
        }
    );
}

#[test]
fn duplicate_region_names_are_a_typed_error() {
    let a = valid_region("dup_r0");
    let b = valid_region("dup_r0");
    assert_eq!(
        try_lower_kernel("dup", &[a, b]).unwrap_err(),
        LowerError::DuplicateRegionName {
            name: "dup_r0".into()
        }
    );
}

#[test]
fn zero_and_negative_trip_loops_lower_cleanly() {
    for trip in [0, -3] {
        let mut r = valid_region("deg_r0");
        r.parallel_loop.bound = LoopBound::Const(trip);
        let m = try_lower_kernel("deg", &[r]).expect("degenerate trip count is valid");
        assert!(verify_module(&m).is_ok(), "trip {trip}");
    }
}

#[test]
fn empty_loop_bodies_and_empty_else_arms_lower_cleanly() {
    let mut r = valid_region("deg_r0");
    r.parallel_loop.body = vec![
        // empty nested loop
        Stmt::Loop(LoopNest::new("j", LoopBound::Const(4), vec![])),
        // conditional with an empty else arm
        Stmt::If {
            lhs: Expr::load1("IN", IndexExpr::var("i")),
            cmp: CmpOp::Gt,
            rhs: Expr::Const(0.0),
            then_body: vec![Stmt::Assign {
                target: ArrayRef::d1("OUT", IndexExpr::var("i")),
                value: Expr::Const(1.0),
            }],
            else_body: vec![],
        },
    ];
    let m = try_lower_kernel("deg", &[r]).expect("degenerate nests are valid");
    assert!(verify_module(&m).is_ok());
}

#[test]
fn scalar_accumulate_on_undeclared_scalar_stays_valid() {
    // Reduction accumulators are lazily slot-allocated, never declared.
    let mut r = valid_region("red_r0");
    r.pragma = OmpPragma {
        reduction: Some((BinOp::Add, "sum".into())),
        ..OmpPragma::default()
    };
    r.parallel_loop.body = vec![Stmt::ScalarAccumulate {
        name: "sum".into(),
        op: BinOp::Add,
        value: Expr::load1("IN", IndexExpr::var("i")),
    }];
    assert!(try_lower_kernel("red", &[r]).is_ok());
}

/// Fuzz loop: mutate every generated-corpus kernel in ways that *should*
/// break it and assert the checker reports a typed error rather than the
/// lowering path panicking. This is exactly the misuse surface the generator
/// itself must never produce.
#[test]
fn mutated_corpus_kernels_fail_checks_without_panicking() {
    let kernels = pnp_ir::gen::corpus(0xF00D, 24);
    let mut broke = 0;
    for k in &kernels {
        // Sanity: the unmutated kernel is valid.
        assert_eq!(check_region(&k.source), Ok(()));

        // Mutation 1: drop the first array declaration.
        let mut m1 = k.source.clone();
        m1.arrays.remove(0);
        if let Err(e) = check_region(&m1) {
            assert!(matches!(
                e,
                LowerError::UnknownArray { .. } | LowerError::UnknownDimParam { .. }
            ));
            broke += 1;
        }

        // Mutation 2: rename every size parameter declaration (uses dangle).
        let mut m2 = k.source.clone();
        for p in &mut m2.size_params {
            *p = format!("{p}__renamed");
        }
        if let Err(e) = check_region(&m2) {
            assert!(matches!(
                e,
                LowerError::UnknownSizeParam { .. }
                    | LowerError::UnknownDimParam { .. }
                    | LowerError::UnknownIndexVar { .. }
            ));
            broke += 1;
        }

        // Mutation 3: drop all helper declarations.
        let mut m3 = k.source.clone();
        if !m3.helpers.is_empty() {
            m3.helpers.clear();
            assert!(matches!(
                check_region(&m3),
                Err(LowerError::UnknownHelper { .. })
            ));
            broke += 1;
        }

        // Mutation 4: rename the outer loop variable so inner references and
        // triangular bounds dangle.
        let mut m4 = k.source.clone();
        m4.parallel_loop.var = "__mutated".into();
        if let Err(e) = check_region(&m4) {
            assert!(matches!(
                e,
                LowerError::UnknownLoopVar { .. } | LowerError::UnknownIndexVar { .. }
            ));
            broke += 1;
        }
    }
    // Every kernel references its arrays and sizes, so the mutations must
    // actually bite on a healthy majority of the corpus.
    assert!(broke >= kernels.len(), "only {broke} mutations detected");
}

// ---------------------------------------------------------------------------
// FunctionBuilder misuse via the try_* twins.
// ---------------------------------------------------------------------------

#[test]
fn try_push_after_terminator_reports_terminated_block() {
    let mut b = FunctionBuilder::new("f", vec![], Type::Void);
    b.ret_void();
    let err = b.try_push(Opcode::Add, Type::I32, vec![]).unwrap_err();
    assert_eq!(
        err,
        BuildError::TerminatedBlock {
            block: "entry".into(),
            function: "f".into(),
        }
    );
    assert_eq!(
        err.to_string(),
        "appending to already-terminated block entry in f"
    );
}

#[test]
fn try_switch_to_unknown_block_reports_error() {
    let mut b = FunctionBuilder::new("f", vec![], Type::Void);
    assert_eq!(
        b.try_switch_to(99),
        Err(BuildError::UnknownBlock { block: 99 })
    );
    // A failed switch must not move the insertion point.
    assert_eq!(b.current_block(), 0);
}

#[test]
fn try_set_operands_unknown_instruction_reports_error() {
    let mut b = FunctionBuilder::new("f", vec![], Type::Void);
    assert_eq!(
        b.try_set_operands(7, vec![Operand::const_i32(0)]),
        Err(BuildError::UnknownInstruction { inst: 7 })
    );
}

#[test]
fn try_finish_rejects_unterminated_blocks() {
    let mut b = FunctionBuilder::new("f", vec![], Type::Void);
    let dangling = b.new_block("dangling");
    b.br(dangling);
    // `dangling` has no terminator.
    let err = b.try_finish().unwrap_err();
    assert_eq!(
        err,
        BuildError::UnterminatedBlocks {
            labels: vec!["dangling".into()]
        }
    );

    let mut ok = FunctionBuilder::new("g", vec![], Type::Void);
    ok.ret_void();
    assert!(ok.try_finish().is_ok());
}

#[test]
#[should_panic(expected = "appending to already-terminated block entry in f")]
fn panicking_push_uses_the_typed_error_message() {
    let mut b = FunctionBuilder::new("f", vec![], Type::Void);
    b.ret_void();
    b.push(Opcode::Add, Type::I32, vec![]);
}

#[test]
#[should_panic(expected = "switch_to unknown block 42")]
fn panicking_switch_to_uses_the_typed_error_message() {
    let mut b = FunctionBuilder::new("f", vec![], Type::Void);
    b.switch_to(42);
}
