//! # pnp-ir
//!
//! A compact, LLVM-flavoured intermediate representation plus an OpenMP-style
//! kernel DSL. This crate plays the role that Clang/LLVM plays in the paper:
//!
//! 1. Benchmark OpenMP regions are described in a loop-nest DSL
//!    ([`dsl::RegionSource`]) — the analogue of the C source of a
//!    `#pragma omp parallel` region.
//! 2. [`lower::lower_kernel`] compiles the DSL to an SSA-style IR
//!    ([`module::Module`]) in which each parallel region is *outlined* into
//!    its own function (exactly what `clang -fopenmp` does with
//!    `.omp_outlined.` functions).
//! 3. [`outline::extract_region`] plays the role of `llvm-extract`, pulling a
//!    single outlined region (plus its callees) out of the module so that
//!    `pnp-graph` can turn it into a PROGRAML-style flow graph.
//!
//! The IR supports the constructs that appear in the PolyBench and proxy-app
//! kernels used in the paper: nested counted loops, multi-dimensional array
//! accesses, float and integer arithmetic, reductions, conditionals, and
//! calls to math intrinsics.

pub mod block;
pub mod builder;
pub mod dsl;
pub mod function;
pub mod gen;
pub mod inst;
pub mod lower;
pub mod module;
pub mod outline;
pub mod printer;
pub mod types;
pub mod value;
pub mod verify;

pub use block::BasicBlock;
pub use builder::{BuildError, FunctionBuilder};
pub use dsl::{ArrayRef, Expr, LoopNest, OmpPragma, OmpSchedule, RegionSource, Stmt};
pub use function::Function;
pub use gen::GeneratedKernel;
pub use inst::{Instruction, Opcode};
pub use lower::{check_region, lower_kernel, try_lower_kernel, LowerError};
pub use module::Module;
pub use outline::extract_region;
pub use types::Type;
pub use value::{Constant, InstId, Operand};
